//! The resource manager: transactional access, 2PC participation,
//! heuristic decisions and crash recovery.

use std::collections::{BTreeMap, HashMap};

use tpc_common::{Error, HeuristicOutcome, HeuristicPolicy, Lsn, Result, RmId, SimTime, TxnId};
use tpc_locks::{Acquired, LockManager, LockMode, LockStats, ReleaseGrant};
use tpc_wal::{Durability, LogManager, LogRecord, StreamId};

use crate::store::KvStore;

/// Static properties of one resource manager.
#[derive(Clone, Debug)]
pub struct RmConfig {
    /// Identity within its node.
    pub id: RmId,
    /// §4 *Vote Reliable*: "a database system either is or is not
    /// reliable" — a static property carried on every YES vote.
    pub reliable: bool,
    /// What this RM does when left in doubt too long.
    pub heuristic: HeuristicPolicy,
}

impl RmConfig {
    /// A conventional, non-reliable RM that never decides heuristically.
    pub fn new(id: RmId) -> Self {
        RmConfig {
            id,
            reliable: false,
            heuristic: HeuristicPolicy::Never,
        }
    }

    /// Marks the RM reliable (heuristic decisions vanishingly unlikely).
    pub fn reliable(mut self) -> Self {
        self.reliable = true;
        self
    }

    /// Sets the heuristic policy.
    pub fn with_heuristic(mut self, policy: HeuristicPolicy) -> Self {
        self.heuristic = policy;
        self
    }
}

/// Result of a data access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// Read result (or write acknowledgment carrying the old value).
    Value(Option<Vec<u8>>),
    /// Blocked on a lock; the owner will be resumed by a release grant.
    Wait,
    /// Chosen as a deadlock victim; the transaction must abort.
    Deadlock,
}

/// Where a transaction stands inside this RM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmPhase {
    /// Executing; may still read and write.
    Active,
    /// Voted YES; holding locks, awaiting the decision (in doubt).
    Prepared,
    /// Final: updates applied.
    Committed,
    /// Final: updates discarded.
    Aborted,
    /// Final, decided unilaterally while in doubt.
    Heuristic(HeuristicOutcome),
}

/// (key, before-image, after-image) of one update, in execution order.
type UpdateEntry = (Vec<u8>, Option<Vec<u8>>, Option<Vec<u8>>);

#[derive(Debug, Default)]
struct TxnCtx {
    /// Pending writes, last-write-wins per key (`None` = delete).
    workspace: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Update log in execution order, for redo.
    updates: Vec<UpdateEntry>,
    prepared: bool,
}

/// A transactional key-value resource manager.
#[derive(Debug)]
pub struct ResourceManager {
    cfg: RmConfig,
    store: KvStore,
    locks: LockManager,
    txns: HashMap<TxnId, TxnCtx>,
    finished: HashMap<TxnId, RmPhase>,
}

impl ResourceManager {
    /// Creates an empty RM.
    pub fn new(cfg: RmConfig) -> Self {
        ResourceManager {
            cfg,
            store: KvStore::new(),
            locks: LockManager::new(),
            txns: HashMap::new(),
            finished: HashMap::new(),
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &RmConfig {
        &self.cfg
    }

    /// Committed state, for checks and reports.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Lock statistics (hold times, waits, deadlocks).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Number of keys with lock activity — zero when every transaction
    /// has released (the end-of-run leak check).
    pub fn locked_keys(&self) -> usize {
        self.locks.active_keys()
    }

    /// The phase of `txn`, if this RM has seen it.
    pub fn phase(&self, txn: TxnId) -> Option<RmPhase> {
        if let Some(ctx) = self.txns.get(&txn) {
            Some(if ctx.prepared {
                RmPhase::Prepared
            } else {
                RmPhase::Active
            })
        } else {
            self.finished.get(&txn).copied()
        }
    }

    /// Transactions currently prepared-and-undecided (in doubt).
    pub fn in_doubt(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, c)| c.prepared)
            .map(|(t, _)| *t)
            .collect();
        v.sort();
        v
    }

    /// True if `txn` performed no updates here (eligible for a READ-ONLY
    /// vote under §4 *Read Only*).
    pub fn is_read_only(&self, txn: TxnId) -> bool {
        self.txns
            .get(&txn)
            .map(|c| c.updates.is_empty())
            .unwrap_or(true)
    }

    fn ctx(&mut self, txn: TxnId) -> &mut TxnCtx {
        self.txns.entry(txn).or_default()
    }

    fn visible(&self, txn: TxnId, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(ctx) = self.txns.get(&txn) {
            if let Some(pending) = ctx.workspace.get(key) {
                return pending.clone();
            }
        }
        self.store.get(key).map(|v| v.to_vec())
    }

    /// Reads `key` under a shared lock.
    pub fn read(&mut self, txn: TxnId, key: &[u8], now: SimTime) -> Result<Access> {
        self.check_active(txn)?;
        match self.locks.acquire(txn, key, LockMode::Shared, now) {
            Acquired::Granted => {
                self.ctx(txn);
                Ok(Access::Value(self.visible(txn, key)))
            }
            Acquired::Wait => Ok(Access::Wait),
            Acquired::Deadlock => Ok(Access::Deadlock),
        }
    }

    /// Writes `key` (`None` deletes) under an exclusive lock, logging an
    /// undo/redo record (non-forced — it becomes durable with the prepare
    /// force, the standard WAL discipline).
    pub fn write(
        &mut self,
        txn: TxnId,
        key: &[u8],
        value: Option<Vec<u8>>,
        log: &mut dyn LogManager,
        now: SimTime,
    ) -> Result<Access> {
        self.check_active(txn)?;
        match self.locks.acquire(txn, key, LockMode::Exclusive, now) {
            Acquired::Wait => return Ok(Access::Wait),
            Acquired::Deadlock => return Ok(Access::Deadlock),
            Acquired::Granted => {}
        }
        let before = self.visible(txn, key);
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmUpdate {
                rm: self.cfg.id,
                txn,
                key: key.to_vec(),
                before: before.clone(),
                after: value.clone(),
            },
            Durability::NonForced,
        )?;
        let ctx = self.ctx(txn);
        ctx.updates
            .push((key.to_vec(), before.clone(), value.clone()));
        ctx.workspace.insert(key.to_vec(), value);
        Ok(Access::Value(before))
    }

    fn check_active(&self, txn: TxnId) -> Result<()> {
        if self.txns.get(&txn).map(|c| c.prepared).unwrap_or(false) {
            return Err(Error::InvalidState(format!(
                "{txn} is prepared; no further access allowed"
            )));
        }
        if self.finished.contains_key(&txn) {
            return Err(Error::InvalidState(format!("{txn} already finished")));
        }
        Ok(())
    }

    /// Prepares `txn`: makes its updates stable and guarantees it can go
    /// either way. `durability` is dictated by the engine: `Forced`
    /// normally, `NonForced` under the shared-log optimization (the TM's
    /// commit force carries it).
    ///
    /// Read-only eligibility is the *caller's* decision — when the engine
    /// runs with the read-only optimization it calls
    /// [`ResourceManager::forget_read_only`] instead of preparing.
    pub fn prepare(
        &mut self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
    ) -> Result<Lsn> {
        let ctx = self.txns.get_mut(&txn).ok_or(Error::UnknownTxn(txn))?;
        if ctx.prepared {
            return Err(Error::InvalidState(format!("{txn} already prepared")));
        }
        ctx.prepared = true;
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmPrepared {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )
    }

    /// Releases a read-only transaction without logging anything: commit
    /// and abort are identical for it (§4 *Read Only*). Returns the lock
    /// grants produced by the early release.
    pub fn forget_read_only(&mut self, txn: TxnId, now: SimTime) -> Result<Vec<ReleaseGrant>> {
        let ctx = self.txns.remove(&txn).ok_or(Error::UnknownTxn(txn))?;
        if !ctx.updates.is_empty() {
            self.txns.insert(txn, ctx);
            return Err(Error::InvalidState(format!(
                "{txn} performed updates; cannot vote read-only"
            )));
        }
        self.finished.insert(txn, RmPhase::Committed);
        Ok(self.locks.release_all(txn, now))
    }

    /// Commits `txn`, applying its updates and releasing its locks.
    pub fn commit(
        &mut self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
        now: SimTime,
    ) -> Result<Vec<ReleaseGrant>> {
        let ctx = self.txns.remove(&txn).ok_or(Error::UnknownTxn(txn))?;
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmCommitted {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )?;
        for (key, value) in ctx.workspace {
            self.store.apply(&key, value);
        }
        self.finished.insert(txn, RmPhase::Committed);
        Ok(self.locks.release_all(txn, now))
    }

    /// Aborts `txn`, discarding its updates and releasing its locks.
    pub fn abort(
        &mut self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
        now: SimTime,
    ) -> Result<Vec<ReleaseGrant>> {
        // Abort of an unknown transaction is legal (e.g. presumed abort
        // after a coordinator crash before this RM saw any work).
        self.txns.remove(&txn);
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmAborted {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )?;
        self.finished.insert(txn, RmPhase::Aborted);
        Ok(self.locks.release_all(txn, now))
    }

    /// Decides a prepared transaction unilaterally (§1: "rather than
    /// waiting, these participants unilaterally commit or abort"). The
    /// record is always forced: the decision must survive so damage can be
    /// detected and reported.
    pub fn heuristic_decide(
        &mut self,
        txn: TxnId,
        decision: HeuristicOutcome,
        log: &mut dyn LogManager,
        now: SimTime,
    ) -> Result<Vec<ReleaseGrant>> {
        let ctx = self.txns.remove(&txn).ok_or(Error::UnknownTxn(txn))?;
        if !ctx.prepared {
            self.txns.insert(txn, ctx);
            return Err(Error::InvalidState(format!(
                "{txn} not in doubt; heuristic decision is only for prepared transactions"
            )));
        }
        match decision {
            HeuristicOutcome::Commit => {
                log.append(
                    StreamId::Rm(self.cfg.id.0),
                    LogRecord::RmCommitted {
                        rm: self.cfg.id,
                        txn,
                    },
                    Durability::Forced,
                )?;
                for (key, value) in ctx.workspace {
                    self.store.apply(&key, value);
                }
            }
            HeuristicOutcome::Abort | HeuristicOutcome::Mixed => {
                log.append(
                    StreamId::Rm(self.cfg.id.0),
                    LogRecord::RmAborted {
                        rm: self.cfg.id,
                        txn,
                    },
                    Durability::Forced,
                )?;
            }
        }
        self.finished.insert(txn, RmPhase::Heuristic(decision));
        Ok(self.locks.release_all(txn, now))
    }

    /// Resumes a transaction whose lock wait was granted; re-executes the
    /// blocked operation. (The simulator stores the pending op and calls
    /// the matching `read`/`write` again.)
    pub fn lock_release_all(&mut self, txn: TxnId, now: SimTime) -> Vec<ReleaseGrant> {
        self.locks.release_all(txn, now)
    }

    /// Simulated crash: volatile state (store, lock table, transaction
    /// contexts) is lost. Call [`ResourceManager::recover`] with the
    /// durable log afterwards.
    pub fn crash(&mut self) {
        self.store.clear();
        self.locks = LockManager::new();
        self.txns.clear();
        self.finished.clear();
    }

    /// Rebuilds state from the durable log: redoes committed transactions
    /// in log order, discards aborted/unfinished ones, and restores
    /// prepared-but-undecided transactions as in-doubt (workspace
    /// reconstructed, exclusive locks re-acquired so the data stays
    /// protected while in doubt). Returns the in-doubt transactions.
    pub fn recover(
        &mut self,
        durable: &[(Lsn, StreamId, LogRecord)],
        now: SimTime,
    ) -> Result<Vec<TxnId>> {
        self.crash();
        let mine = StreamId::Rm(self.cfg.id.0);
        let mut pending: HashMap<TxnId, TxnCtx> = HashMap::new();
        for (_, stream, record) in durable {
            if *stream != mine {
                continue;
            }
            match record {
                LogRecord::RmUpdate {
                    txn,
                    key,
                    before,
                    after,
                    ..
                } => {
                    let ctx = pending.entry(*txn).or_default();
                    ctx.updates
                        .push((key.clone(), before.clone(), after.clone()));
                    ctx.workspace.insert(key.clone(), after.clone());
                }
                LogRecord::RmPrepared { txn, .. } => {
                    pending.entry(*txn).or_default().prepared = true;
                }
                LogRecord::RmCommitted { txn, .. } => {
                    if let Some(ctx) = pending.remove(txn) {
                        for (key, value) in ctx.workspace {
                            self.store.apply(&key, value);
                        }
                    }
                    self.finished.insert(*txn, RmPhase::Committed);
                }
                LogRecord::RmAborted { txn, .. } => {
                    pending.remove(txn);
                    self.finished.insert(*txn, RmPhase::Aborted);
                }
                _ => {}
            }
        }
        let mut in_doubt = Vec::new();
        for (txn, ctx) in pending {
            if ctx.prepared {
                // Re-protect in-doubt data.
                for key in ctx.workspace.keys() {
                    match self.locks.acquire(txn, key, LockMode::Exclusive, now) {
                        Acquired::Granted => {}
                        other => {
                            return Err(Error::InvalidState(format!(
                                "recovery lock re-acquisition for {txn} failed: {other:?}"
                            )))
                        }
                    }
                }
                in_doubt.push(txn);
                self.txns.insert(txn, ctx);
            }
            // Unprepared work simply evaporates: its updates were never
            // applied to the store and its locks died with the crash.
        }
        in_doubt.sort();
        Ok(in_doubt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;
    use tpc_wal::MemLog;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn rm() -> ResourceManager {
        ResourceManager::new(RmConfig::new(RmId(1)))
    }

    fn write_ok(rm: &mut ResourceManager, txn: TxnId, key: &[u8], val: &[u8], log: &mut MemLog) {
        match rm
            .write(txn, key, Some(val.to_vec()), log, SimTime(0))
            .unwrap()
        {
            Access::Value(_) => {}
            other => panic!("write blocked: {other:?}"),
        }
    }

    #[test]
    fn read_your_own_writes() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        assert_eq!(
            r.read(t(1), b"k", SimTime(0)).unwrap(),
            Access::Value(Some(b"v".to_vec()))
        );
        // Not visible in the committed store yet.
        assert_eq!(r.store().get(b"k"), None);
    }

    #[test]
    fn commit_applies_and_releases() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(5))
            .unwrap();
        assert_eq!(r.store().get(b"k"), Some(&b"v"[..]));
        assert_eq!(r.phase(t(1)), Some(RmPhase::Committed));
        assert!(!r.locks.holds_any(t(1)));
    }

    #[test]
    fn abort_discards() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.abort(t(1), &mut log, Durability::Forced, SimTime(1))
            .unwrap();
        assert_eq!(r.store().get(b"k"), None);
        assert_eq!(r.phase(t(1)), Some(RmPhase::Aborted));
    }

    #[test]
    fn abort_of_unknown_txn_is_legal() {
        let mut r = rm();
        let mut log = MemLog::new();
        assert!(r
            .abort(t(9), &mut log, Durability::NonForced, SimTime(0))
            .is_ok());
    }

    #[test]
    fn prepared_txn_rejects_further_access() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        assert!(r.read(t(1), b"k", SimTime(0)).is_err());
        assert!(r
            .write(t(1), b"k", Some(b"w".to_vec()), &mut log, SimTime(0))
            .is_err());
        assert_eq!(r.in_doubt(), vec![t(1)]);
    }

    #[test]
    fn read_only_detection_and_forget() {
        let mut r = rm();
        let mut log = MemLog::new();
        // Seed committed data.
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(0))
            .unwrap();
        let before = log.stats();

        assert_eq!(
            r.read(t(2), b"k", SimTime(1)).unwrap(),
            Access::Value(Some(b"v".to_vec()))
        );
        assert!(r.is_read_only(t(2)));
        r.forget_read_only(t(2), SimTime(2)).unwrap();
        // No log writes at all for the read-only participant.
        assert_eq!(log.stats(), before);
        assert!(!r.locks.holds_any(t(2)));
    }

    #[test]
    fn forget_read_only_rejected_after_update() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        assert!(!r.is_read_only(t(1)));
        assert!(r.forget_read_only(t(1), SimTime(0)).is_err());
    }

    #[test]
    fn conflicting_writer_waits_until_commit() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"a", &mut log);
        assert_eq!(
            r.write(t(2), b"k", Some(b"b".to_vec()), &mut log, SimTime(1))
                .unwrap(),
            Access::Wait
        );
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        let grants = r
            .commit(t(1), &mut log, Durability::Forced, SimTime(10))
            .unwrap();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(2));
    }

    #[test]
    fn crash_before_prepare_loses_transaction() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        log.crash();
        log.restart();
        let in_doubt = r.recover(&log.durable_records(), SimTime(0)).unwrap();
        assert!(in_doubt.is_empty());
        assert_eq!(r.store().get(b"k"), None);
    }

    #[test]
    fn crash_after_prepare_restores_in_doubt_with_locks() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        log.crash();
        log.restart();
        let in_doubt = r.recover(&log.durable_records(), SimTime(0)).unwrap();
        assert_eq!(in_doubt, vec![t(1)]);
        // Data still protected: another transaction blocks.
        assert_eq!(
            r.write(t(2), b"k", Some(b"w".to_vec()), &mut log, SimTime(1))
                .unwrap(),
            Access::Wait
        );
        // Resolving commit applies the recovered workspace.
        r.commit(t(1), &mut log, Durability::Forced, SimTime(2))
            .unwrap();
        assert_eq!(r.store().get(b"k"), Some(&b"v"[..]));
    }

    #[test]
    fn crash_after_commit_redoes() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(1))
            .unwrap();
        log.crash();
        log.restart();
        let in_doubt = r.recover(&log.durable_records(), SimTime(2)).unwrap();
        assert!(in_doubt.is_empty());
        assert_eq!(r.store().get(b"k"), Some(&b"v"[..]));
        assert_eq!(r.phase(t(1)), Some(RmPhase::Committed));
    }

    #[test]
    fn unforced_commit_record_lost_on_crash_leaves_in_doubt() {
        // Shared-log scenario: RmCommitted was non-forced and the TM force
        // never happened before the crash — the RM must come back in
        // doubt, not committed.
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::NonForced, SimTime(1))
            .unwrap();
        log.crash();
        log.restart();
        let in_doubt = r.recover(&log.durable_records(), SimTime(2)).unwrap();
        assert_eq!(in_doubt, vec![t(1)]);
        assert_eq!(r.store().get(b"k"), None);
    }

    #[test]
    fn heuristic_commit_applies_and_records_phase() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.heuristic_decide(t(1), HeuristicOutcome::Commit, &mut log, SimTime(9))
            .unwrap();
        assert_eq!(r.store().get(b"k"), Some(&b"v"[..]));
        assert_eq!(
            r.phase(t(1)),
            Some(RmPhase::Heuristic(HeuristicOutcome::Commit))
        );
    }

    #[test]
    fn heuristic_requires_prepared_state() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        assert!(r
            .heuristic_decide(t(1), HeuristicOutcome::Abort, &mut log, SimTime(0))
            .is_err());
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(1))
            .unwrap();
        log.crash();
        log.restart();
        r.recover(&log.durable_records(), SimTime(2)).unwrap();
        let first = r.store().clone();
        r.recover(&log.durable_records(), SimTime(3)).unwrap();
        assert_eq!(*r.store(), first);
    }

    #[test]
    fn delete_roundtrip() {
        let mut r = rm();
        let mut log = MemLog::new();
        write_ok(&mut r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(1))
            .unwrap();
        // t2 deletes it.
        match r.write(t(2), b"k", None, &mut log, SimTime(2)).unwrap() {
            Access::Value(before) => assert_eq!(before, Some(b"v".to_vec())),
            other => panic!("{other:?}"),
        }
        r.prepare(t(2), &mut log, Durability::Forced).unwrap();
        r.commit(t(2), &mut log, Durability::Forced, SimTime(3))
            .unwrap();
        assert_eq!(r.store().get(b"k"), None);
    }
}
