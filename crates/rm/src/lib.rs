//! # tpc-rm
//!
//! A transactional key-value **local resource manager** (LRM), the
//! "database and file managers" of the paper's §2.
//!
//! The resource manager supplies everything the 2PC engine manipulates:
//!
//! * strict-2PL data access through an embedded [`tpc_locks::LockManager`]
//!   (so lock-release timing — the paper's second throughput lever — is
//!   observable);
//! * WAL-protected updates with undo/redo records, prepare/commit/abort
//!   participation, and crash recovery by log replay ([`ResourceManager`]);
//! * the vote qualifiers the optimizations need: read-only detection
//!   (§4 *Read Only*), a static `reliable` property (§4 *Vote Reliable*),
//!   and heuristic decision support ([`RmConfig`]);
//! * shared-log awareness: when the TM and the LRM share a log, the LRM's
//!   prepared/committed records ride along with the TM's forces instead of
//!   forcing themselves (§4 *Sharing the Log*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod shared;
mod store;

pub use manager::{Access, ResourceManager, RmConfig, RmPhase};
pub use shared::SharedRm;
pub use store::KvStore;
