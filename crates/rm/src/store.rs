//! The committed key-value state.

use std::collections::BTreeMap;

/// Committed key-value data. Volatile: a simulated crash loses it, and
/// recovery rebuilds it by replaying the WAL (redo of committed
/// transactions), which keeps the recovery path honest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    data: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Committed value for `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.data.get(key).map(|v| v.as_slice())
    }

    /// Applies one committed mutation (`None` deletes). Returns the old
    /// value, which callers record as the undo image.
    pub fn apply(&mut self, key: &[u8], value: Option<Vec<u8>>) -> Option<Vec<u8>> {
        match value {
            Some(v) => self.data.insert(key.to_vec(), v),
            None => self.data.remove(key),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over committed entries in key order — used by the
    /// simulator's cross-node consistency checker.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.data.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Drops all data (simulated crash of the volatile store).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_insert_update_delete() {
        let mut s = KvStore::new();
        assert_eq!(s.apply(b"k", Some(b"v1".to_vec())), None);
        assert_eq!(s.get(b"k"), Some(&b"v1"[..]));
        assert_eq!(s.apply(b"k", Some(b"v2".to_vec())), Some(b"v1".to_vec()));
        assert_eq!(s.apply(b"k", None), Some(b"v2".to_vec()));
        assert_eq!(s.get(b"k"), None);
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut s = KvStore::new();
        s.apply(b"b", Some(b"2".to_vec()));
        s.apply(b"a", Some(b"1".to_vec()));
        let keys: Vec<_> = s.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = KvStore::new();
        s.apply(b"x", Some(b"1".to_vec()));
        s.clear();
        assert!(s.is_empty());
    }
}
