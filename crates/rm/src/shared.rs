//! A concurrently-callable resource manager for multi-lane hosts.
//!
//! [`ResourceManager`](crate::ResourceManager) is deliberately
//! single-threaded (`&mut self`), which suits the deterministic
//! simulator. A live node running M coordinator lanes in parallel needs
//! the opposite: a `&self` RM whose hot paths — lock acquisition, data
//! access, workspace bookkeeping — never serialize on one global
//! structure. [`SharedRm`] stripes the committed store by key hash
//! (co-partitioned with the [`StripedLockManager`]'s stripes) and shards
//! the per-transaction contexts by txn hash, so lanes working disjoint
//! keys and transactions proceed without contention.
//!
//! The transactional semantics are identical to `ResourceManager` —
//! same WAL records, same prepare/commit/abort state machine, same
//! recovery replay — which the multi-lane sim↔live equivalence test
//! pins down. Logging still goes through the `&mut dyn LogManager` the
//! caller passes in (each lane holds its own handle to the node's
//! shared log).
//!
//! Lock discipline: at most one internal mutex is ever held at a time;
//! data is copied out between acquisitions. No path can deadlock on
//! SharedRm's own locks.

use std::collections::HashMap;
use std::sync::Mutex;

use tpc_common::{Error, Lsn, Result, SimDuration, SimTime, TxnId};
use tpc_locks::{stripe_hash, Acquired, LockMode, LockStats, ReleaseGrant, StripedLockManager};
use tpc_wal::{Durability, LogManager, LogRecord, StreamId};

use crate::manager::{Access, RmConfig, RmPhase};
use crate::store::KvStore;

/// Shards for the txn-keyed maps (contexts, finished phases). Fixed and
/// independent of the key-stripe count.
const TXN_SHARDS: usize = 16;

/// (key, before-image, after-image) of one update, in execution order.
type UpdateEntry = (Vec<u8>, Option<Vec<u8>>, Option<Vec<u8>>);

#[derive(Debug, Default)]
struct TxnCtx {
    /// Pending writes, last-write-wins per key (`None` = delete).
    workspace: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Update log in execution order, for redo.
    updates: Vec<UpdateEntry>,
    prepared: bool,
}

/// A key-striped, transaction-sharded resource manager safe to drive
/// from many coordinator lanes at once.
#[derive(Debug)]
pub struct SharedRm {
    cfg: RmConfig,
    /// Committed state, striped by the same key hash as the lock table.
    stores: Vec<Mutex<KvStore>>,
    locks: StripedLockManager,
    txns: Vec<Mutex<HashMap<TxnId, TxnCtx>>>,
    finished: Vec<Mutex<HashMap<TxnId, RmPhase>>>,
}

impl SharedRm {
    /// An empty RM with `stripes` store/lock stripes (min 1).
    pub fn new(cfg: RmConfig, stripes: usize) -> Self {
        let n = stripes.max(1);
        SharedRm {
            cfg,
            stores: (0..n).map(|_| Mutex::new(KvStore::new())).collect(),
            locks: StripedLockManager::new(n),
            txns: (0..TXN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            finished: (0..TXN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &RmConfig {
        &self.cfg
    }

    /// Number of key stripes.
    pub fn stripes(&self) -> usize {
        self.stores.len()
    }

    #[inline]
    fn store_of(&self, key: &[u8]) -> &Mutex<KvStore> {
        &self.stores[(stripe_hash(key) % self.stores.len() as u64) as usize]
    }

    #[inline]
    fn txn_shard_idx(txn: TxnId) -> usize {
        let h = txn.origin.0 as u64 ^ txn.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % TXN_SHARDS as u64) as usize
    }

    fn ctx_shard(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, TxnCtx>> {
        &self.txns[Self::txn_shard_idx(txn)]
    }

    fn finished_shard(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, RmPhase>> {
        &self.finished[Self::txn_shard_idx(txn)]
    }

    /// Committed value for `key` (the live runtime's `Read` app command).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.store_of(key)
            .lock()
            .expect("store stripe poisoned")
            .get(key)
            .map(|v| v.to_vec())
    }

    /// Number of committed keys across all stripes.
    pub fn store_len(&self) -> usize {
        self.stores
            .iter()
            .map(|s| s.lock().expect("store stripe poisoned").len())
            .sum()
    }

    /// A snapshot of the committed state merged into one `KvStore` (for
    /// checks and consistency sweeps — not a hot path).
    pub fn store_snapshot(&self) -> KvStore {
        let mut out = KvStore::new();
        for stripe in &self.stores {
            for (k, v) in stripe.lock().expect("store stripe poisoned").iter() {
                out.apply(k, Some(v.to_vec()));
            }
        }
        out
    }

    /// Lock statistics summed over stripes.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Lock statistics per stripe (contention telemetry; stripe-index
    /// order).
    pub fn per_stripe_lock_stats(&self) -> Vec<LockStats> {
        self.locks.per_stripe_stats()
    }

    /// Transactions parked in lock wait queues right now, summed over
    /// stripes — the node's waits-for depth gauge.
    pub fn lock_waiter_depth(&self) -> usize {
        self.locks.per_stripe_waiters().iter().sum()
    }

    /// Keys with lock activity — zero when everything has released.
    pub fn locked_keys(&self) -> usize {
        self.locks.active_keys()
    }

    /// The phase of `txn`, if this RM has seen it.
    pub fn phase(&self, txn: TxnId) -> Option<RmPhase> {
        if let Some(ctx) = self
            .ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .get(&txn)
        {
            return Some(if ctx.prepared {
                RmPhase::Prepared
            } else {
                RmPhase::Active
            });
        }
        self.finished_shard(txn)
            .lock()
            .expect("finished shard poisoned")
            .get(&txn)
            .copied()
    }

    /// Transactions currently prepared-and-undecided (in doubt).
    pub fn in_doubt(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .txns
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .expect("txn shard poisoned")
                    .iter()
                    .filter(|(_, c)| c.prepared)
                    .map(|(t, _)| *t)
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort();
        v
    }

    /// True if `txn` performed no updates here.
    pub fn is_read_only(&self, txn: TxnId) -> bool {
        self.ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .get(&txn)
            .map(|c| c.updates.is_empty())
            .unwrap_or(true)
    }

    fn check_active(&self, txn: TxnId) -> Result<()> {
        if self
            .ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .get(&txn)
            .map(|c| c.prepared)
            .unwrap_or(false)
        {
            return Err(Error::InvalidState(format!(
                "{txn} is prepared; no further access allowed"
            )));
        }
        if self
            .finished_shard(txn)
            .lock()
            .expect("finished shard poisoned")
            .contains_key(&txn)
        {
            return Err(Error::InvalidState(format!("{txn} already finished")));
        }
        Ok(())
    }

    /// Pending-workspace-aware read of `key` for `txn`.
    fn visible(&self, txn: TxnId, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(ctx) = self
            .ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .get(&txn)
        {
            if let Some(pending) = ctx.workspace.get(key) {
                return pending.clone();
            }
        }
        self.get(key)
    }

    /// Reads `key` under a shared lock.
    pub fn read(&self, txn: TxnId, key: &[u8], now: SimTime) -> Result<Access> {
        self.check_active(txn)?;
        match self.locks.acquire(txn, key, LockMode::Shared, now) {
            Acquired::Granted => {
                self.ctx_shard(txn)
                    .lock()
                    .expect("txn shard poisoned")
                    .entry(txn)
                    .or_default();
                Ok(Access::Value(self.visible(txn, key)))
            }
            Acquired::Wait => Ok(Access::Wait),
            Acquired::Deadlock => Ok(Access::Deadlock),
        }
    }

    /// Writes `key` (`None` deletes) under an exclusive lock, logging the
    /// undo/redo record non-forced (durable with the prepare force).
    pub fn write(
        &self,
        txn: TxnId,
        key: &[u8],
        value: Option<Vec<u8>>,
        log: &mut dyn LogManager,
        now: SimTime,
    ) -> Result<Access> {
        self.check_active(txn)?;
        match self.locks.acquire(txn, key, LockMode::Exclusive, now) {
            Acquired::Wait => return Ok(Access::Wait),
            Acquired::Deadlock => return Ok(Access::Deadlock),
            Acquired::Granted => {}
        }
        let before = self.visible(txn, key);
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmUpdate {
                rm: self.cfg.id,
                txn,
                key: key.to_vec(),
                before: before.clone(),
                after: value.clone(),
            },
            Durability::NonForced,
        )?;
        let mut shard = self.ctx_shard(txn).lock().expect("txn shard poisoned");
        let ctx = shard.entry(txn).or_default();
        ctx.updates
            .push((key.to_vec(), before.clone(), value.clone()));
        ctx.workspace.insert(key.to_vec(), value);
        Ok(Access::Value(before))
    }

    /// Prepares `txn`: same contract as
    /// [`ResourceManager::prepare`](crate::ResourceManager::prepare).
    pub fn prepare(
        &self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
    ) -> Result<Lsn> {
        {
            let mut shard = self.ctx_shard(txn).lock().expect("txn shard poisoned");
            let ctx = shard.get_mut(&txn).ok_or(Error::UnknownTxn(txn))?;
            if ctx.prepared {
                return Err(Error::InvalidState(format!("{txn} already prepared")));
            }
            ctx.prepared = true;
        }
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmPrepared {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )
    }

    /// Releases a read-only transaction without logging anything.
    pub fn forget_read_only(&self, txn: TxnId, now: SimTime) -> Result<Vec<ReleaseGrant>> {
        {
            let mut shard = self.ctx_shard(txn).lock().expect("txn shard poisoned");
            let ctx = shard.remove(&txn).ok_or(Error::UnknownTxn(txn))?;
            if !ctx.updates.is_empty() {
                shard.insert(txn, ctx);
                return Err(Error::InvalidState(format!(
                    "{txn} performed updates; cannot vote read-only"
                )));
            }
        }
        self.finished_shard(txn)
            .lock()
            .expect("finished shard poisoned")
            .insert(txn, RmPhase::Committed);
        Ok(self.locks.release_all(txn, now))
    }

    /// Commits `txn`, applying its updates and releasing its locks.
    pub fn commit(
        &self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
        now: SimTime,
    ) -> Result<Vec<ReleaseGrant>> {
        let ctx = self
            .ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .remove(&txn)
            .ok_or(Error::UnknownTxn(txn))?;
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmCommitted {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )?;
        for (key, value) in ctx.workspace {
            self.store_of(&key)
                .lock()
                .expect("store stripe poisoned")
                .apply(&key, value);
        }
        self.finished_shard(txn)
            .lock()
            .expect("finished shard poisoned")
            .insert(txn, RmPhase::Committed);
        Ok(self.locks.release_all(txn, now))
    }

    /// Aborts `txn`, discarding its updates and releasing its locks.
    /// Abort of an unknown transaction is legal (presumed abort).
    pub fn abort(
        &self,
        txn: TxnId,
        log: &mut dyn LogManager,
        durability: Durability,
        now: SimTime,
    ) -> Result<Vec<ReleaseGrant>> {
        self.ctx_shard(txn)
            .lock()
            .expect("txn shard poisoned")
            .remove(&txn);
        log.append(
            StreamId::Rm(self.cfg.id.0),
            LogRecord::RmAborted {
                rm: self.cfg.id,
                txn,
            },
            durability,
        )?;
        self.finished_shard(txn)
            .lock()
            .expect("finished shard poisoned")
            .insert(txn, RmPhase::Aborted);
        Ok(self.locks.release_all(txn, now))
    }

    /// Evicts lock waiters older than `max_wait` — the cross-stripe (and
    /// cross-node) deadlock backstop. The caller aborts the victims.
    pub fn expire_lock_waits(
        &self,
        now: SimTime,
        max_wait: SimDuration,
    ) -> (Vec<TxnId>, Vec<ReleaseGrant>) {
        self.locks.expire_waiters(now, max_wait)
    }

    /// Simulated crash: all volatile state is lost.
    pub fn crash(&self) {
        for s in &self.stores {
            s.lock().expect("store stripe poisoned").clear();
        }
        for shard in &self.txns {
            shard.lock().expect("txn shard poisoned").clear();
        }
        for shard in &self.finished {
            shard.lock().expect("finished shard poisoned").clear();
        }
        // Locks died with the crash: release every holder and waiter.
        let mut all: Vec<TxnId> = self.locks.waiting_txns();
        all.extend(self.txns.iter().flat_map(|s| {
            s.lock()
                .expect("txn shard poisoned")
                .keys()
                .copied()
                .collect::<Vec<_>>()
        }));
        for txn in all {
            self.locks.release_all(txn, SimTime(0));
        }
    }

    /// Rebuilds state from the durable log, exactly as
    /// [`ResourceManager::recover`](crate::ResourceManager::recover):
    /// redo committed, drop unfinished, restore prepared as in-doubt with
    /// exclusive locks re-acquired. Returns the in-doubt transactions.
    pub fn recover(
        &self,
        durable: &[(Lsn, StreamId, LogRecord)],
        now: SimTime,
    ) -> Result<Vec<TxnId>> {
        self.crash();
        let mine = StreamId::Rm(self.cfg.id.0);
        let mut pending: HashMap<TxnId, TxnCtx> = HashMap::new();
        for (_, stream, record) in durable {
            if *stream != mine {
                continue;
            }
            match record {
                LogRecord::RmUpdate {
                    txn,
                    key,
                    before,
                    after,
                    ..
                } => {
                    let ctx = pending.entry(*txn).or_default();
                    ctx.updates
                        .push((key.clone(), before.clone(), after.clone()));
                    ctx.workspace.insert(key.clone(), after.clone());
                }
                LogRecord::RmPrepared { txn, .. } => {
                    pending.entry(*txn).or_default().prepared = true;
                }
                LogRecord::RmCommitted { txn, .. } => {
                    if let Some(ctx) = pending.remove(txn) {
                        for (key, value) in ctx.workspace {
                            self.store_of(&key)
                                .lock()
                                .expect("store stripe poisoned")
                                .apply(&key, value);
                        }
                    }
                    self.finished_shard(*txn)
                        .lock()
                        .expect("finished shard poisoned")
                        .insert(*txn, RmPhase::Committed);
                }
                LogRecord::RmAborted { txn, .. } => {
                    pending.remove(txn);
                    self.finished_shard(*txn)
                        .lock()
                        .expect("finished shard poisoned")
                        .insert(*txn, RmPhase::Aborted);
                }
                _ => {}
            }
        }
        let mut in_doubt = Vec::new();
        for (txn, ctx) in pending {
            if ctx.prepared {
                for key in ctx.workspace.keys() {
                    match self.locks.acquire(txn, key, LockMode::Exclusive, now) {
                        Acquired::Granted => {}
                        other => {
                            return Err(Error::InvalidState(format!(
                                "recovery lock re-acquisition for {txn} failed: {other:?}"
                            )))
                        }
                    }
                }
                self.ctx_shard(txn)
                    .lock()
                    .expect("txn shard poisoned")
                    .insert(txn, ctx);
                in_doubt.push(txn);
            }
        }
        in_doubt.sort();
        Ok(in_doubt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, RmId};
    use tpc_wal::MemLog;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn rm(stripes: usize) -> SharedRm {
        SharedRm::new(RmConfig::new(RmId(1)), stripes)
    }

    fn write_ok(rm: &SharedRm, txn: TxnId, key: &[u8], val: &[u8], log: &mut MemLog) {
        match rm
            .write(txn, key, Some(val.to_vec()), log, SimTime(0))
            .unwrap()
        {
            Access::Value(_) => {}
            other => panic!("write blocked: {other:?}"),
        }
    }

    #[test]
    fn commit_applies_across_stripes() {
        let r = rm(8);
        let mut log = MemLog::new();
        for i in 0..32 {
            let key = format!("k{i}");
            write_ok(&r, t(1), key.as_bytes(), b"v", &mut log);
        }
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        r.commit(t(1), &mut log, Durability::Forced, SimTime(1))
            .unwrap();
        assert_eq!(r.store_len(), 32);
        assert_eq!(r.get(b"k7"), Some(b"v".to_vec()));
        assert_eq!(r.phase(t(1)), Some(RmPhase::Committed));
        assert_eq!(r.locked_keys(), 0);
    }

    #[test]
    fn semantics_match_single_threaded_rm() {
        // The same script against ResourceManager and SharedRm must
        // produce the same store, phases and log records.
        let mut single = crate::ResourceManager::new(RmConfig::new(RmId(1)));
        let shared = rm(4);
        let mut log_a = MemLog::new();
        let mut log_b = MemLog::new();

        for (txn, key, val) in [(1u64, "a", "1"), (2, "b", "2"), (1, "c", "3")] {
            single
                .write(
                    t(txn),
                    key.as_bytes(),
                    Some(val.into()),
                    &mut log_a,
                    SimTime(0),
                )
                .unwrap();
            shared
                .write(
                    t(txn),
                    key.as_bytes(),
                    Some(val.into()),
                    &mut log_b,
                    SimTime(0),
                )
                .unwrap();
        }
        for harness in [1u64, 2] {
            single
                .prepare(t(harness), &mut log_a, Durability::Forced)
                .unwrap();
            shared
                .prepare(t(harness), &mut log_b, Durability::Forced)
                .unwrap();
        }
        single
            .commit(t(1), &mut log_a, Durability::Forced, SimTime(1))
            .unwrap();
        shared
            .commit(t(1), &mut log_b, Durability::Forced, SimTime(1))
            .unwrap();
        single
            .abort(t(2), &mut log_a, Durability::NonForced, SimTime(2))
            .unwrap();
        shared
            .abort(t(2), &mut log_b, Durability::NonForced, SimTime(2))
            .unwrap();

        assert_eq!(*single.store(), shared.store_snapshot());
        assert_eq!(log_a.stats(), log_b.stats());
        assert_eq!(single.phase(t(1)), shared.phase(t(1)));
        assert_eq!(single.phase(t(2)), shared.phase(t(2)));
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let r = std::sync::Arc::new(rm(8));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut log = MemLog::new();
                let txn = t(w + 1);
                for i in 0..16 {
                    let key = format!("w{w}-k{i}");
                    match r
                        .write(
                            txn,
                            key.as_bytes(),
                            Some(b"v".to_vec()),
                            &mut log,
                            SimTime(0),
                        )
                        .unwrap()
                    {
                        Access::Value(_) => {}
                        other => panic!("disjoint write blocked: {other:?}"),
                    }
                }
                r.prepare(txn, &mut log, Durability::Forced).unwrap();
                r.commit(txn, &mut log, Durability::Forced, SimTime(1))
                    .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.store_len(), 64);
        assert_eq!(r.locked_keys(), 0);
        assert_eq!(r.in_doubt(), Vec::<TxnId>::new());
    }

    #[test]
    fn recover_restores_in_doubt_with_locks() {
        let r = rm(4);
        let mut log = MemLog::new();
        write_ok(&r, t(1), b"k", b"v", &mut log);
        r.prepare(t(1), &mut log, Durability::Forced).unwrap();
        log.crash();
        log.restart();
        let in_doubt = r.recover(&log.durable_records(), SimTime(0)).unwrap();
        assert_eq!(in_doubt, vec![t(1)]);
        assert_eq!(
            r.write(t(2), b"k", Some(b"w".to_vec()), &mut log, SimTime(1))
                .unwrap(),
            Access::Wait
        );
        r.commit(t(1), &mut log, Durability::Forced, SimTime(2))
            .unwrap();
        assert_eq!(r.get(b"k"), Some(b"v".to_vec()));
    }

    #[test]
    fn expire_lock_waits_breaks_cross_stripe_jam() {
        let r = rm(8);
        let mut log = MemLog::new();
        write_ok(&r, t(1), b"hot", b"a", &mut log);
        assert_eq!(
            r.write(t(2), b"hot", Some(b"b".to_vec()), &mut log, SimTime(1))
                .unwrap(),
            Access::Wait
        );
        let (victims, _) = r.expire_lock_waits(SimTime(1_000_000), SimDuration(1_000));
        assert_eq!(victims, vec![t(2)]);
        // The victim aborts; the holder is unaffected.
        r.abort(t(2), &mut log, Durability::NonForced, SimTime(1_000_001))
            .unwrap();
        assert_eq!(r.phase(t(1)), Some(RmPhase::Active));
    }
}
