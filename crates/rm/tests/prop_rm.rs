//! Property tests for the resource manager: the committed store always
//! equals the effects of committed transactions in order, across
//! arbitrary commit/abort/crash interleavings.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tpc_common::{NodeId, RmId, SimTime, TxnId};
use tpc_rm::{Access, ResourceManager, RmConfig};
use tpc_wal::{Durability, LogManager, MemLog};

#[derive(Clone, Debug)]
enum TxnFate {
    Commit,
    Abort,
    CrashBeforePrepare,
    CrashAfterPrepareThenCommit,
    CrashAfterPrepareThenAbort,
    CrashAfterCommit,
}

fn arb_fate() -> impl Strategy<Value = TxnFate> {
    prop_oneof![
        3 => Just(TxnFate::Commit),
        2 => Just(TxnFate::Abort),
        1 => Just(TxnFate::CrashBeforePrepare),
        1 => Just(TxnFate::CrashAfterPrepareThenCommit),
        1 => Just(TxnFate::CrashAfterPrepareThenAbort),
        1 => Just(TxnFate::CrashAfterCommit),
    ]
}

fn arb_writes() -> impl Strategy<Value = Vec<(u8, Option<u8>)>> {
    prop::collection::vec((0u8..6, prop::option::of(any::<u8>())), 1..5)
}

proptest! {
    /// Run a sequence of transactions with assorted fates (including
    /// crashes at every interesting point) and verify the final store
    /// equals a shadow model that applies only the committed ones.
    #[test]
    fn store_equals_committed_history(
        txns in prop::collection::vec((arb_writes(), arb_fate()), 1..12)
    ) {
        let mut rm = ResourceManager::new(RmConfig::new(RmId(0)));
        let mut log = MemLog::new();
        let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut clock = 0u64;

        for (i, (writes, fate)) in txns.iter().enumerate() {
            clock += 10;
            let txn = TxnId::new(NodeId(0), i as u64 + 1);
            let now = SimTime(clock);
            for (key, value) in writes {
                let k = vec![*key];
                let v = value.map(|b| vec![b]);
                match rm.write(txn, &k, v, &mut log, now).unwrap() {
                    Access::Value(_) => {}
                    other => prop_assert!(false, "single-txn write blocked: {other:?}"),
                }
            }
            let apply_shadow = |shadow: &mut BTreeMap<Vec<u8>, Vec<u8>>| {
                for (key, value) in writes {
                    match value {
                        Some(b) => {
                            shadow.insert(vec![*key], vec![*b]);
                        }
                        None => {
                            shadow.remove(&vec![*key]);
                        }
                    }
                }
            };
            match fate {
                TxnFate::Commit => {
                    rm.prepare(txn, &mut log, Durability::Forced).unwrap();
                    rm.commit(txn, &mut log, Durability::Forced, now).unwrap();
                    apply_shadow(&mut shadow);
                }
                TxnFate::Abort => {
                    // Forced here so a later simulated crash cannot
                    // resurrect the transaction as in-doubt (an unforced
                    // abort record legitimately may be lost — PA's whole
                    // point — which would make the shadow model
                    // nondeterministic).
                    rm.abort(txn, &mut log, Durability::Forced, now).unwrap();
                }
                TxnFate::CrashBeforePrepare => {
                    log.crash();
                    log.restart();
                    let in_doubt = rm.recover(&log.durable_records(), now).unwrap();
                    prop_assert!(!in_doubt.contains(&txn));
                }
                TxnFate::CrashAfterPrepareThenCommit => {
                    rm.prepare(txn, &mut log, Durability::Forced).unwrap();
                    log.crash();
                    log.restart();
                    let in_doubt = rm.recover(&log.durable_records(), now).unwrap();
                    prop_assert!(in_doubt.contains(&txn), "prepared txn must be in doubt");
                    rm.commit(txn, &mut log, Durability::Forced, now).unwrap();
                    apply_shadow(&mut shadow);
                }
                TxnFate::CrashAfterPrepareThenAbort => {
                    rm.prepare(txn, &mut log, Durability::Forced).unwrap();
                    log.crash();
                    log.restart();
                    let in_doubt = rm.recover(&log.durable_records(), now).unwrap();
                    prop_assert!(in_doubt.contains(&txn));
                    rm.abort(txn, &mut log, Durability::Forced, now).unwrap();
                }
                TxnFate::CrashAfterCommit => {
                    rm.prepare(txn, &mut log, Durability::Forced).unwrap();
                    rm.commit(txn, &mut log, Durability::Forced, now).unwrap();
                    apply_shadow(&mut shadow);
                    log.crash();
                    log.restart();
                    let in_doubt = rm.recover(&log.durable_records(), now).unwrap();
                    prop_assert!(in_doubt.is_empty());
                }
            }
            // Invariant after every transaction: store == shadow.
            let actual: BTreeMap<Vec<u8>, Vec<u8>> = rm
                .store()
                .iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            prop_assert_eq!(&actual, &shadow, "after txn {} ({:?})", i, fate);
        }

        // Final recovery from scratch must reproduce the same store.
        let mut fresh = ResourceManager::new(RmConfig::new(RmId(0)));
        log.flush().unwrap();
        fresh.recover(&log.durable_records(), SimTime(clock + 1)).unwrap();
        let recovered: BTreeMap<Vec<u8>, Vec<u8>> = fresh
            .store()
            .iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        prop_assert_eq!(recovered, shadow);
    }
}
