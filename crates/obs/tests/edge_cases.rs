//! Edge cases the unit tests skirt: the histogram's overflow bucket,
//! snapshot merging with disjoint and overlapping phase sets, and a
//! property check that percentiles stay ordered and bounded through
//! merges.

use proptest::prelude::*;
use tpc_common::{NodeId, SimTime, TxnId};
use tpc_obs::{Histogram, HistogramSnapshot, Obs, ObsSnapshot, Phase, Span};

#[test]
fn overflow_bucket_catches_huge_values() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(1u64 << 62);
    h.record(1u64 << 63);
    let s = h.snapshot();
    assert_eq!(s.count, 3);
    assert_eq!(s.max, u64::MAX);
    // All three land in the catch-all top bucket…
    assert_eq!(s.buckets[63], 3);
    // …whose reported upper bound is the observed max, not a power of two.
    assert_eq!(s.p50(), u64::MAX);
    assert_eq!(s.p99(), u64::MAX);
    // The cumulative view ends exactly at the total count with an
    // unbounded final `le`.
    let cum = s.cumulative();
    assert_eq!(cum.last(), Some(&(u64::MAX, 3)));
}

#[test]
fn overflow_sum_saturates_behavior_is_additive_per_bucket() {
    // Two near-boundary values straddling the top bucket's lower edge.
    let h = Histogram::new();
    h.record((1u64 << 62) - 1); // last value of bucket 62
    h.record(1u64 << 62); // first value of bucket 63
    let s = h.snapshot();
    assert_eq!(s.buckets[62], 1);
    assert_eq!(s.buckets[63], 1);
}

fn span(txn: u64, phase: Phase, start: u64, end: u64, seat: u64) -> Span {
    Span {
        txn: TxnId::new(NodeId(0), txn),
        node: NodeId(0),
        phase,
        start: SimTime(start),
        end: SimTime(end),
        seat,
        parent: None,
    }
}

#[test]
fn merge_disjoint_phase_sets_keeps_both() {
    // Node A recorded only prepare, node B only ack: the merged snapshot
    // carries both, each with its own counts.
    let a = Obs::new();
    a.record(Phase::Prepare, 100);
    let b = Obs::new();
    b.record(Phase::Ack, 7);
    b.record(Phase::Ack, 9);

    let mut merged = a.snapshot();
    // Strip phases B never touched to make the sets truly disjoint.
    let mut bs = b.snapshot();
    bs.phases.retain(|(_, h)| h.count > 0);
    merged.phases.retain(|(_, h)| h.count > 0);
    merged.merge(&bs);

    assert_eq!(merged.phase(Phase::Prepare).unwrap().count, 1);
    assert_eq!(merged.phase(Phase::Ack).unwrap().count, 2);
    assert!(merged.phase(Phase::Decision).is_none());
}

#[test]
fn merge_overlapping_phases_and_spans_concatenates() {
    let a = Obs::new();
    a.set_tracing(true);
    a.record_span(span(1, Phase::Prepare, 0, 50, 1));
    let b = Obs::new();
    b.set_tracing(true);
    b.record_span(span(1, Phase::Prepare, 10, 90, 2));
    b.record_span(span(2, Phase::Prepare, 0, 5, 3));

    let merged = ObsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
    let h = merged.phase(Phase::Prepare).unwrap();
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 50 + 80 + 5);
    assert_eq!(h.max, 80);
    assert_eq!(merged.spans.len(), 3);
    assert_eq!(merged.txn_spans(TxnId::new(NodeId(0), 1)).len(), 2);
}

#[test]
fn merge_empty_into_populated_is_identity() {
    let a = Obs::new();
    a.record(Phase::Fsync, 42);
    a.in_doubt_enter(TxnId::new(NodeId(0), 1), SimTime(0));
    a.in_doubt_resolve(TxnId::new(NodeId(0), 1), SimTime(10));
    let mut merged = a.snapshot();
    merged.merge(&ObsSnapshot::default());
    let base = a.snapshot();
    assert_eq!(
        merged.phase(Phase::Fsync).unwrap().count,
        base.phase(Phase::Fsync).unwrap().count
    );
    assert_eq!(merged.in_doubt.count, base.in_doubt.count);
    assert_eq!(merged.in_doubt.sum, base.in_doubt.sum);
}

proptest! {
    /// For any two sample sets recorded on separate nodes, the merged
    /// histogram's percentiles are monotone in q, bounded by the true
    /// max, and at least every per-node percentile's bucket lower
    /// neighborhood — i.e. merging never invents smaller-than-recorded
    /// values or loses the tail.
    #[test]
    fn merged_percentiles_are_monotone_and_bounded(
        xs in prop::collection::vec(0u64..2_000_000, 1..200),
        ys in prop::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let a = Histogram::new();
        for &v in &xs { a.record(v); }
        let b = Histogram::new();
        for &v in &ys { b.record(v); }

        let mut m: HistogramSnapshot = a.snapshot();
        m.merge(&b.snapshot());

        let true_max = xs.iter().chain(&ys).copied().max().unwrap();
        prop_assert_eq!(m.count, (xs.len() + ys.len()) as u64);
        prop_assert_eq!(m.max, true_max);

        // Monotone in q…
        let qs = [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(m.quantile(w[0]) <= m.quantile(w[1]),
                "q{} = {} > q{} = {}", w[0], m.quantile(w[0]), w[1], m.quantile(w[1]));
        }
        // …bounded by the true max…
        for &q in &qs {
            prop_assert!(m.quantile(q) <= true_max);
        }
        // …and the top quantile reaches it exactly.
        prop_assert_eq!(m.quantile(1.0), true_max);

        // Merging cannot shrink the tail below either input's p99.
        let tail = m.quantile(0.99);
        let floor = a.snapshot().quantile(0.99).min(b.snapshot().quantile(0.99));
        prop_assert!(tail >= floor / 2, "merged p99 {tail} under half of min input p99 {floor}");
    }
}
