//! Property: the timeline is a lossless decomposition of the cumulative
//! recorder. Summing every window's deltas — histograms bucket-for-bucket,
//! counters exactly — reproduces the cumulative [`ObsSnapshot`], as long
//! as the ring is large enough that no window was evicted.

use std::sync::Arc;

use proptest::prelude::*;
use tpc_common::{NodeId, SimTime, TxnId};
use tpc_obs::{Obs, Phase, Timeline, TimelineCounter, TimelineHist};

/// One randomized recording action against the shared `Obs`.
#[derive(Clone, Copy, Debug)]
enum Action {
    Phase { phase: usize, micros: u64 },
    Enter { txn: u64 },
    Resolve { txn: u64 },
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..Phase::ALL.len(), 0u64..100_000)
            .prop_map(|(phase, micros)| Action::Phase { phase, micros }),
        (0u64..20).prop_map(|txn| Action::Enter { txn }),
        (0u64..20).prop_map(|txn| Action::Resolve { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_deltas_sum_to_cumulative_snapshot(
        actions in prop::collection::vec(action(), 1..200),
        window_us in 1u64..5_000,
    ) {
        // Ring sized so the whole run fits: one action per 100µs of
        // virtual time, so the last window index is bounded by
        // 200 * 100 / window_us; +2 covers rounding.
        let windows = (200 * 100 / window_us + 2) as usize;
        let timeline = Arc::new(Timeline::new(window_us, windows));
        let obs = Obs::new().with_timeline(Arc::clone(&timeline));

        let mut clock = 0u64;
        for a in &actions {
            clock += 100;
            let now = SimTime(clock);
            match *a {
                Action::Phase { phase, micros } => {
                    obs.record_at(Phase::ALL[phase], micros, now);
                }
                Action::Enter { txn } => {
                    obs.in_doubt_enter(TxnId::new(NodeId(0), txn), now);
                }
                Action::Resolve { txn } => {
                    obs.in_doubt_resolve(TxnId::new(NodeId(0), txn), now);
                }
            }
        }

        let now = SimTime(clock);
        let cumulative = obs.snapshot_at(now);
        let tl = timeline.snapshot(now);

        prop_assert_eq!(tl.late_drops, 0, "ring must have been large enough");

        // Per-phase histograms: bucket-for-bucket identical.
        for (phase, cum_hist) in &cumulative.phases {
            let windowed = tl.hist_total(TimelineHist::Phase(*phase));
            prop_assert_eq!(&windowed, cum_hist, "phase {}", phase.name());
        }

        // In-doubt transition counters match exactly (idempotent entries
        // and no-op resolves must not desynchronize the two views).
        prop_assert_eq!(
            tl.counter_total(TimelineCounter::InDoubtEntered),
            cumulative.in_doubt_entered
        );
        prop_assert_eq!(
            tl.counter_total(TimelineCounter::InDoubtResolved),
            cumulative.in_doubt_resolved
        );
    }
}
