//! Crash flight recorder: a bounded ring of recent structured events.
//!
//! When an invariant check fails or a chaos cell trips, the assertion
//! message alone rarely explains *how* the cluster got there. Each node
//! keeps a small ring of the protocol-relevant events that preceded the
//! failure — decisions, forced writes, in-doubt transitions, WAL health
//! changes, admission rejections — and `tpc_runtime::verify::check` dumps
//! the rings automatically when a violation is detected. The same dump is
//! served live as JSON at `/debug/flight`.
//!
//! The ring is deliberately tiny and mutex-guarded: events are rare
//! relative to the hot path (a handful per transaction at most), and a
//! recorder that is only consulted post-mortem does not need to be
//! wait-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tpc_common::{SimTime, TxnId};

/// Default ring capacity per node.
pub const FLIGHT_CAP: usize = 256;

/// What kind of event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A commit/abort decision was reached (or delivered) for a txn.
    Decision,
    /// A forced log write was issued (direct or via group commit).
    Force,
    /// A transaction entered the in-doubt window.
    InDoubtEnter,
    /// A transaction's in-doubt window closed.
    InDoubtResolve,
    /// WAL health changed (degraded entered, fail-stop, I/O error).
    WalHealth,
    /// A request was rejected (admission control or degraded refusal).
    Rejection,
}

impl FlightKind {
    /// Stable lowercase name used in JSON and text dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Decision => "decision",
            FlightKind::Force => "force",
            FlightKind::InDoubtEnter => "in_doubt_enter",
            FlightKind::InDoubtResolve => "in_doubt_resolve",
            FlightKind::WalHealth => "wal_health",
            FlightKind::Rejection => "rejection",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic per-recorder sequence number (never reset, so a full
    /// ring still shows how many events were evicted before the dump).
    pub seq: u64,
    /// Harness clock when the event happened.
    pub at: SimTime,
    /// Event kind.
    pub kind: FlightKind,
    /// Transaction involved, when one is.
    pub txn: Option<TxnId>,
    /// Free-form context (`"commit"`, `"fsync gave up: ..."`, ...).
    pub detail: String,
}

/// Bounded per-node ring of [`FlightEvent`]s.
pub struct FlightRecorder {
    cap: usize,
    seq: AtomicU64,
    events: Mutex<VecDeque<FlightEvent>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(FLIGHT_CAP)
    }
}

impl FlightRecorder {
    /// Ring holding at most `cap` events (clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn record(
        &self,
        kind: FlightKind,
        at: SimTime,
        txn: Option<TxnId>,
        detail: impl Into<String>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.events.lock().expect("flight ring poisoned");
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(FlightEvent {
            seq,
            at,
            kind,
            txn,
            detail: detail.into(),
        });
    }

    /// Events recorded over the recorder's lifetime (including evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Copy-out of the retained events, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        self.events
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic JSON rendering of a flight dump (an array of events).
pub fn render_flight_json(events: &[FlightEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"txn\":{},\"detail\":\"{}\"}}",
            e.seq,
            e.at.0,
            e.kind.name(),
            match e.txn {
                Some(t) => format!("\"{t:?}\""),
                None => "null".to_string(),
            },
            escape_json(&e.detail)
        );
    }
    out.push(']');
    out
}

/// Human-oriented text rendering, one event per line (used by the
/// automatic dump on invariant violations).
pub fn render_flight_text(events: &[FlightEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for e in events {
        let _ = match e.txn {
            Some(t) => writeln!(
                out,
                "  #{:<6} t={:<12} {:<16} {:?} {}",
                e.seq,
                e.at.0,
                e.kind.name(),
                t,
                e.detail
            ),
            None => writeln!(
                out,
                "  #{:<6} t={:<12} {:<16} {}",
                e.seq,
                e.at.0,
                e.kind.name(),
                e.detail
            ),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let f = FlightRecorder::new(3);
        for i in 0..5u64 {
            f.record(FlightKind::Force, SimTime(i * 10), None, format!("f{i}"));
        }
        let dump = f.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 2);
        assert_eq!(dump[2].seq, 4);
        assert_eq!(f.recorded(), 5);
    }

    #[test]
    fn json_escapes_and_renders_txn() {
        let f = FlightRecorder::new(8);
        let txn = TxnId::new(NodeId(1), 7);
        f.record(FlightKind::Decision, SimTime(42), Some(txn), "say \"hi\"\n");
        let json = render_flight_json(&f.dump());
        assert!(json.starts_with('['));
        assert!(json.contains("\"kind\":\"decision\""));
        assert!(json.contains("\\\"hi\\\"\\n"));
        assert!(json.contains("\"at_us\":42"));
    }

    #[test]
    fn text_dump_is_one_line_per_event() {
        let f = FlightRecorder::new(8);
        f.record(FlightKind::WalHealth, SimTime(1), None, "degraded");
        f.record(
            FlightKind::Rejection,
            SimTime(2),
            Some(TxnId::new(NodeId(0), 1)),
            "queue full",
        );
        let text = render_flight_text(&f.dump());
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("wal_health"));
        assert!(text.contains("queue full"));
    }
}
