//! Prometheus text exposition (format 0.0.4) renderer.
//!
//! Metric families:
//! - `tpc_phase_latency_us` — histogram, labels `node`, `phase`; log2
//!   buckets exposed as cumulative `le` bounds.
//! - `tpc_in_doubt_seconds` — histogram of closed in-doubt windows per
//!   node (base-unit seconds, per Prometheus convention), plus the
//!   `tpc_in_doubt_current` and `tpc_in_doubt_oldest_age_seconds` gauges
//!   and `tpc_in_doubt_{entered,resolved}_total` counters.
//! - `tpc_spans_dropped_total` — spans lost at the buffer cap.
//! - one `counter` family per entry the host supplies in
//!   [`NodeExport::counters`] (e.g. `tpc_flows_sent_total`,
//!   `tpc_forced_writes_total`), labelled by `node`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tpc_common::NodeId;

use crate::{ObsSnapshot, Phase};

/// One node's contribution to the exposition: its histogram snapshot and
/// whatever counters the host wants exported (name must already end in
/// `_total` and be a valid Prometheus metric name).
pub struct NodeExport {
    /// Node the samples belong to (becomes the `node` label).
    pub node: NodeId,
    /// Phase histograms and spans.
    pub obs: ObsSnapshot,
    /// Counter samples: `(metric_name, help, value)`.
    pub counters: Vec<(&'static str, &'static str, u64)>,
    /// Gauge samples: `(metric_name, help, value)` — instantaneous
    /// state (e.g. `tpc_wal_degraded`), rendered with `# TYPE ... gauge`.
    pub gauges: Vec<(&'static str, &'static str, f64)>,
    /// Labeled counter samples: `(metric_name, help, extra_labels,
    /// value)` where `extra_labels` is rendered inside the braces after
    /// the `node` label, e.g. `stripe="3"`. The host owns cardinality
    /// control (see the runtime's per-stripe lock export, which caps
    /// stripes and aggregates the tail into `stripe="other"`).
    pub labeled: Vec<(&'static str, &'static str, String, u64)>,
}

/// One counter family during grouping: help text plus per-node samples.
type Family = (&'static str, Vec<(NodeId, u64)>);

/// One labeled family during grouping: help plus (node, labels, value).
type LabeledFamily = (&'static str, Vec<(NodeId, String, u64)>);

/// One gauge family during grouping: help text plus per-node samples.
type GaugeFamily = (&'static str, Vec<(NodeId, f64)>);

/// Render the full exposition for a set of nodes.
pub fn render_prometheus(exports: &[NodeExport]) -> String {
    let mut out = String::new();

    // Counter families first, grouped so each # TYPE appears once.
    let mut families: BTreeMap<&'static str, Family> = BTreeMap::new();
    for e in exports {
        for &(name, help, value) in &e.counters {
            families
                .entry(name)
                .or_insert_with(|| (help, Vec::new()))
                .1
                .push((e.node, value));
        }
        // Families derived from the snapshot itself, present for every node.
        let derived: [(&'static str, &'static str, u64); 3] = [
            (
                "tpc_spans_dropped_total",
                "Spans dropped because the per-node buffer was full",
                e.obs.dropped_spans,
            ),
            (
                "tpc_in_doubt_entered_total",
                "In-doubt windows opened (Prepared durable, outcome unknown)",
                e.obs.in_doubt_entered,
            ),
            (
                "tpc_in_doubt_resolved_total",
                "In-doubt windows closed by a real outcome",
                e.obs.in_doubt_resolved,
            ),
        ];
        for (name, help, value) in derived {
            families
                .entry(name)
                .or_insert_with(|| (help, Vec::new()))
                .1
                .push((e.node, value));
        }
    }
    for (name, (help, samples)) in &families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (node, value) in samples {
            let _ = writeln!(out, "{name}{{node=\"{}\"}} {value}", node.0);
        }
    }

    // Labeled counter families (extra label pairs beyond `node`).
    let mut labeled_families: BTreeMap<&'static str, LabeledFamily> = BTreeMap::new();
    for e in exports {
        for (name, help, labels, value) in &e.labeled {
            labeled_families
                .entry(name)
                .or_insert_with(|| (help, Vec::new()))
                .1
                .push((e.node, labels.clone(), *value));
        }
    }
    for (name, (help, samples)) in &labeled_families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (node, labels, value) in samples {
            let _ = writeln!(out, "{name}{{node=\"{}\",{labels}}} {value}", node.0);
        }
    }

    // Host-supplied gauge families, grouped like the counters.
    let mut gauge_families: BTreeMap<&'static str, GaugeFamily> = BTreeMap::new();
    for e in exports {
        for &(name, help, value) in &e.gauges {
            gauge_families
                .entry(name)
                .or_insert_with(|| (help, Vec::new()))
                .1
                .push((e.node, value));
        }
    }
    for (name, (help, samples)) in &gauge_families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (node, value) in samples {
            let _ = writeln!(out, "{name}{{node=\"{}\"}} {value}", node.0);
        }
    }

    // In-doubt gauges: instantaneous exposure at snapshot time.
    let _ = writeln!(
        out,
        "# HELP tpc_in_doubt_current Transactions currently prepared but undecided"
    );
    let _ = writeln!(out, "# TYPE tpc_in_doubt_current gauge");
    for e in exports {
        let _ = writeln!(
            out,
            "tpc_in_doubt_current{{node=\"{}\"}} {}",
            e.node.0, e.obs.in_doubt_current
        );
    }
    let _ = writeln!(
        out,
        "# HELP tpc_in_doubt_oldest_age_seconds Age of the oldest open in-doubt window"
    );
    let _ = writeln!(out, "# TYPE tpc_in_doubt_oldest_age_seconds gauge");
    for e in exports {
        let _ = writeln!(
            out,
            "tpc_in_doubt_oldest_age_seconds{{node=\"{}\"}} {}",
            e.node.0,
            e.obs.in_doubt_oldest_age_us as f64 / 1e6
        );
    }

    // In-doubt window histogram, rendered in base-unit seconds.
    let _ = writeln!(
        out,
        "# HELP tpc_in_doubt_seconds Time spent prepared-but-undecided per transaction"
    );
    let _ = writeln!(out, "# TYPE tpc_in_doubt_seconds histogram");
    for e in exports {
        let h = &e.obs.in_doubt;
        if h.count == 0 {
            continue;
        }
        let labels = format!("node=\"{}\"", e.node.0);
        for (le_us, cum) in h.cumulative() {
            let _ = writeln!(
                out,
                "tpc_in_doubt_seconds_bucket{{{labels},le=\"{}\"}} {cum}",
                le_us as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "tpc_in_doubt_seconds_bucket{{{labels},le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(
            out,
            "tpc_in_doubt_seconds_sum{{{labels}}} {}",
            h.sum as f64 / 1e6
        );
        let _ = writeln!(out, "tpc_in_doubt_seconds_count{{{labels}}} {}", h.count);
    }

    // The phase-latency histogram family.
    let _ = writeln!(
        out,
        "# HELP tpc_phase_latency_us Per-phase latency in microseconds (log2 buckets)"
    );
    let _ = writeln!(out, "# TYPE tpc_phase_latency_us histogram");
    for e in exports {
        for phase in Phase::ALL {
            let Some(h) = e.obs.phase(phase) else {
                continue;
            };
            let labels = format!("node=\"{}\",phase=\"{}\"", e.node.0, phase.name());
            for (le, cum) in h.cumulative() {
                let _ = writeln!(
                    out,
                    "tpc_phase_latency_us_bucket{{{labels},le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "tpc_phase_latency_us_bucket{{{labels},le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(out, "tpc_phase_latency_us_sum{{{labels}}} {}", h.sum);
            let _ = writeln!(out, "tpc_phase_latency_us_count{{{labels}}} {}", h.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn export() -> Vec<NodeExport> {
        let obs = Obs::new();
        obs.record(Phase::Prepare, 300);
        obs.record(Phase::Prepare, 900);
        obs.record(Phase::Fsync, 50);
        vec![
            NodeExport {
                node: NodeId(0),
                obs: obs.snapshot(),
                counters: vec![
                    ("tpc_flows_sent_total", "Protocol flows sent", 7),
                    ("tpc_forced_writes_total", "Forced log writes", 3),
                ],
                gauges: vec![("tpc_wal_degraded", "Degraded to read-only", 0.0)],
                labeled: vec![],
            },
            NodeExport {
                node: NodeId(1),
                obs: Obs::new().snapshot(),
                counters: vec![("tpc_flows_sent_total", "Protocol flows sent", 2)],
                gauges: vec![("tpc_wal_degraded", "Degraded to read-only", 1.0)],
                labeled: vec![],
            },
        ]
    }

    #[test]
    fn renders_counters_with_single_type_line() {
        let text = render_prometheus(&export());
        assert_eq!(
            text.matches("# TYPE tpc_flows_sent_total counter").count(),
            1
        );
        assert!(text.contains("tpc_flows_sent_total{node=\"0\"} 7"));
        assert!(text.contains("tpc_flows_sent_total{node=\"1\"} 2"));
        assert!(text.contains("tpc_forced_writes_total{node=\"0\"} 3"));
    }

    #[test]
    fn renders_host_gauges_with_single_type_line() {
        let text = render_prometheus(&export());
        assert_eq!(text.matches("# TYPE tpc_wal_degraded gauge").count(), 1);
        assert!(text.contains("tpc_wal_degraded{node=\"0\"} 0"));
        assert!(text.contains("tpc_wal_degraded{node=\"1\"} 1"));
    }

    #[test]
    fn renders_histogram_with_inf_bucket_and_sum() {
        let text = render_prometheus(&export());
        assert!(text.contains("# TYPE tpc_phase_latency_us histogram"));
        assert!(text
            .contains("tpc_phase_latency_us_bucket{node=\"0\",phase=\"prepare\",le=\"+Inf\"} 2"));
        assert!(text.contains("tpc_phase_latency_us_sum{node=\"0\",phase=\"prepare\"} 1200"));
        assert!(text.contains("tpc_phase_latency_us_count{node=\"0\",phase=\"fsync\"} 1"));
        // Empty phases are elided entirely.
        assert!(!text.contains("phase=\"work\""));
    }

    #[test]
    fn renders_in_doubt_families_and_dropped_spans() {
        use tpc_common::{SimTime, TxnId};
        let obs = Obs::new();
        let t1 = TxnId::new(NodeId(1), 1);
        let t2 = TxnId::new(NodeId(1), 2);
        obs.in_doubt_enter(t1, SimTime(0));
        obs.in_doubt_resolve(t1, SimTime(2_000_000)); // a 2 s window
        obs.in_doubt_enter(t2, SimTime(3_000_000));
        let text = render_prometheus(&[NodeExport {
            node: NodeId(1),
            obs: obs.snapshot_at(SimTime(4_000_000)),
            counters: vec![],
            gauges: vec![],
            labeled: vec![],
        }]);
        assert!(text.contains("# TYPE tpc_in_doubt_seconds histogram"));
        assert!(text.contains("tpc_in_doubt_seconds_count{node=\"1\"} 1"));
        assert!(text.contains("tpc_in_doubt_seconds_sum{node=\"1\"} 2"));
        assert!(text.contains("tpc_in_doubt_seconds_bucket{node=\"1\",le=\"+Inf\"} 1"));
        assert!(text.contains("# TYPE tpc_in_doubt_current gauge"));
        assert!(text.contains("tpc_in_doubt_current{node=\"1\"} 1"));
        assert!(text.contains("# TYPE tpc_in_doubt_oldest_age_seconds gauge"));
        assert!(text.contains("tpc_in_doubt_oldest_age_seconds{node=\"1\"} 1"));
        assert!(text.contains("tpc_in_doubt_entered_total{node=\"1\"} 2"));
        assert!(text.contains("tpc_in_doubt_resolved_total{node=\"1\"} 1"));
        assert!(text.contains("tpc_spans_dropped_total{node=\"1\"} 0"));
    }

    #[test]
    fn spans_dropped_total_reports_actual_drops() {
        use crate::{Span, SPAN_BUFFER_CAP};
        use tpc_common::{SimTime, TxnId};
        let obs = Obs::new();
        obs.set_tracing(true);
        for i in 0..SPAN_BUFFER_CAP + 3 {
            obs.record_span(Span {
                txn: TxnId::new(NodeId(0), 1),
                node: NodeId(0),
                phase: Phase::Ack,
                start: SimTime(i as u64),
                end: SimTime(i as u64 + 1),
                seat: 1,
                parent: None,
            });
        }
        let text = render_prometheus(&[NodeExport {
            node: NodeId(0),
            obs: obs.snapshot(),
            counters: vec![],
            gauges: vec![],
            labeled: vec![],
        }]);
        assert!(text.contains("tpc_spans_dropped_total{node=\"0\"} 3"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        // A minimal parse of the exposition format: each non-empty line is
        // either a # comment or `name{labels} value` with a numeric value.
        let text = render_prometheus(&export());
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().expect("numeric value");
        }
    }
}
