//! Phase taxonomy and per-transaction spans.

use tpc_common::{NodeId, SimTime, TxnId};

/// The protocol phases a transaction seat moves through, plus the two
/// durability costs the paper charges against commit latency.
///
/// For a coordinator the phases line up with the paper's timeline:
/// `Work` (application requests until commit is requested), `Prepare`
/// (phase 1: prepare flows out, votes back, decision forced), `Decision`
/// (phase 2: decision flows out until the outcome is delivered to the
/// application), `Ack` (decision delivery until the seat is forgotten —
/// the ack collection window). Subordinates report the same phases from
/// their own seat's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Application work: first touch of the transaction until commit (or
    /// abort) is requested at this seat.
    Work = 0,
    /// Voting phase: commit requested until the decision log record.
    Prepare = 1,
    /// Decision propagation: decision logged until the outcome reaches
    /// the local application.
    Decision = 2,
    /// Outcome delivered until the seat is forgotten (acks collected).
    Ack = 3,
    /// One forced log write (`sync_data` or the sim's modelled force).
    Fsync = 4,
    /// Group-commit batch lifetime: first buffered force to flush.
    GroupFlush = 5,
}

impl Phase {
    /// All phases, histogram-array order.
    pub const ALL: [Phase; 6] = [
        Phase::Work,
        Phase::Prepare,
        Phase::Decision,
        Phase::Ack,
        Phase::Fsync,
        Phase::GroupFlush,
    ];

    /// Stable lowercase name used in metric labels and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Work => "work",
            Phase::Prepare => "prepare",
            Phase::Decision => "decision",
            Phase::Ack => "ack",
            Phase::Fsync => "fsync",
            Phase::GroupFlush => "group_flush",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed phase interval at one node, attributed to a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Transaction this interval belongs to.
    pub txn: TxnId,
    /// Node that observed it.
    pub node: NodeId,
    /// Which phase.
    pub phase: Phase,
    /// Start of the interval (harness clock: virtual µs in the sim,
    /// µs since cluster start in the live runtime).
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
    /// Span-tree seat id: all spans one node emits for one transaction
    /// share it. Globally unique (node id is baked into the high bits),
    /// `0` when the emitter predates seat tracking.
    pub seat: u64,
    /// Seat id of the upstream sender whose frame enrolled this node in
    /// the transaction (from the wire [`tpc_common::TraceCtx`]); `None`
    /// at the tree root or when the frame carried no context.
    pub parent: Option<u64>,
}

impl Span {
    /// Interval length in microseconds.
    pub fn micros(&self) -> u64 {
        self.end.since(self.start).as_micros()
    }
}
