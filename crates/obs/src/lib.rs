//! Observability layer shared by the simulator and the live runtime.
//!
//! The paper's whole argument is an accounting one — commit cost is message
//! flows plus forced log writes — and this crate is the measurement
//! instrument for it: lock-free counters, log2-bucketed latency histograms
//! (p50/p90/p99/max), and per-transaction phase spans (work → prepare →
//! decision → ack, plus fsync and group-commit flush timing).
//!
//! Both harnesses feed the same [`Obs`] recorder through the driver layer,
//! so a phase breakdown from the discrete-event simulator and one from a
//! real TCP cluster are directly comparable. Everything is cheap enough to
//! leave on in benchmarks and free when absent (the driver holds an
//! `Option<Arc<Obs>>` and skips all of this on `None`).
//!
//! Exports:
//! - [`render_prometheus`] — Prometheus text exposition format 0.0.4
//! - [`render_chrome_trace`] — `chrome://tracing` / Perfetto JSON
//! - [`ObsSnapshot`] — plain-data snapshot for reports and benches

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod span;
pub mod trace_json;

pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::{render_prometheus, NodeExport};
pub use span::{Phase, Span};
pub use trace_json::render_chrome_trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use tpc_common::SimTime;

/// Upper bound on buffered spans per node; beyond it new spans are counted
/// but dropped so long benches cannot grow memory without bound.
pub const SPAN_BUFFER_CAP: usize = 4096;

/// Per-node observability recorder.
///
/// One `Obs` is shared (via `Arc`) between a node's driver and its host.
/// All hot-path operations are wait-free atomics; only span capture takes a
/// mutex, and only when tracing is enabled.
pub struct Obs {
    phases: [Histogram; Phase::ALL.len()],
    tracing: AtomicBool,
    spans: Mutex<Vec<Span>>,
    dropped_spans: Histogram,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// New recorder with tracing off (histograms always record).
    pub fn new() -> Self {
        Obs {
            phases: std::array::from_fn(|_| Histogram::new()),
            tracing: AtomicBool::new(false),
            spans: Mutex::new(Vec::new()),
            dropped_spans: Histogram::new(),
        }
    }

    /// Enable or disable span capture. Histograms are unaffected.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether span capture is currently on.
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Record a completed phase duration (microseconds) into its histogram.
    pub fn record(&self, phase: Phase, micros: u64) {
        self.phases[phase as usize].record(micros);
    }

    /// Record a phase duration and, if tracing, capture the span itself.
    pub fn record_span(&self, span: Span) {
        let micros = span.end.since(span.start).as_micros();
        self.record(span.phase, micros);
        if self.tracing() {
            let mut buf = self.spans.lock().expect("span buffer poisoned");
            if buf.len() < SPAN_BUFFER_CAP {
                buf.push(span);
            } else {
                self.dropped_spans.record(1);
            }
        }
    }

    /// Histogram for one phase (live handle, not a snapshot).
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase as usize]
    }

    /// Copy-out of every histogram and buffered span.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            phases: Phase::ALL
                .iter()
                .map(|p| (*p, self.phases[*p as usize].snapshot()))
                .collect(),
            spans: self.spans.lock().expect("span buffer poisoned").clone(),
            dropped_spans: self.dropped_spans.snapshot().count,
        }
    }
}

/// Plain-data copy of an [`Obs`] at a point in time.
///
/// This is what travels in `NodeSummary` / sim reports; it has no atomics
/// and can be merged across nodes for cluster-wide percentiles.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// Per-phase histogram snapshots, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, HistogramSnapshot)>,
    /// Captured spans (empty unless tracing was enabled).
    pub spans: Vec<Span>,
    /// Spans dropped because the buffer was full.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Snapshot of one phase, if it recorded anything.
    pub fn phase(&self, phase: Phase) -> Option<&HistogramSnapshot> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, h)| h)
            .filter(|h| h.count > 0)
    }

    /// Merge another node's snapshot into this one (histograms add
    /// bucket-wise; spans concatenate).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (phase, theirs) in &other.phases {
            match self.phases.iter_mut().find(|(p, _)| p == phase) {
                Some((_, ours)) => ours.merge(theirs),
                None => self.phases.push((*phase, theirs.clone())),
            }
        }
        self.spans.extend(other.spans.iter().cloned());
        self.dropped_spans += other.dropped_spans;
    }

    /// Merge many per-node snapshots into one cluster-wide view.
    pub fn merged<'a>(snaps: impl IntoIterator<Item = &'a ObsSnapshot>) -> ObsSnapshot {
        let mut out = ObsSnapshot::default();
        for s in snaps {
            out.merge(s);
        }
        out
    }

    /// All spans belonging to one transaction, ordered by start time.
    pub fn txn_spans(&self, txn: tpc_common::TxnId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .spans
            .iter()
            .filter(|s| s.txn == txn)
            .cloned()
            .collect();
        spans.sort_by_key(|s| (s.start, s.end));
        spans
    }
}

/// Convenience: duration between two [`SimTime`]s in microseconds,
/// saturating at zero if the clock went backwards.
pub fn micros_between(start: SimTime, end: SimTime) -> u64 {
    end.since(start).as_micros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, TxnId};

    fn span(phase: Phase, start: u64, end: u64) -> Span {
        Span {
            txn: TxnId::new(NodeId(0), 1),
            node: NodeId(0),
            phase,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn record_span_feeds_histogram() {
        let obs = Obs::new();
        obs.record_span(span(Phase::Prepare, 100, 350));
        let snap = obs.snapshot();
        let h = snap.phase(Phase::Prepare).expect("prepare recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 250);
        // Tracing was off: no span captured.
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn tracing_captures_spans_until_cap() {
        let obs = Obs::new();
        obs.set_tracing(true);
        for i in 0..SPAN_BUFFER_CAP + 10 {
            obs.record_span(span(Phase::Ack, i as u64, i as u64 + 1));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), SPAN_BUFFER_CAP);
        assert_eq!(snap.dropped_spans, 10);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Obs::new();
        let b = Obs::new();
        a.record(Phase::Fsync, 100);
        b.record(Phase::Fsync, 200);
        b.record(Phase::Decision, 5);
        let merged = ObsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
        assert_eq!(merged.phase(Phase::Fsync).unwrap().count, 2);
        assert_eq!(merged.phase(Phase::Decision).unwrap().count, 1);
        assert!(merged.phase(Phase::Work).is_none());
    }

    #[test]
    fn txn_spans_filters_and_sorts() {
        let obs = Obs::new();
        obs.set_tracing(true);
        let t1 = TxnId::new(NodeId(0), 1);
        let t2 = TxnId::new(NodeId(0), 2);
        obs.record_span(Span {
            txn: t1,
            node: NodeId(1),
            phase: Phase::Ack,
            start: SimTime(50),
            end: SimTime(60),
        });
        obs.record_span(Span {
            txn: t2,
            node: NodeId(0),
            phase: Phase::Work,
            start: SimTime(0),
            end: SimTime(10),
        });
        obs.record_span(Span {
            txn: t1,
            node: NodeId(0),
            phase: Phase::Work,
            start: SimTime(5),
            end: SimTime(20),
        });
        let spans = obs.snapshot().txn_spans(t1);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, SimTime(5));
        assert_eq!(spans[1].start, SimTime(50));
    }
}
