//! Observability layer shared by the simulator and the live runtime.
//!
//! The paper's whole argument is an accounting one — commit cost is message
//! flows plus forced log writes — and this crate is the measurement
//! instrument for it: lock-free counters, log2-bucketed latency histograms
//! (p50/p90/p99/max), and per-transaction phase spans (work → prepare →
//! decision → ack, plus fsync and group-commit flush timing).
//!
//! Both harnesses feed the same [`Obs`] recorder through the driver layer,
//! so a phase breakdown from the discrete-event simulator and one from a
//! real TCP cluster are directly comparable. Everything is cheap enough to
//! leave on in benchmarks and free when absent (the driver holds an
//! `Option<Arc<Obs>>` and skips all of this on `None`).
//!
//! Exports:
//! - [`render_prometheus`] — Prometheus text exposition format 0.0.4
//! - [`render_chrome_trace`] — `chrome://tracing` / Perfetto JSON
//! - [`ObsSnapshot`] — plain-data snapshot for reports and benches

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod histogram;
pub mod prometheus;
pub mod span;
pub mod timeline;
pub mod trace_json;

pub use flight::{
    render_flight_json, render_flight_text, FlightEvent, FlightKind, FlightRecorder, FLIGHT_CAP,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::{render_prometheus, NodeExport};
pub use span::{Phase, Span};
pub use timeline::{
    render_timeline_json, GaugeStat, Timeline, TimelineCounter, TimelineGauge, TimelineHist,
    TimelineSnapshot, WindowSnapshot,
};
pub use trace_json::render_chrome_trace;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tpc_common::{SimTime, TxnId};

/// Upper bound on buffered spans per node; beyond it new spans are counted
/// but dropped so long benches cannot grow memory without bound.
pub const SPAN_BUFFER_CAP: usize = 4096;

/// Per-node observability recorder.
///
/// One `Obs` is shared (via `Arc`) between a node's driver and its host.
/// All hot-path operations are wait-free atomics; only span capture takes a
/// mutex, and only when tracing is enabled.
pub struct Obs {
    phases: [Histogram; Phase::ALL.len()],
    tracing: AtomicBool,
    spans: Mutex<Vec<Span>>,
    dropped_spans: Histogram,
    /// Transactions currently prepared-but-undecided at this node, with
    /// the time each entered the window (paper §1: the blocking exposure
    /// 2PC is judged by).
    in_doubt_open: Mutex<HashMap<TxnId, SimTime>>,
    /// Closed in-doubt window durations, microseconds.
    in_doubt: Histogram,
    in_doubt_entered: AtomicU64,
    in_doubt_resolved: AtomicU64,
    /// Optional windowed view of the same telemetry (see [`Timeline`]).
    timeline: Option<Arc<Timeline>>,
    /// Optional crash flight recorder (see [`FlightRecorder`]).
    flight: Option<Arc<FlightRecorder>>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// New recorder with tracing off (histograms always record).
    pub fn new() -> Self {
        Obs {
            phases: std::array::from_fn(|_| Histogram::new()),
            tracing: AtomicBool::new(false),
            spans: Mutex::new(Vec::new()),
            dropped_spans: Histogram::new(),
            in_doubt_open: Mutex::new(HashMap::new()),
            in_doubt: Histogram::new(),
            in_doubt_entered: AtomicU64::new(0),
            in_doubt_resolved: AtomicU64::new(0),
            timeline: None,
            flight: None,
        }
    }

    /// Attach a windowed timeline: [`Obs::record_at`] / [`Obs::record_span`]
    /// and the in-doubt transitions will feed it alongside the cumulative
    /// histograms. Builder-style, called before the `Obs` is shared.
    pub fn with_timeline(mut self, timeline: Arc<Timeline>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Attach a flight recorder: in-doubt transitions auto-record, and
    /// hosts reach it via [`Obs::flight`] for decision/force/health events.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The attached timeline, if any.
    pub fn timeline(&self) -> Option<&Arc<Timeline>> {
        self.timeline.as_ref()
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Enable or disable span capture. Histograms are unaffected.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether span capture is currently on.
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Record a completed phase duration (microseconds) into its histogram.
    ///
    /// Cumulative only — prefer [`Obs::record_at`] when a clock reading is
    /// available so the timeline window sees the sample too.
    pub fn record(&self, phase: Phase, micros: u64) {
        self.phases[phase as usize].record(micros);
    }

    /// Record a phase duration into both the cumulative histogram and the
    /// timeline window containing `now` (if a timeline is attached).
    pub fn record_at(&self, phase: Phase, micros: u64, now: SimTime) {
        self.record(phase, micros);
        if let Some(t) = &self.timeline {
            t.record_phase(phase, micros, now);
        }
    }

    /// Record a phase duration and, if tracing, capture the span itself.
    /// The span's end time places it on the timeline.
    pub fn record_span(&self, span: Span) {
        let micros = span.end.since(span.start).as_micros();
        self.record(span.phase, micros);
        if let Some(t) = &self.timeline {
            t.record_phase(span.phase, micros, span.end);
        }
        if self.tracing() {
            let mut buf = self.spans.lock().expect("span buffer poisoned");
            if buf.len() < SPAN_BUFFER_CAP {
                buf.push(span);
            } else {
                self.dropped_spans.record(1);
            }
        }
    }

    /// Histogram for one phase (live handle, not a snapshot).
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase as usize]
    }

    /// The transaction entered the in-doubt window (its Prepared record is
    /// durable, no outcome yet). Idempotent: re-entering an already-open
    /// window keeps the original entry time, so recovery replaying a
    /// Prepared record cannot shrink a window that survived a crash.
    pub fn in_doubt_enter(&self, txn: TxnId, at: SimTime) {
        let entered = {
            let mut open = self.in_doubt_open.lock().expect("in-doubt map poisoned");
            if let std::collections::hash_map::Entry::Vacant(v) = open.entry(txn) {
                v.insert(at);
                self.in_doubt_entered.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                false
            }
        };
        if entered {
            if let Some(t) = &self.timeline {
                t.inc(TimelineCounter::InDoubtEntered, 1, at);
            }
            if let Some(f) = &self.flight {
                f.record(
                    FlightKind::InDoubtEnter,
                    at,
                    Some(txn),
                    "prepared, undecided",
                );
            }
        }
    }

    /// The transaction's outcome became known locally: close the window
    /// and record its duration. A no-op if the window was never opened
    /// (coordinators decide without ever being in doubt).
    pub fn in_doubt_resolve(&self, txn: TxnId, at: SimTime) {
        let entered = {
            let mut open = self.in_doubt_open.lock().expect("in-doubt map poisoned");
            open.remove(&txn)
        };
        if let Some(start) = entered {
            self.in_doubt_resolved.fetch_add(1, Ordering::Relaxed);
            let window = micros_between(start, at);
            self.in_doubt.record(window);
            if let Some(t) = &self.timeline {
                t.inc(TimelineCounter::InDoubtResolved, 1, at);
            }
            if let Some(f) = &self.flight {
                f.record(
                    FlightKind::InDoubtResolve,
                    at,
                    Some(txn),
                    format!("window {window}us"),
                );
            }
        }
    }

    /// Number of transactions currently sitting in doubt.
    pub fn in_doubt_current(&self) -> u64 {
        self.in_doubt_open
            .lock()
            .expect("in-doubt map poisoned")
            .len() as u64
    }

    /// Copy-out of every histogram and buffered span. Open in-doubt ages
    /// are reported as zero; use [`Obs::snapshot_at`] when a current clock
    /// reading is available.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.snapshot_at(SimTime::ZERO)
    }

    /// Copy-out including in-doubt gauges evaluated at `now` (the harness
    /// clock: virtual in the sim, µs since epoch live). The oldest-age
    /// gauge saturates to zero if `now` precedes an entry time.
    pub fn snapshot_at(&self, now: SimTime) -> ObsSnapshot {
        let (current, oldest_age) = {
            let open = self.in_doubt_open.lock().expect("in-doubt map poisoned");
            let oldest = open
                .values()
                .min()
                .map(|entered| micros_between(*entered, now))
                .unwrap_or(0);
            (open.len() as u64, oldest)
        };
        ObsSnapshot {
            phases: Phase::ALL
                .iter()
                .map(|p| (*p, self.phases[*p as usize].snapshot()))
                .collect(),
            spans: self.spans.lock().expect("span buffer poisoned").clone(),
            dropped_spans: self.dropped_spans.snapshot().count,
            in_doubt: self.in_doubt.snapshot(),
            in_doubt_current: current,
            in_doubt_oldest_age_us: oldest_age,
            in_doubt_entered: self.in_doubt_entered.load(Ordering::Relaxed),
            in_doubt_resolved: self.in_doubt_resolved.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of an [`Obs`] at a point in time.
///
/// This is what travels in `NodeSummary` / sim reports; it has no atomics
/// and can be merged across nodes for cluster-wide percentiles.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// Per-phase histogram snapshots, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, HistogramSnapshot)>,
    /// Captured spans (empty unless tracing was enabled).
    pub spans: Vec<Span>,
    /// Spans dropped because the buffer was full.
    pub dropped_spans: u64,
    /// Closed in-doubt window durations (µs): time spent
    /// prepared-but-undecided per transaction at this node.
    pub in_doubt: HistogramSnapshot,
    /// Transactions in doubt at snapshot time (a gauge; sums on merge).
    pub in_doubt_current: u64,
    /// Age of the oldest open in-doubt window at snapshot time, µs
    /// (zero when none are open or the snapshot had no clock reading).
    pub in_doubt_oldest_age_us: u64,
    /// Total in-doubt windows ever opened.
    pub in_doubt_entered: u64,
    /// Total in-doubt windows resolved (closed by a real outcome).
    pub in_doubt_resolved: u64,
}

impl ObsSnapshot {
    /// Snapshot of one phase, if it recorded anything.
    pub fn phase(&self, phase: Phase) -> Option<&HistogramSnapshot> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, h)| h)
            .filter(|h| h.count > 0)
    }

    /// Merge another node's snapshot into this one (histograms add
    /// bucket-wise; spans concatenate).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (phase, theirs) in &other.phases {
            match self.phases.iter_mut().find(|(p, _)| p == phase) {
                Some((_, ours)) => ours.merge(theirs),
                None => self.phases.push((*phase, theirs.clone())),
            }
        }
        self.spans.extend(other.spans.iter().cloned());
        self.dropped_spans += other.dropped_spans;
        self.in_doubt.merge(&other.in_doubt);
        self.in_doubt_current += other.in_doubt_current;
        self.in_doubt_oldest_age_us = self
            .in_doubt_oldest_age_us
            .max(other.in_doubt_oldest_age_us);
        self.in_doubt_entered += other.in_doubt_entered;
        self.in_doubt_resolved += other.in_doubt_resolved;
    }

    /// Merge many per-node snapshots into one cluster-wide view.
    pub fn merged<'a>(snaps: impl IntoIterator<Item = &'a ObsSnapshot>) -> ObsSnapshot {
        let mut out = ObsSnapshot::default();
        for s in snaps {
            out.merge(s);
        }
        out
    }

    /// All spans belonging to one transaction, ordered by start time.
    pub fn txn_spans(&self, txn: tpc_common::TxnId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .spans
            .iter()
            .filter(|s| s.txn == txn)
            .cloned()
            .collect();
        spans.sort_by_key(|s| (s.start, s.end));
        spans
    }
}

/// Convenience: duration between two [`SimTime`]s in microseconds,
/// saturating at zero if the clock went backwards.
pub fn micros_between(start: SimTime, end: SimTime) -> u64 {
    end.since(start).as_micros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, TxnId};

    fn span(phase: Phase, start: u64, end: u64) -> Span {
        Span {
            txn: TxnId::new(NodeId(0), 1),
            node: NodeId(0),
            phase,
            start: SimTime(start),
            end: SimTime(end),
            seat: 1,
            parent: None,
        }
    }

    #[test]
    fn record_span_feeds_histogram() {
        let obs = Obs::new();
        obs.record_span(span(Phase::Prepare, 100, 350));
        let snap = obs.snapshot();
        let h = snap.phase(Phase::Prepare).expect("prepare recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 250);
        // Tracing was off: no span captured.
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn tracing_captures_spans_until_cap() {
        let obs = Obs::new();
        obs.set_tracing(true);
        for i in 0..SPAN_BUFFER_CAP + 10 {
            obs.record_span(span(Phase::Ack, i as u64, i as u64 + 1));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), SPAN_BUFFER_CAP);
        assert_eq!(snap.dropped_spans, 10);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Obs::new();
        let b = Obs::new();
        a.record(Phase::Fsync, 100);
        b.record(Phase::Fsync, 200);
        b.record(Phase::Decision, 5);
        let merged = ObsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
        assert_eq!(merged.phase(Phase::Fsync).unwrap().count, 2);
        assert_eq!(merged.phase(Phase::Decision).unwrap().count, 1);
        assert!(merged.phase(Phase::Work).is_none());
    }

    #[test]
    fn txn_spans_filters_and_sorts() {
        let obs = Obs::new();
        obs.set_tracing(true);
        let t1 = TxnId::new(NodeId(0), 1);
        let t2 = TxnId::new(NodeId(0), 2);
        obs.record_span(Span {
            txn: t1,
            node: NodeId(1),
            phase: Phase::Ack,
            start: SimTime(50),
            end: SimTime(60),
            seat: 2,
            parent: Some(1),
        });
        obs.record_span(Span {
            txn: t2,
            node: NodeId(0),
            phase: Phase::Work,
            start: SimTime(0),
            end: SimTime(10),
            seat: 3,
            parent: None,
        });
        obs.record_span(Span {
            txn: t1,
            node: NodeId(0),
            phase: Phase::Work,
            start: SimTime(5),
            end: SimTime(20),
            seat: 1,
            parent: None,
        });
        let spans = obs.snapshot().txn_spans(t1);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, SimTime(5));
        assert_eq!(spans[1].start, SimTime(50));
    }

    #[test]
    fn in_doubt_window_opens_and_closes() {
        let obs = Obs::new();
        let t = TxnId::new(NodeId(1), 1);
        obs.in_doubt_enter(t, SimTime(100));
        // Re-entry (e.g. recovery replay) keeps the original entry time.
        obs.in_doubt_enter(t, SimTime(500));
        assert_eq!(obs.in_doubt_current(), 1);

        let open = obs.snapshot_at(SimTime(1_100));
        assert_eq!(open.in_doubt_current, 1);
        assert_eq!(open.in_doubt_oldest_age_us, 1_000);
        assert_eq!(open.in_doubt_entered, 1);
        assert_eq!(open.in_doubt_resolved, 0);

        obs.in_doubt_resolve(t, SimTime(2_100));
        let closed = obs.snapshot_at(SimTime(3_000));
        assert_eq!(closed.in_doubt_current, 0);
        assert_eq!(closed.in_doubt_oldest_age_us, 0);
        assert_eq!(closed.in_doubt_resolved, 1);
        assert_eq!(closed.in_doubt.count, 1);
        assert_eq!(closed.in_doubt.sum, 2_000);
    }

    #[test]
    fn in_doubt_resolve_without_entry_is_a_noop() {
        let obs = Obs::new();
        obs.in_doubt_resolve(TxnId::new(NodeId(0), 9), SimTime(50));
        let snap = obs.snapshot();
        assert_eq!(snap.in_doubt.count, 0);
        assert_eq!(snap.in_doubt_resolved, 0);
    }

    #[test]
    fn merge_sums_in_doubt_counters_and_maxes_oldest_age() {
        let a = Obs::new();
        let b = Obs::new();
        a.in_doubt_enter(TxnId::new(NodeId(1), 1), SimTime(0));
        a.in_doubt_resolve(TxnId::new(NodeId(1), 1), SimTime(300));
        a.in_doubt_enter(TxnId::new(NodeId(1), 2), SimTime(900));
        b.in_doubt_enter(TxnId::new(NodeId(2), 1), SimTime(400));
        let merged = ObsSnapshot::merged([
            &a.snapshot_at(SimTime(1_000)),
            &b.snapshot_at(SimTime(1_000)),
        ]);
        assert_eq!(merged.in_doubt_current, 2);
        assert_eq!(merged.in_doubt_entered, 3);
        assert_eq!(merged.in_doubt_resolved, 1);
        assert_eq!(merged.in_doubt.count, 1);
        assert_eq!(merged.in_doubt.sum, 300);
        // a's oldest open window is 100µs old, b's is 600µs.
        assert_eq!(merged.in_doubt_oldest_age_us, 600);
    }
}
