//! Chrome-trace (`trace_event`) JSON exporter.
//!
//! Produces the JSON array form understood by `chrome://tracing` and
//! Perfetto: one complete event (`"ph":"X"`) per span, with the node as
//! the process and the phase as the event name, plus metadata events
//! naming each process `node-N`. Loading the file shows the commit as a
//! span tree: the root's work/prepare/decision/ack intervals on one row,
//! each subordinate's on its own row, aligned on the shared clock.

use std::fmt::Write as _;

use crate::Span;

/// Render spans as a chrome-trace JSON array (hand-rendered; no JSON
/// dependency). Timestamps and durations are microseconds, as the format
/// expects.
pub fn render_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("[\n");
    let mut nodes: Vec<u32> = spans.iter().map(|s| s.node.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    for node in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node-{node}\"}}}}"
            ),
        );
    }
    for s in spans {
        let txn = format!("{}.{}", s.txn.origin.0, s.txn.seq);
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{}\",\"cat\":\"2pc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"txn\":\"{txn}\"}}}}",
                s.phase.name(),
                s.start.as_micros(),
                s.micros().max(1),
                s.node.0,
            ),
        );
    }
    out.push_str("\n]\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "  {event}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;
    use tpc_common::{NodeId, SimTime, TxnId};

    fn span(node: u32, phase: Phase, start: u64, end: u64) -> Span {
        Span {
            txn: TxnId::new(NodeId(0), 1),
            node: NodeId(node),
            phase,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn renders_complete_events_per_span() {
        let spans = vec![
            span(0, Phase::Work, 0, 100),
            span(0, Phase::Prepare, 100, 400),
            span(1, Phase::Prepare, 120, 350),
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"name\":\"prepare\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":300"));
        assert!(json.contains("\"name\":\"node-1\""));
        assert!(json.contains("\"txn\":\"0.1\""));
        // Balanced brackets / object count sanity: 3 spans + 2 metadata.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn zero_length_spans_get_min_duration() {
        let json = render_chrome_trace(&[span(0, Phase::Fsync, 50, 50)]);
        assert!(json.contains("\"dur\":1"));
    }

    #[test]
    fn empty_input_is_an_empty_array() {
        let json = render_chrome_trace(&[]);
        assert_eq!(json.trim(), "[\n\n]".trim());
    }
}
