//! Chrome-trace (`trace_event`) JSON exporter.
//!
//! Produces the JSON array form understood by `chrome://tracing` and
//! Perfetto: one complete event (`"ph":"X"`) per span, with the node as
//! the process and the phase as the event name, plus metadata events
//! naming each process `node-N`. Loading the file shows the commit as a
//! span tree: the root's work/prepare/decision/ack intervals on one row,
//! each subordinate's on its own row, aligned on the shared clock.
//!
//! When spans carry seat/parent links (propagated cross-node via
//! [`tpc_common::TraceCtx`] on the wire), the exporter also emits flow
//! events (`"ph":"s"` → `"ph":"f"`) drawing a causal arrow from the
//! enrolling sender's lane to each subordinate's lane, so a TCP-cluster
//! trace renders as one stitched tree instead of per-node fragments.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Span;

/// Render spans as a chrome-trace JSON array (hand-rendered; no JSON
/// dependency). Timestamps and durations are microseconds, as the format
/// expects.
pub fn render_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("[\n");
    let mut nodes: Vec<u32> = spans.iter().map(|s| s.node.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    for node in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node-{node}\"}}}}"
            ),
        );
    }
    for s in spans {
        let txn = format!("{}.{}", s.txn.origin.0, s.txn.seq);
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{}\",\"cat\":\"2pc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"txn\":\"{txn}\",\"seat\":{},\
                 \"parent\":{parent}}}}}",
                s.phase.name(),
                s.start.as_micros(),
                s.micros().max(1),
                s.node.0,
                s.seat,
            ),
        );
    }

    // Causal arrows: one flow-event pair per parent-seat → child-seat edge.
    // Per child seat we need its node and earliest span start; per parent
    // seat, the node that emitted it.
    let mut seat_node: BTreeMap<u64, u32> = BTreeMap::new();
    let mut edges: BTreeMap<u64, (u32, u64, u64)> = BTreeMap::new(); // seat → (node, first_start, parent)
    for s in spans {
        if s.seat == 0 {
            continue;
        }
        seat_node.entry(s.seat).or_insert(s.node.0);
        if let Some(p) = s.parent {
            let e = edges
                .entry(s.seat)
                .or_insert((s.node.0, s.start.as_micros(), p));
            e.1 = e.1.min(s.start.as_micros());
        }
    }
    for (seat, (child_node, ts, parent)) in &edges {
        // An arrow needs both lanes; skip if the parent's spans are absent
        // (e.g. its node was not captured in this snapshot).
        let Some(parent_node) = seat_node.get(parent) else {
            continue;
        };
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"enroll\",\"cat\":\"2pc\",\"ph\":\"s\",\"id\":{seat},\
                 \"pid\":{parent_node},\"tid\":0,\"ts\":{ts}}}"
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"enroll\",\"cat\":\"2pc\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{seat},\
                 \"pid\":{child_node},\"tid\":0,\"ts\":{ts}}}"
            ),
        );
    }
    out.push_str("\n]\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "  {event}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;
    use tpc_common::{NodeId, SimTime, TxnId};

    fn span(node: u32, phase: Phase, start: u64, end: u64) -> Span {
        Span {
            txn: TxnId::new(NodeId(0), 1),
            node: NodeId(node),
            phase,
            start: SimTime(start),
            end: SimTime(end),
            seat: u64::from(node) + 1,
            parent: if node == 0 { None } else { Some(1) },
        }
    }

    #[test]
    fn renders_complete_events_per_span() {
        let spans = vec![
            span(0, Phase::Work, 0, 100),
            span(0, Phase::Prepare, 100, 400),
            span(1, Phase::Prepare, 120, 350),
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"name\":\"prepare\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":300"));
        assert!(json.contains("\"name\":\"node-1\""));
        assert!(json.contains("\"txn\":\"0.1\""));
        assert!(json.contains("\"seat\":1"));
        assert!(json.contains("\"parent\":null"));
        // Balanced brackets / object count sanity: 3 spans + 2 metadata
        // + one flow pair for the node-1 seat.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn emits_one_flow_pair_per_parent_child_edge() {
        let spans = vec![
            span(0, Phase::Prepare, 0, 400),
            span(1, Phase::Prepare, 120, 350),
            span(1, Phase::Decision, 350, 380), // same seat: still one edge
            span(2, Phase::Prepare, 130, 340),
        ];
        let json = render_chrome_trace(&spans);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 2);
        // The arrow starts on the parent's lane (pid 0) and lands on the
        // child's, anchored at the child's earliest span start.
        assert!(json.contains("\"ph\":\"s\",\"id\":2,\"pid\":0,\"tid\":0,\"ts\":120"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":2,\"pid\":1,\"tid\":0,\"ts\":120"));
    }

    #[test]
    fn orphan_parent_links_are_skipped() {
        // Child references seat 99 but no span with that seat exists.
        let mut s = span(1, Phase::Prepare, 10, 20);
        s.parent = Some(99);
        let json = render_chrome_trace(&[s]);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 0);
    }

    #[test]
    fn zero_length_spans_get_min_duration() {
        let json = render_chrome_trace(&[span(0, Phase::Fsync, 50, 50)]);
        assert!(json.contains("\"dur\":1"));
    }

    #[test]
    fn empty_input_is_an_empty_array() {
        let json = render_chrome_trace(&[]);
        assert_eq!(json.trim(), "[\n\n]".trim());
    }
}
