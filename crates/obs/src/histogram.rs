//! Lock-free log2-bucketed latency histogram.
//!
//! Values (microseconds) land in bucket `⌈log2(v+1)⌉`: bucket 0 holds 0,
//! bucket 1 holds 1, bucket 2 holds 2–3, bucket k holds `2^(k-1)..2^k - 1`.
//! 64 buckets cover the whole `u64` range. Quantiles are read off as the
//! upper bound of the bucket containing the target rank, so a reported
//! p99 is an upper bound within a factor of 2 of the true value — the
//! right precision for a protocol whose costs differ by integer flow and
//! fsync counts, at the price of three relaxed atomic adds per record.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// Index of the bucket a value lands in. The top bucket (63) is a
/// catch-all for values `>= 2^62`.
fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound (inclusive) of values in bucket `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Wait-free concurrent histogram with power-of-two buckets.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (relaxed atomics; safe from any thread).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zero every bucket and statistic (used when the timeline ring
    /// recycles a window slot). Not atomic as a whole: callers must
    /// ensure no concurrent recorder targets this histogram, which the
    /// timeline's epoch-claim protocol does.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Consistent-enough copy for reporting (individual loads are relaxed;
    /// concurrent writers may skew totals by in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram copy; mergeable across nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket k holds values in `2^(k-1)..2^k`.
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the nearest-rank sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bound of its bucket).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (exact, from sum/count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Add another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Cumulative counts paired with bucket upper bounds, for Prometheus
    /// `le`-labelled buckets. Empty trailing buckets are elided after the
    /// last non-empty one.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut acc = 0;
        (0..=last)
            .map(|idx| {
                acc += self.buckets[idx];
                (bucket_upper(idx), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_of(1u64 << 62), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
    }

    #[test]
    fn quantiles_bound_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // True p50 is 500; bucketed answer is the 512-bucket bound 511.
        let p50 = s.p50();
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        // True p99 is 990; the bucket bound is 1023, clamped to max 1000.
        assert_eq!(s.p99(), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cumulative(), vec![(0, 0)]);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 17, 250, 4096, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 9, 511, 100_000] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let expect = all.snapshot();
        assert_eq!(m.buckets, expect.buckets);
        assert_eq!(m.count, expect.count);
        assert_eq!(m.sum, expect.sum);
        assert_eq!(m.max, expect.max);
        assert_eq!(m.p99(), expect.p99());
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 300, 70_000] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative();
        let mut prev = 0;
        for &(_, c) in &cum {
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(cum.last().unwrap().1, 6);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.max, 3999);
    }
}
