//! Windowed time-series recorder: the *shape* of a run, not its endpoint.
//!
//! Everything else in `tpc-obs` is cumulative-since-start, which is the
//! right view for the paper's accounting (total forced writes, total
//! message flows) but hides *when* the costs land: saturation onset,
//! group-commit batch dynamics, in-doubt storms. [`Timeline`] fixes that
//! with a fixed ring of per-interval buckets — counter deltas, gauge
//! samples, and full per-window latency histograms — driven entirely by
//! an externally supplied clock ([`SimTime`]): the wall clock in the live
//! runtime, the virtual clock in the simulator. Because no call reads a
//! real clock, two identical sim runs produce byte-identical timelines.
//!
//! Concurrency model: every hot-path operation is atomics-only. A bucket
//! is lazily recycled when the clock first enters a window whose ring slot
//! still holds an older window: the first recorder to notice CAS-claims
//! the slot (epoch → `RESETTING`), zeroes it, and publishes the new window
//! index; racing recorders spin for the handful of stores that takes.
//! Samples for windows that have already been evicted from the ring are
//! counted in `late_drops`, never recorded.
//!
//! The per-window histograms reuse the cumulative [`Histogram`] type
//! bucket-for-bucket, so summing every window of a timeline reproduces the
//! cumulative [`crate::ObsSnapshot`] exactly (property-tested).

use std::sync::atomic::{AtomicU64, Ordering};

use tpc_common::SimTime;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::span::Phase;

/// Bucket slot is empty (never claimed by any window).
const EMPTY: u64 = u64::MAX;
/// Bucket slot is mid-recycle; recorders spin until the claimant publishes.
const RESETTING: u64 = u64::MAX - 1;

/// Monotonically increasing event counters, recorded as per-window deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TimelineCounter {
    /// Transactions that committed.
    Committed = 0,
    /// Transactions that aborted.
    Aborted = 1,
    /// Arrivals rejected (admission control or degraded-mode refusal).
    Rejected = 2,
    /// Forced log writes requested.
    Forces = 3,
    /// Group-commit batches flushed.
    GroupFlushes = 4,
    /// In-doubt windows opened.
    InDoubtEntered = 5,
    /// In-doubt windows closed by a real outcome.
    InDoubtResolved = 6,
    /// Storage I/O errors observed.
    IoErrors = 7,
}

impl TimelineCounter {
    /// All counters, bucket-array order.
    pub const ALL: [TimelineCounter; 8] = [
        TimelineCounter::Committed,
        TimelineCounter::Aborted,
        TimelineCounter::Rejected,
        TimelineCounter::Forces,
        TimelineCounter::GroupFlushes,
        TimelineCounter::InDoubtEntered,
        TimelineCounter::InDoubtResolved,
        TimelineCounter::IoErrors,
    ];

    /// Stable lowercase name used in JSON keys and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            TimelineCounter::Committed => "committed",
            TimelineCounter::Aborted => "aborted",
            TimelineCounter::Rejected => "rejected",
            TimelineCounter::Forces => "forces",
            TimelineCounter::GroupFlushes => "group_flushes",
            TimelineCounter::InDoubtEntered => "in_doubt_entered",
            TimelineCounter::InDoubtResolved => "in_doubt_resolved",
            TimelineCounter::IoErrors => "io_errors",
        }
    }
}

/// Instantaneous queue depths and occupancies, sampled into per-window
/// last/max/sum/count statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TimelineGauge {
    /// Lane inbox (driver mailbox) depth.
    LaneInbox = 0,
    /// Group-commit batch occupancy (buffered forces).
    GroupBatch = 1,
    /// WAL force queue: appended records not yet made durable.
    ForceQueue = 2,
    /// TCP sender backlog: frames enqueued but not yet written.
    SendBacklog = 3,
    /// Open-loop admission queue depth.
    AdmitQueue = 4,
    /// Transactions in flight at the workload driver.
    InFlight = 5,
    /// Transactions parked in lock wait queues.
    LockWaiters = 6,
}

impl TimelineGauge {
    /// All gauges, bucket-array order.
    pub const ALL: [TimelineGauge; 7] = [
        TimelineGauge::LaneInbox,
        TimelineGauge::GroupBatch,
        TimelineGauge::ForceQueue,
        TimelineGauge::SendBacklog,
        TimelineGauge::AdmitQueue,
        TimelineGauge::InFlight,
        TimelineGauge::LockWaiters,
    ];

    /// Stable lowercase name used in JSON keys and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            TimelineGauge::LaneInbox => "lane_inbox",
            TimelineGauge::GroupBatch => "group_batch",
            TimelineGauge::ForceQueue => "force_queue",
            TimelineGauge::SendBacklog => "send_backlog",
            TimelineGauge::AdmitQueue => "admit_queue",
            TimelineGauge::InFlight => "in_flight",
            TimelineGauge::LockWaiters => "lock_waiters",
        }
    }
}

/// Per-window latency histograms: one per protocol [`Phase`] plus
/// end-to-end commit latency (arrival → outcome) from the workload driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TimelineHist {
    /// Same taxonomy as the cumulative phase histograms.
    Phase(Phase),
    /// End-to-end commit latency measured from arrival.
    Commit,
}

/// Number of histogram slots per bucket: the six phases plus commit.
const HISTS: usize = Phase::ALL.len() + 1;

impl TimelineHist {
    fn index(self) -> usize {
        match self {
            TimelineHist::Phase(p) => p as usize,
            TimelineHist::Commit => HISTS - 1,
        }
    }

    /// All histogram slots, bucket-array order.
    pub const ALL: [TimelineHist; HISTS] = [
        TimelineHist::Phase(Phase::Work),
        TimelineHist::Phase(Phase::Prepare),
        TimelineHist::Phase(Phase::Decision),
        TimelineHist::Phase(Phase::Ack),
        TimelineHist::Phase(Phase::Fsync),
        TimelineHist::Phase(Phase::GroupFlush),
        TimelineHist::Commit,
    ];

    /// Stable lowercase name used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            TimelineHist::Phase(p) => p.name(),
            TimelineHist::Commit => "commit",
        }
    }
}

const COUNTERS: usize = TimelineCounter::ALL.len();
const GAUGES: usize = TimelineGauge::ALL.len();

/// One sampled-statistics cell for a gauge within a window.
struct GaugeCell {
    last: AtomicU64,
    max: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl GaugeCell {
    fn new() -> Self {
        GaugeCell {
            last: AtomicU64::new(0),
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        self.last.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    fn sample(&self, value: u64) {
        self.last.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> GaugeStat {
        GaugeStat {
            last: self.last.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of one gauge's within-window statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeStat {
    /// Most recent sample.
    pub last: u64,
    /// Largest sample in the window.
    pub max: u64,
    /// Sum of samples (mean = sum / count).
    pub sum: u64,
    /// Number of samples taken in the window.
    pub count: u64,
}

/// One ring slot: the telemetry for a single time window.
struct Bucket {
    /// Window index this slot currently holds, or [`EMPTY`]/[`RESETTING`].
    epoch: AtomicU64,
    counters: [AtomicU64; COUNTERS],
    gauges: [GaugeCell; GAUGES],
    hists: [Histogram; HISTS],
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            epoch: AtomicU64::new(EMPTY),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| GaugeCell::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    fn clear(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.reset();
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

/// Lock-free windowed time-series recorder.
///
/// A fixed ring of `windows` buckets, each `window_us` microseconds wide.
/// The clock is always supplied by the caller, so the sim's virtual clock
/// drives deterministic windows and the live runtime passes µs since the
/// cluster epoch. Retention is `windows × window_us`; older samples are
/// dropped (counted in [`TimelineSnapshot::late_drops`]).
pub struct Timeline {
    window_us: u64,
    ring: Vec<Bucket>,
    late_drops: AtomicU64,
}

impl Timeline {
    /// Ring of `windows` buckets, each `window_us` wide. Both are clamped
    /// to at least 1.
    pub fn new(window_us: u64, windows: usize) -> Self {
        Timeline {
            window_us: window_us.max(1),
            ring: (0..windows.max(1)).map(|_| Bucket::new()).collect(),
            late_drops: AtomicU64::new(0),
        }
    }

    /// Width of one window in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Number of ring slots (maximum retained windows).
    pub fn windows(&self) -> usize {
        self.ring.len()
    }

    /// Resolve the bucket for `now`, recycling its ring slot if the clock
    /// has moved past whatever window the slot last held. Returns `None`
    /// (and counts a late drop) when `now` falls in a window that has
    /// already been evicted from the ring.
    fn bucket_at(&self, now: SimTime) -> Option<&Bucket> {
        let w = now.0 / self.window_us;
        let bucket = &self.ring[(w as usize) % self.ring.len()];
        loop {
            let e = bucket.epoch.load(Ordering::Acquire);
            if e == w {
                return Some(bucket);
            }
            if e == RESETTING {
                std::hint::spin_loop();
                continue;
            }
            if e != EMPTY && e > w {
                // The slot was already recycled for a newer window: this
                // sample's window is gone from the ring.
                self.late_drops.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            // Slot holds an older window (or nothing): claim and recycle.
            if bucket
                .epoch
                .compare_exchange(e, RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                bucket.clear();
                bucket.epoch.store(w, Ordering::Release);
                return Some(bucket);
            }
        }
    }

    /// Add `delta` to a counter in the window containing `now`.
    pub fn inc(&self, counter: TimelineCounter, delta: u64, now: SimTime) {
        if let Some(b) = self.bucket_at(now) {
            b.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sample a gauge value into the window containing `now`.
    pub fn gauge(&self, gauge: TimelineGauge, value: u64, now: SimTime) {
        if let Some(b) = self.bucket_at(now) {
            b.gauges[gauge as usize].sample(value);
        }
    }

    /// Record a latency value into a window histogram.
    pub fn record(&self, hist: TimelineHist, micros: u64, now: SimTime) {
        if let Some(b) = self.bucket_at(now) {
            b.hists[hist.index()].record(micros);
        }
    }

    /// Phase-latency shorthand used by [`crate::Obs::record_at`].
    pub fn record_phase(&self, phase: Phase, micros: u64, now: SimTime) {
        self.record(TimelineHist::Phase(phase), micros, now);
    }

    /// Copy-out of every live window, oldest first. `now` only brands the
    /// snapshot (`now_us`); it does not advance or recycle any bucket.
    pub fn snapshot(&self, now: SimTime) -> TimelineSnapshot {
        let mut windows: Vec<WindowSnapshot> = self
            .ring
            .iter()
            .filter_map(|b| {
                let e = b.epoch.load(Ordering::Acquire);
                if e == EMPTY || e == RESETTING {
                    return None;
                }
                Some(WindowSnapshot {
                    index: e,
                    start_us: e * self.window_us,
                    counters: std::array::from_fn(|i| b.counters[i].load(Ordering::Relaxed)),
                    gauges: std::array::from_fn(|i| b.gauges[i].snapshot()),
                    hists: std::array::from_fn(|i| b.hists[i].snapshot()),
                })
            })
            .collect();
        windows.sort_by_key(|w| w.index);
        TimelineSnapshot {
            window_us: self.window_us,
            now_us: now.0,
            late_drops: self.late_drops.load(Ordering::Relaxed),
            windows,
        }
    }
}

/// Plain-data copy of one window's telemetry.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Window index (`start_us / window_us`).
    pub index: u64,
    /// Window start on the harness clock, microseconds.
    pub start_us: u64,
    /// Counter deltas accumulated in this window, [`TimelineCounter::ALL`] order.
    pub counters: [u64; COUNTERS],
    /// Gauge statistics, [`TimelineGauge::ALL`] order.
    pub gauges: [GaugeStat; GAUGES],
    /// Latency histograms, [`TimelineHist::ALL`] order.
    pub hists: [HistogramSnapshot; HISTS],
}

impl WindowSnapshot {
    /// Counter delta for this window.
    pub fn counter(&self, c: TimelineCounter) -> u64 {
        self.counters[c as usize]
    }

    /// Gauge statistics for this window.
    pub fn gauge(&self, g: TimelineGauge) -> GaugeStat {
        self.gauges[g as usize]
    }

    /// Histogram for this window.
    pub fn hist(&self, h: TimelineHist) -> &HistogramSnapshot {
        &self.hists[h.index()]
    }
}

/// Plain-data copy of a [`Timeline`]: what travels in node summaries and
/// renders as the `/timeline` endpoint and the bench `timeline` section.
#[derive(Clone, Debug, Default)]
pub struct TimelineSnapshot {
    /// Window width, microseconds.
    pub window_us: u64,
    /// Harness clock reading when the snapshot was taken, microseconds.
    pub now_us: u64,
    /// Samples dropped because their window had left the ring.
    pub late_drops: u64,
    /// Live windows, oldest first.
    pub windows: Vec<WindowSnapshot>,
}

impl TimelineSnapshot {
    /// Sum of a counter across every retained window.
    pub fn counter_total(&self, c: TimelineCounter) -> u64 {
        self.windows.iter().map(|w| w.counter(c)).sum()
    }

    /// Bucket-wise merge of one histogram across every retained window.
    /// With a ring large enough that nothing was evicted, this equals the
    /// cumulative histogram exactly.
    pub fn hist_total(&self, h: TimelineHist) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for w in &self.windows {
            out.merge(w.hist(h));
        }
        out
    }

    /// Merge another node's timeline into this one, window-by-window
    /// (matched on window index; both sides must share `window_us`).
    pub fn merge(&mut self, other: &TimelineSnapshot) {
        self.late_drops += other.late_drops;
        self.now_us = self.now_us.max(other.now_us);
        if self.window_us == 0 {
            self.window_us = other.window_us;
        }
        for theirs in &other.windows {
            match self.windows.iter_mut().find(|w| w.index == theirs.index) {
                Some(ours) => {
                    for i in 0..COUNTERS {
                        ours.counters[i] += theirs.counters[i];
                    }
                    for i in 0..GAUGES {
                        let (a, b) = (&mut ours.gauges[i], &theirs.gauges[i]);
                        a.last = a.last.max(b.last);
                        a.max = a.max.max(b.max);
                        a.sum += b.sum;
                        a.count += b.count;
                    }
                    for i in 0..HISTS {
                        ours.hists[i].merge(&theirs.hists[i]);
                    }
                }
                None => self.windows.push(theirs.clone()),
            }
        }
        self.windows.sort_by_key(|w| w.index);
    }
}

/// Deterministic JSON rendering of a timeline snapshot: integer-only,
/// fixed key order, no whitespace variation — two byte-identical
/// snapshots render to byte-identical strings.
pub fn render_timeline_json(snap: &TimelineSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"window_us\":{},\"now_us\":{},\"late_drops\":{},\"windows\":[",
        snap.window_us, snap.now_us, snap.late_drops
    );
    for (wi, w) in snap.windows.iter().enumerate() {
        if wi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"index\":{},\"start_us\":{},\"counters\":{{",
            w.index, w.start_us
        );
        for (i, c) in TimelineCounter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name(), w.counter(*c));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in TimelineGauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = w.gauge(*g);
            let _ = write!(
                out,
                "\"{}\":{{\"last\":{},\"max\":{},\"sum\":{},\"count\":{}}}",
                g.name(),
                s.last,
                s.max,
                s.sum,
                s.count
            );
        }
        out.push_str("},\"latency\":{");
        for (i, h) in TimelineHist::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = w.hist(*h);
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.name(),
                s.count,
                s.sum,
                s.p50(),
                s.p99(),
                s.max
            );
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_clock() {
        let t = Timeline::new(1_000, 8);
        t.inc(TimelineCounter::Committed, 1, SimTime(0));
        t.inc(TimelineCounter::Committed, 1, SimTime(999));
        t.inc(TimelineCounter::Committed, 1, SimTime(1_000));
        t.inc(TimelineCounter::Committed, 2, SimTime(5_500));
        let snap = t.snapshot(SimTime(6_000));
        assert_eq!(snap.windows.len(), 3);
        assert_eq!(snap.windows[0].index, 0);
        assert_eq!(snap.windows[0].counter(TimelineCounter::Committed), 2);
        assert_eq!(snap.windows[1].index, 1);
        assert_eq!(snap.windows[1].counter(TimelineCounter::Committed), 1);
        assert_eq!(snap.windows[2].index, 5);
        assert_eq!(snap.windows[2].counter(TimelineCounter::Committed), 2);
        assert_eq!(snap.counter_total(TimelineCounter::Committed), 5);
        assert_eq!(snap.late_drops, 0);
    }

    #[test]
    fn ring_recycles_and_drops_late_samples() {
        let t = Timeline::new(100, 4);
        t.inc(TimelineCounter::Forces, 1, SimTime(0)); // window 0, slot 0
        t.inc(TimelineCounter::Forces, 7, SimTime(450)); // window 4 recycles slot 0
        let snap = t.snapshot(SimTime(500));
        assert_eq!(snap.windows.len(), 1);
        assert_eq!(snap.windows[0].index, 4);
        assert_eq!(snap.windows[0].counter(TimelineCounter::Forces), 7);
        // Window 0 left the ring: its samples are dropped, not misfiled.
        t.inc(TimelineCounter::Forces, 9, SimTime(50));
        let snap = t.snapshot(SimTime(500));
        assert_eq!(snap.counter_total(TimelineCounter::Forces), 7);
        assert_eq!(snap.late_drops, 1);
    }

    #[test]
    fn gauge_stats_track_last_max_mean() {
        let t = Timeline::new(1_000, 4);
        for (v, at) in [(3u64, 10u64), (9, 20), (1, 30)] {
            t.gauge(TimelineGauge::AdmitQueue, v, SimTime(at));
        }
        let snap = t.snapshot(SimTime(100));
        let g = snap.windows[0].gauge(TimelineGauge::AdmitQueue);
        assert_eq!(g.last, 1);
        assert_eq!(g.max, 9);
        assert_eq!(g.sum, 13);
        assert_eq!(g.count, 3);
    }

    #[test]
    fn window_hist_totals_match_one_big_histogram() {
        let t = Timeline::new(500, 16);
        let all = Histogram::new();
        for i in 0..200u64 {
            let v = (i * 37) % 4096;
            t.record_phase(Phase::Prepare, v, SimTime(i * 20));
            all.record(v);
        }
        let merged = t
            .snapshot(SimTime(4_000))
            .hist_total(TimelineHist::Phase(Phase::Prepare));
        let expect = all.snapshot();
        assert_eq!(merged.buckets, expect.buckets);
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.sum, expect.sum);
        assert_eq!(merged.max, expect.max);
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let t = Timeline::new(1_000, 4);
        t.inc(TimelineCounter::Committed, 3, SimTime(100));
        t.gauge(TimelineGauge::LaneInbox, 5, SimTime(200));
        t.record(TimelineHist::Commit, 250, SimTime(300));
        let a = render_timeline_json(&t.snapshot(SimTime(1_000)));
        let b = render_timeline_json(&t.snapshot(SimTime(1_000)));
        assert_eq!(a, b);
        assert!(a.contains("\"window_us\":1000"));
        assert!(a.contains("\"committed\":3"));
        assert!(a.contains("\"lane_inbox\":{\"last\":5"));
        assert!(a.contains("\"commit\":{\"count\":1,\"sum\":250"));
    }

    #[test]
    fn merge_aligns_on_window_index() {
        let a = Timeline::new(1_000, 8);
        let b = Timeline::new(1_000, 8);
        a.inc(TimelineCounter::Committed, 2, SimTime(500));
        b.inc(TimelineCounter::Committed, 3, SimTime(700));
        b.inc(TimelineCounter::Aborted, 1, SimTime(2_500));
        let mut m = a.snapshot(SimTime(3_000));
        m.merge(&b.snapshot(SimTime(3_000)));
        assert_eq!(m.windows.len(), 2);
        assert_eq!(m.windows[0].counter(TimelineCounter::Committed), 5);
        assert_eq!(m.windows[1].counter(TimelineCounter::Aborted), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_live_windows() {
        use std::sync::Arc;
        let t = Arc::new(Timeline::new(1_000, 64));
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        t.inc(TimelineCounter::Committed, 1, SimTime(i * 60 + k));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let snap = t.snapshot(SimTime(60_000));
        assert_eq!(snap.counter_total(TimelineCounter::Committed), 4_000);
        assert_eq!(snap.late_drops, 0);
    }
}
