//! Log record types for transaction managers and resource managers.
//!
//! The record vocabulary follows Figures 1–3 and 6–8 of the paper:
//!
//! * a **TM** writes `CommitPending` (PN, before Phase 1), `Collecting`
//!   (PC), `Prepared` (a subordinate TM, or a last-agent initiator),
//!   `Committed`, `Aborted`, heuristic records, and the non-forced `End`;
//! * an **LRM** writes `RmUpdate` (undo/redo for one key), `RmPrepared`,
//!   `RmCommitted`, `RmAborted`.
//!
//! Which of these are *forced* depends on the protocol variant and the
//! active optimizations — that policy lives in `tpc-core`; this module only
//! defines the records and their wire format.

use tpc_common::wire::{Decode, Decoder, Encode, Encoder};
use tpc_common::{Error, HeuristicOutcome, NodeId, Result, RmId, SimTime, TxnId};

/// One write-ahead-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// PN only: the coordinator (or cascaded coordinator) remembers, before
    /// any Prepare is sent, that these subordinates exist and may need
    /// recovery driving or heuristic-damage collection (§3, Figure 3).
    CommitPending {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Direct subordinates enrolled at the time of commit initiation.
        subordinates: Vec<NodeId>,
    },
    /// PC only: the coordinator's pre-Phase-1 record naming the
    /// subordinates, so that a coordinator crash between Prepare and the
    /// decision can abort them explicitly (no-information presumes commit).
    Collecting {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Direct subordinates enrolled at the time of commit initiation.
        subordinates: Vec<NodeId>,
    },
    /// A participant is prepared: it can go either way and must wait for
    /// the decision from `coordinator`. Also written by a last-agent
    /// initiator before delegating the decision (Figure 6).
    Prepared {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Whom to ask after a crash while in doubt.
        coordinator: NodeId,
        /// Direct subordinates, so a cascaded coordinator can re-propagate.
        subordinates: Vec<NodeId>,
        /// Harness clock when the participant prepared. Observability
        /// only: recovery re-opens the in-doubt window at this instant so
        /// a crash cannot shrink the measured blocking exposure.
        prepared_at: SimTime,
    },
    /// The commit decision (at the coordinator) or the learned commit
    /// outcome (at a subordinate).
    Committed {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Subordinates still owed the decision / acks at this node.
        subordinates: Vec<NodeId>,
    },
    /// The abort decision or learned abort outcome.
    Aborted {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Subordinates still owed the decision / acks at this node.
        subordinates: Vec<NodeId>,
    },
    /// An in-doubt participant decided unilaterally (§1, §3). Forced: the
    /// decision must survive so damage can be detected and reported.
    Heuristic {
        /// Transaction this record belongs to.
        txn: TxnId,
        /// Which way the participant jumped.
        decision: HeuristicOutcome,
    },
    /// Commit processing is complete at this node; the transaction may be
    /// forgotten. Never forced — losing it only causes redundant recovery
    /// work (§2, "Logging").
    End {
        /// Transaction this record belongs to.
        txn: TxnId,
    },
    /// An LRM's undo/redo record for one key of one transaction.
    RmUpdate {
        /// Resource manager that performed the update.
        rm: RmId,
        /// Transaction on whose behalf the update ran.
        txn: TxnId,
        /// Updated key.
        key: Vec<u8>,
        /// Value before the update (`None` = key absent), for undo.
        before: Option<Vec<u8>>,
        /// Value after the update (`None` = deletion), for redo.
        after: Option<Vec<u8>>,
    },
    /// An LRM's prepared record: its updates are stable, it can go either
    /// way.
    RmPrepared {
        /// Resource manager that prepared.
        rm: RmId,
        /// Transaction that prepared.
        txn: TxnId,
    },
    /// An LRM's commit record.
    RmCommitted {
        /// Resource manager that committed.
        rm: RmId,
        /// Transaction that committed.
        txn: TxnId,
    },
    /// An LRM's abort record.
    RmAborted {
        /// Resource manager that aborted.
        rm: RmId,
        /// Transaction that aborted.
        txn: TxnId,
    },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::CommitPending { txn, .. }
            | LogRecord::Collecting { txn, .. }
            | LogRecord::Prepared { txn, .. }
            | LogRecord::Committed { txn, .. }
            | LogRecord::Aborted { txn, .. }
            | LogRecord::Heuristic { txn, .. }
            | LogRecord::End { txn }
            | LogRecord::RmUpdate { txn, .. }
            | LogRecord::RmPrepared { txn, .. }
            | LogRecord::RmCommitted { txn, .. }
            | LogRecord::RmAborted { txn, .. } => *txn,
        }
    }

    /// True for records written by a resource manager (as opposed to the
    /// transaction manager). Used by shared-log accounting.
    pub fn is_rm_record(&self) -> bool {
        matches!(
            self,
            LogRecord::RmUpdate { .. }
                | LogRecord::RmPrepared { .. }
                | LogRecord::RmCommitted { .. }
                | LogRecord::RmAborted { .. }
        )
    }

    /// Short tag used in golden traces (`*log Prepared` lines of the
    /// paper's figures).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogRecord::CommitPending { .. } => "CommitPending",
            LogRecord::Collecting { .. } => "Collecting",
            LogRecord::Prepared { .. } => "Prepared",
            LogRecord::Committed { .. } => "Committed",
            LogRecord::Aborted { .. } => "Aborted",
            LogRecord::Heuristic { .. } => "Heuristic",
            LogRecord::End { .. } => "End",
            LogRecord::RmUpdate { .. } => "RmUpdate",
            LogRecord::RmPrepared { .. } => "RmPrepared",
            LogRecord::RmCommitted { .. } => "RmCommitted",
            LogRecord::RmAborted { .. } => "RmAborted",
        }
    }
}

const TAG_COMMIT_PENDING: u8 = 1;
const TAG_COLLECTING: u8 = 2;
const TAG_PREPARED: u8 = 3;
const TAG_COMMITTED: u8 = 4;
const TAG_ABORTED: u8 = 5;
const TAG_HEURISTIC: u8 = 6;
const TAG_END: u8 = 7;
const TAG_RM_UPDATE: u8 = 8;
const TAG_RM_PREPARED: u8 = 9;
const TAG_RM_COMMITTED: u8 = 10;
const TAG_RM_ABORTED: u8 = 11;

impl Encode for LogRecord {
    fn encode(&self, e: &mut Encoder) {
        match self {
            LogRecord::CommitPending { txn, subordinates } => {
                e.put_u8(TAG_COMMIT_PENDING);
                txn.encode(e);
                e.put_seq(subordinates);
            }
            LogRecord::Collecting { txn, subordinates } => {
                e.put_u8(TAG_COLLECTING);
                txn.encode(e);
                e.put_seq(subordinates);
            }
            LogRecord::Prepared {
                txn,
                coordinator,
                subordinates,
                prepared_at,
            } => {
                e.put_u8(TAG_PREPARED);
                txn.encode(e);
                coordinator.encode(e);
                e.put_seq(subordinates);
                e.put_u64(prepared_at.0);
            }
            LogRecord::Committed { txn, subordinates } => {
                e.put_u8(TAG_COMMITTED);
                txn.encode(e);
                e.put_seq(subordinates);
            }
            LogRecord::Aborted { txn, subordinates } => {
                e.put_u8(TAG_ABORTED);
                txn.encode(e);
                e.put_seq(subordinates);
            }
            LogRecord::Heuristic { txn, decision } => {
                e.put_u8(TAG_HEURISTIC);
                txn.encode(e);
                decision.encode(e);
            }
            LogRecord::End { txn } => {
                e.put_u8(TAG_END);
                txn.encode(e);
            }
            LogRecord::RmUpdate {
                rm,
                txn,
                key,
                before,
                after,
            } => {
                e.put_u8(TAG_RM_UPDATE);
                rm.encode(e);
                txn.encode(e);
                e.put_bytes(key);
                match before {
                    Some(v) => {
                        e.put_bool(true);
                        e.put_bytes(v);
                    }
                    None => e.put_bool(false),
                }
                match after {
                    Some(v) => {
                        e.put_bool(true);
                        e.put_bytes(v);
                    }
                    None => e.put_bool(false),
                }
            }
            LogRecord::RmPrepared { rm, txn } => {
                e.put_u8(TAG_RM_PREPARED);
                rm.encode(e);
                txn.encode(e);
            }
            LogRecord::RmCommitted { rm, txn } => {
                e.put_u8(TAG_RM_COMMITTED);
                rm.encode(e);
                txn.encode(e);
            }
            LogRecord::RmAborted { rm, txn } => {
                e.put_u8(TAG_RM_ABORTED);
                rm.encode(e);
                txn.encode(e);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let tag = d.get_u8()?;
        Ok(match tag {
            TAG_COMMIT_PENDING => LogRecord::CommitPending {
                txn: TxnId::decode(d)?,
                subordinates: d.get_seq()?,
            },
            TAG_COLLECTING => LogRecord::Collecting {
                txn: TxnId::decode(d)?,
                subordinates: d.get_seq()?,
            },
            TAG_PREPARED => LogRecord::Prepared {
                txn: TxnId::decode(d)?,
                coordinator: NodeId::decode(d)?,
                subordinates: d.get_seq()?,
                prepared_at: SimTime(d.get_u64()?),
            },
            TAG_COMMITTED => LogRecord::Committed {
                txn: TxnId::decode(d)?,
                subordinates: d.get_seq()?,
            },
            TAG_ABORTED => LogRecord::Aborted {
                txn: TxnId::decode(d)?,
                subordinates: d.get_seq()?,
            },
            TAG_HEURISTIC => LogRecord::Heuristic {
                txn: TxnId::decode(d)?,
                decision: HeuristicOutcome::decode(d)?,
            },
            TAG_END => LogRecord::End {
                txn: TxnId::decode(d)?,
            },
            TAG_RM_UPDATE => {
                let rm = RmId::decode(d)?;
                let txn = TxnId::decode(d)?;
                let key = d.get_bytes()?;
                let before = if d.get_bool()? {
                    Some(d.get_bytes()?)
                } else {
                    None
                };
                let after = if d.get_bool()? {
                    Some(d.get_bytes()?)
                } else {
                    None
                };
                LogRecord::RmUpdate {
                    rm,
                    txn,
                    key,
                    before,
                    after,
                }
            }
            TAG_RM_PREPARED => LogRecord::RmPrepared {
                rm: RmId::decode(d)?,
                txn: TxnId::decode(d)?,
            },
            TAG_RM_COMMITTED => LogRecord::RmCommitted {
                rm: RmId::decode(d)?,
                txn: TxnId::decode(d)?,
            },
            TAG_RM_ABORTED => LogRecord::RmAborted {
                rm: RmId::decode(d)?,
                txn: TxnId::decode(d)?,
            },
            t => return Err(Error::Codec(format!("invalid log record tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_txn() -> TxnId {
        TxnId::new(NodeId(2), 17)
    }

    fn all_samples() -> Vec<LogRecord> {
        let txn = sample_txn();
        vec![
            LogRecord::CommitPending {
                txn,
                subordinates: vec![NodeId(3), NodeId(4)],
            },
            LogRecord::Collecting {
                txn,
                subordinates: vec![NodeId(9)],
            },
            LogRecord::Prepared {
                txn,
                coordinator: NodeId(1),
                subordinates: vec![],
                prepared_at: SimTime(42),
            },
            LogRecord::Committed {
                txn,
                subordinates: vec![NodeId(3)],
            },
            LogRecord::Aborted {
                txn,
                subordinates: vec![],
            },
            LogRecord::Heuristic {
                txn,
                decision: HeuristicOutcome::Mixed,
            },
            LogRecord::End { txn },
            LogRecord::RmUpdate {
                rm: RmId(1),
                txn,
                key: b"acct/123".to_vec(),
                before: Some(b"100".to_vec()),
                after: None,
            },
            LogRecord::RmUpdate {
                rm: RmId(1),
                txn,
                key: b"new".to_vec(),
                before: None,
                after: Some(b"v".to_vec()),
            },
            LogRecord::RmPrepared { rm: RmId(2), txn },
            LogRecord::RmCommitted { rm: RmId(2), txn },
            LogRecord::RmAborted { rm: RmId(2), txn },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for rec in all_samples() {
            let bytes = rec.encode_to_bytes();
            assert_eq!(LogRecord::decode_all(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn txn_accessor_consistent() {
        for rec in all_samples() {
            assert_eq!(rec.txn(), sample_txn());
        }
    }

    #[test]
    fn rm_record_classification() {
        for rec in all_samples() {
            let expect = rec.kind_name().starts_with("Rm");
            assert_eq!(rec.is_rm_record(), expect, "{rec:?}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(LogRecord::decode_all(&[0xEE]).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        let bytes = all_samples()[0].encode_to_bytes();
        assert!(LogRecord::decode_all(&bytes[..bytes.len() - 2]).is_err());
    }
}
