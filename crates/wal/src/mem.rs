//! In-memory log with a crash-losable volatile tail.
//!
//! This is the log the simulator gives every node. Records appended with
//! [`Durability::NonForced`] sit in a volatile tail; a forced append (or an
//! explicit [`MemLog::flush`]) moves the whole tail to the durable prefix.
//! [`MemLog::crash`] discards the volatile tail — the simulator's model of
//! losing the log buffer in a system failure.

use std::borrow::Cow;

use tpc_common::wire::Encode;
use tpc_common::{Error, Lsn, Result};

use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

#[derive(Clone, Debug)]
struct Entry {
    lsn: Lsn,
    stream: StreamId,
    record: LogRecord,
    durability: Durability,
}

/// Volatile-tail in-memory log.
#[derive(Debug, Default)]
pub struct MemLog {
    durable: Vec<Entry>,
    volatile: Vec<Entry>,
    next_lsn: u64,
    stats: LogStats,
    crashed: bool,
}

impl MemLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        MemLog::default()
    }

    /// Simulates a system failure: the volatile tail is lost, and the log
    /// refuses further appends until [`MemLog::restart`].
    pub fn crash(&mut self) {
        self.volatile.clear();
        self.crashed = true;
    }

    /// Completes recovery restart: the log accepts appends again. The
    /// durable prefix is unchanged; LSNs continue from the durable end.
    pub fn restart(&mut self) {
        self.crashed = false;
        self.next_lsn = self.durable.last().map(|e| e.lsn.0 + 1).unwrap_or(0);
    }

    /// True while crashed (between [`MemLog::crash`] and
    /// [`MemLog::restart`]).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Number of records in the volatile (unforced) tail.
    pub fn volatile_len(&self) -> usize {
        self.volatile.len()
    }

    /// Records a physical flush performed externally (group commit): the
    /// batching layer may force once on behalf of several logical force
    /// requests. See [`crate::group::GroupCommitter`].
    pub fn note_physical_flush(&mut self) {
        self.stats.physical_flushes += 1;
        self.promote_tail();
    }

    fn promote_tail(&mut self) {
        self.durable.append(&mut self.volatile);
    }

    /// Appends without flushing even when forced — used by the group-commit
    /// wrapper, which takes over flush scheduling. The logical force is
    /// still counted in `forced_writes`.
    pub fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        if self.crashed {
            return Err(Error::Log("append on crashed log".into()));
        }
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        let encoded_len = record.encode_to_bytes().len() as u64;
        self.stats.writes += 1;
        self.stats.bytes += encoded_len;
        if durability.is_forced() {
            self.stats.forced_writes += 1;
        }
        self.volatile.push(Entry {
            lsn,
            stream,
            record,
            durability,
        });
        Ok(lsn)
    }

    /// Per-stream write/force counts over the whole log (durable +
    /// volatile). The table generators use this to report TM-stream and
    /// RM-stream costs separately, matching the paper's per-participant
    /// accounting.
    pub fn stream_counts(&self, stream: StreamId) -> (u64, u64) {
        let mut writes = 0;
        let mut forced = 0;
        for e in self.durable.iter().chain(self.volatile.iter()) {
            if e.stream == stream {
                writes += 1;
                if e.durability.is_forced() {
                    forced += 1;
                }
            }
        }
        (writes, forced)
    }

    /// All records with their requested durability, in order.
    pub fn records_with_durability(&self) -> Vec<(Lsn, StreamId, LogRecord, Durability)> {
        self.durable
            .iter()
            .chain(self.volatile.iter())
            .map(|e| (e.lsn, e.stream, e.record.clone(), e.durability))
            .collect()
    }
}

impl LogManager for MemLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let forced = durability.is_forced();
        let lsn = self.append_deferred(stream, record, durability)?;
        if forced {
            self.stats.physical_flushes += 1;
            self.promote_tail();
        }
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<()> {
        if self.crashed {
            return Err(Error::Log("flush on crashed log".into()));
        }
        if !self.volatile.is_empty() {
            self.stats.physical_flushes += 1;
            self.promote_tail();
        }
        Ok(())
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        MemLog::append_deferred(self, stream, record, durability)
    }

    fn flush_batch(&mut self) -> Result<()> {
        if self.crashed {
            return Err(Error::Log("flush on crashed log".into()));
        }
        self.note_physical_flush();
        Ok(())
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        Cow::Owned(
            self.durable
                .iter()
                .chain(self.volatile.iter())
                .map(|e| (e.lsn, e.stream, e.record.clone()))
                .collect(),
        )
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        self.durable
            .iter()
            .map(|e| (e.lsn, e.stream, e.record.clone()))
            .collect()
    }

    fn stats(&self) -> LogStats {
        self.stats
    }

    fn pending_forces(&self) -> u64 {
        self.volatile
            .iter()
            .filter(|e| e.durability.is_forced())
            .count() as u64
    }

    fn crash_discard(&mut self) {
        self.volatile.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, TxnId};

    fn txn(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn end(n: u64) -> LogRecord {
        LogRecord::End { txn: txn(n) }
    }

    #[test]
    fn forced_append_is_durable_immediately() {
        let mut log = MemLog::new();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        assert_eq!(log.durable_records().len(), 1);
        assert_eq!(log.stats().forced_writes, 1);
        assert_eq!(log.stats().physical_flushes, 1);
    }

    #[test]
    fn nonforced_append_lives_in_volatile_tail() {
        let mut log = MemLog::new();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        assert_eq!(log.durable_records().len(), 0);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.volatile_len(), 1);
    }

    #[test]
    fn force_carries_earlier_nonforced_records() {
        // The WAL contract the shared-log optimization relies on: the TM's
        // forced commit record makes the LRM's earlier non-forced prepared
        // record durable too.
        let mut log = MemLog::new();
        log.append(StreamId::Rm(0), end(1), Durability::NonForced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        let durable = log.durable_records();
        assert_eq!(durable.len(), 2);
        assert_eq!(durable[0].1, StreamId::Rm(0));
        assert_eq!(log.stats().physical_flushes, 1);
    }

    #[test]
    fn crash_loses_volatile_tail_only() {
        let mut log = MemLog::new();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.crash();
        let survivors = log.durable_records();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].2.txn(), txn(1));
        assert!(log.is_crashed());
    }

    #[test]
    fn crashed_log_rejects_appends_until_restart() {
        let mut log = MemLog::new();
        log.crash();
        assert!(log
            .append(StreamId::Tm, end(1), Durability::Forced)
            .is_err());
        assert!(log.flush().is_err());
        log.restart();
        assert!(log.append(StreamId::Tm, end(1), Durability::Forced).is_ok());
    }

    #[test]
    fn lsns_are_monotonic_across_restart() {
        let mut log = MemLog::new();
        let a = log
            .append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.crash();
        log.restart();
        let c = log
            .append(StreamId::Tm, end(3), Durability::Forced)
            .unwrap();
        assert!(c > a);
        // LSN of the lost record may be reused; durable order stays correct.
        let durable = log.durable_records();
        assert_eq!(durable.len(), 2);
        assert!(durable[0].0 < durable[1].0);
    }

    #[test]
    fn explicit_flush_promotes_and_counts_once() {
        let mut log = MemLog::new();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.flush().unwrap();
        assert_eq!(log.durable_records().len(), 2);
        assert_eq!(log.stats().physical_flushes, 1);
        // Flushing an empty tail is free.
        log.flush().unwrap();
        assert_eq!(log.stats().physical_flushes, 1);
    }

    #[test]
    fn deferred_append_counts_logical_force_without_flush() {
        let mut log = MemLog::new();
        log.append_deferred(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        assert_eq!(log.stats().forced_writes, 1);
        assert_eq!(log.stats().physical_flushes, 0);
        assert_eq!(log.durable_records().len(), 0);
        log.note_physical_flush();
        assert_eq!(log.stats().physical_flushes, 1);
        assert_eq!(log.durable_records().len(), 1);
    }

    #[test]
    fn stats_track_bytes() {
        let mut log = MemLog::new();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        assert!(log.stats().bytes > 0);
    }
}
