//! Segmented write-ahead log: preallocated, rotating fixed-size segments.
//!
//! [`FileLog`](crate::file::FileLog) appends to one ever-growing file, so
//! every `sync_data` also pays the filesystem's metadata flush for the
//! size extension — the dominant cost on the committed bench (file
//! backend fsync-bound at 1–2k txn/s). This backend writes the *same*
//! frame format into a chain of fixed-size segment files
//! (`wal-0000.seg`, `wal-0001.seg`, …), each preallocated with
//! `set_len` plus a real zero-fill pass at creation. Steady-state appends
//! land inside blocks that already exist, so `sync_data` flushes data
//! only — the direct attack on the fsync bound.
//!
//! Rules of the chain:
//!
//! * **Rotation.** A frame that does not fit in the active segment's
//!   remaining capacity seals it (flush + `sync_data`, counted as one
//!   physical flush) and opens the next preallocated segment. Sealed
//!   segments are therefore always fully durable.
//! * **Recovery.** [`SegmentedLog::open`] scans segments in sequence
//!   order. A sealed segment must parse cleanly up to its zero-filled
//!   tail; the first segment showing damage ends the durable prefix and
//!   is classified with the same [`TailState`] discipline as
//!   [`scan_classified`](crate::file::scan_classified) — a torn tail if
//!   nothing valid follows, corruption-before-tail if valid frames
//!   survive after the damage (in that segment or any later one).
//!   Everything past the damage point is discarded.
//! * **Retention.** Every record carries its transaction id; a TM `End`
//!   record marks the transaction forgettable. When every transaction in
//!   the *oldest* sealed segment has ended, the segment file is deleted
//!   (prefix-only truncation keeps the chain contiguous). In-doubt
//!   transactions — prepared without an outcome — pin their segments.
//!   Reclamation keys on TM `End` records only: RM streams replay
//!   `RmUpdate` records to rebuild store state at recovery and never
//!   write `End`, so a log carrying RM updates simply never reclaims —
//!   safe by construction (the node runtime still disables retention on
//!   its RM log outright).
//! * **Crash model.** `crash_discard` drops the buffered writer without
//!   flushing, re-scans the active segment from disk, and zero-fills the
//!   non-durable tail — exactly the `FileLog` discipline, adapted to a
//!   preallocated file where truncation would undo the preallocation.
//!   [`FaultyLog`](crate::faults::FaultyLog) image damage (torn writes,
//!   bit flips) applies to the first live segment file unchanged.
//!
//! LSNs are the cumulative logical byte offset across the chain as
//! scanned/written by this instance: monotone within a run, comparable
//! across a recovery scan — the same contract the other backends give.

use std::borrow::Cow;
use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tpc_common::wire::{crc32, Encode};
use tpc_common::{Error, Lsn, Result, TxnId};

use crate::file::{frame_len, stream_to_byte, try_frame, TailState, HEADER_LEN};
use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

/// Default segment capacity. Big enough that rotation (one extra
/// `sync_data` plus a zero-fill pass) is rare under the bench workloads,
/// small enough that retention reclaims space promptly.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Smallest allowed capacity — tests shrink segments to force rotation,
/// but a segment must hold at least one frame of every record type.
const MIN_SEGMENT_BYTES: u64 = 128;

/// Chunk used for the preallocation zero-fill pass.
const ZERO_CHUNK: usize = 64 * 1024;

/// Counters specific to the segmented backend, on top of the common
/// [`LogStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segments preallocated (the initial one plus one per rotation).
    pub segments_created: u64,
    /// Rotations performed (active segment sealed on fill).
    pub rotations: u64,
    /// Sealed segments deleted because every contained txn ended.
    pub segments_reclaimed: u64,
}

/// A sealed (rotated-out, fully durable) segment.
#[derive(Debug)]
struct SealedSegment {
    path: PathBuf,
    /// Logical LSN of this segment's first frame.
    base: u64,
    /// Bytes of valid frames (the rest of the file is zero fill).
    len: u64,
    /// Transactions with at least one frame in this segment.
    txns: HashSet<TxnId>,
}

/// Segmented, preallocated log directory. See the module docs for the
/// chain rules.
pub struct SegmentedLog {
    dir: PathBuf,
    segment_bytes: u64,
    /// Reclaim fully-ended sealed segments at rotation.
    retain: bool,
    /// Oldest-first chain of sealed segments.
    sealed: Vec<SealedSegment>,
    writer: BufWriter<File>,
    active_seq: u64,
    /// Logical LSN of the active segment's first frame.
    active_base: u64,
    /// Physical offset of the next frame within the active segment.
    active_off: u64,
    /// Transactions with a frame in the active segment.
    active_txns: HashSet<TxnId>,
    /// Transactions whose TM `End` record has been appended.
    ended: HashSet<TxnId>,
    cache: Vec<(Lsn, StreamId, LogRecord)>,
    stats: LogStats,
    seg_stats: SegmentStats,
    recovered_tail: TailState,
    /// Logically forced appends not yet covered by a physical sync (the
    /// force queue group commit is accumulating).
    pending_forces: u64,
}

/// `wal-0007.seg` style name for segment `seq` (widths beyond 4 digits
/// still sort correctly because recovery parses the number, not the
/// string).
fn segment_name(seq: u64) -> String {
    format!("wal-{seq:04}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Path of segment `seq` inside `dir` — exposed so fault injection and
/// the node runtime can point [`FaultyLog::with_path`]
/// (crate::faults::FaultyLog::with_path) at the first live image file.
pub fn segment_path(dir: impl AsRef<Path>, seq: u64) -> PathBuf {
    dir.as_ref().join(segment_name(seq))
}

/// Creates (and durably materializes) a segment file of `cap` bytes of
/// real zeros, returning the handle positioned at offset 0. The one-time
/// `sync_all` here is what buys every later append a metadata-free
/// `sync_data`.
fn preallocate(path: &Path, cap: u64) -> Result<File> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    file.set_len(cap)?;
    let mut w = BufWriter::with_capacity(ZERO_CHUNK, file);
    let zeros = [0u8; ZERO_CHUNK];
    let mut left = cap;
    while left > 0 {
        let n = left.min(ZERO_CHUNK as u64) as usize;
        w.write_all(&zeros[..n])?;
        left -= n as u64;
    }
    w.flush()?;
    let mut file = w.into_inner().map_err(|e| Error::Io(e.into_error()))?;
    file.sync_all()?;
    // Persist the directory entry too, so the segment itself survives a
    // crash right after rotation (best effort off Unix).
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    file.seek(SeekFrom::Start(0))?;
    Ok(file)
}

/// One segment's scan result, offsets local to the segment file.
struct SegScan {
    records: Vec<(u64, StreamId, LogRecord)>,
    /// Offset of the first byte the scan could not parse.
    stop: u64,
    /// True when everything after `stop` is zero fill (or `stop` is
    /// end-of-file) — the normal state of a healthy segment.
    clean: bool,
}

fn scan_segment_bytes(raw: &[u8]) -> SegScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    while let Some((stream, rec, next)) = try_frame(raw, off) {
        records.push((off as u64, stream, rec));
        off = next;
    }
    let clean = raw[off..].iter().all(|&b| b == 0);
    SegScan {
        records,
        stop: off as u64,
        clean,
    }
}

/// Counts the valid frames recoverable at any probe offset after `stop`
/// — the `scan_classified` brute-force resync, reused for the chain's
/// damaged segment.
fn survivors_after(raw: &[u8], stop: usize) -> u32 {
    let mut probe = stop + 1;
    while probe + HEADER_LEN <= raw.len() {
        if try_frame(raw, probe).is_some() {
            let mut survivors = 0u32;
            let mut o = probe;
            while let Some((_, _, next)) = try_frame(raw, o) {
                survivors += 1;
                o = next;
            }
            return survivors;
        }
        probe += 1;
    }
    0
}

/// True when `record` marks its transaction forgettable (TM `End`).
fn is_end_marker(record: &LogRecord) -> bool {
    matches!(record, LogRecord::End { .. })
}

/// Read-only scan of the durable chain under `dir`, oldest segment
/// first — the segmented twin of [`crate::file::scan`], for offline
/// verification. Stops where recovery would (first damaged segment, or a
/// sequence gap) without modifying anything on disk. A missing directory
/// scans as empty.
pub fn scan_chain(dir: impl AsRef<Path>) -> Result<Vec<(Lsn, StreamId, LogRecord)>> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let segments = list_segments(dir)?;
    let mut out = Vec::new();
    let mut base = 0u64;
    let mut expected = segments.first().map(|(seq, _)| *seq);
    for (seq, path) in &segments {
        if Some(*seq) != expected {
            break;
        }
        expected = Some(seq + 1);
        let raw = fs::read(path)?;
        let scan = scan_segment_bytes(&raw);
        for (off, stream, rec) in scan.records {
            out.push((Lsn(base + off), stream, rec));
        }
        base += scan.stop;
        if !scan.clean {
            break;
        }
    }
    Ok(out)
}

impl SegmentedLog {
    /// Creates a fresh segmented log in `dir` (which is created if
    /// missing and must not already contain segments) with the default
    /// capacity and retention enabled.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self> {
        Self::create_with(dir, DEFAULT_SEGMENT_BYTES, true)
    }

    /// Creates a fresh segmented log with an explicit segment capacity
    /// and retention policy. Existing segments in `dir` are removed —
    /// `create` matches [`FileLog::create`](crate::file::FileLog::create)
    /// truncation semantics.
    pub fn create_with(dir: impl AsRef<Path>, segment_bytes: u64, retain: bool) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for (_, path) in list_segments(&dir)? {
            fs::remove_file(path)?;
        }
        let segment_bytes = segment_bytes.max(MIN_SEGMENT_BYTES);
        let writer = BufWriter::new(preallocate(&segment_path(&dir, 0), segment_bytes)?);
        Ok(SegmentedLog {
            dir,
            segment_bytes,
            retain,
            sealed: Vec::new(),
            writer,
            active_seq: 0,
            active_base: 0,
            active_off: 0,
            active_txns: HashSet::new(),
            ended: HashSet::new(),
            cache: Vec::new(),
            stats: LogStats::default(),
            seg_stats: SegmentStats {
                segments_created: 1,
                ..SegmentStats::default()
            },
            recovered_tail: TailState::Clean,
            pending_forces: 0,
        })
    }

    /// Opens an existing segmented log with default capacity and
    /// retention, recovering the durable prefix of the chain.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, DEFAULT_SEGMENT_BYTES, true)
    }

    /// Opens an existing segmented log, scanning segments in sequence
    /// order. The first segment showing damage ends the durable prefix:
    /// its non-durable tail is zero-filled, later segments are deleted,
    /// and the stop is classified via [`SegmentedLog::recovered_tail`].
    /// An empty or missing directory recovers to an empty log.
    pub fn open_with(dir: impl AsRef<Path>, segment_bytes: u64, retain: bool) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segment_bytes = segment_bytes.max(MIN_SEGMENT_BYTES);
        let mut segments = list_segments(&dir)?;
        if segments.is_empty() {
            return Self::create_with(&dir, segment_bytes, retain);
        }
        // A sequence gap orphans everything after it: frames there can
        // never join the chain, so the files are deleted. Rotation never
        // skips a number — gaps only arise from external interference.
        let first_seq = segments[0].0;
        let contiguous = segments
            .iter()
            .enumerate()
            .take_while(|(i, (seq, _))| *seq == first_seq + *i as u64)
            .count();
        for (_, orphan) in segments.drain(contiguous..) {
            let _ = fs::remove_file(orphan);
        }

        let mut sealed = Vec::new();
        let mut cache = Vec::new();
        let mut ended = HashSet::new();
        let mut base = 0u64;
        let mut tail = TailState::Clean;
        // (seq, stop, txns) of the segment that becomes active again.
        let mut active: Option<(u64, u64, HashSet<TxnId>)> = None;

        for (i, (seq, path)) in segments.iter().enumerate() {
            let raw = fs::read(path)?;
            let scan = scan_segment_bytes(&raw);
            let last = i + 1 == segments.len();
            let mut txns = HashSet::new();
            for (off, stream, rec) in scan.records {
                txns.insert(rec.txn());
                if is_end_marker(&rec) {
                    ended.insert(rec.txn());
                }
                cache.push((Lsn(base + off), stream, rec));
            }
            if scan.clean {
                if last {
                    active = Some((*seq, scan.stop, txns));
                } else {
                    sealed.push(SealedSegment {
                        path: path.clone(),
                        base,
                        len: scan.stop,
                        txns,
                    });
                    base += scan.stop;
                }
                continue;
            }
            // Damage ends the durable prefix here. Classify with the
            // scan_classified discipline, counting valid frames after the
            // stop in this segment and in every later (now discarded)
            // segment.
            let mut survivors = survivors_after(&raw, scan.stop as usize);
            for (_, later) in &segments[i + 1..] {
                if let Ok(later_raw) = fs::read(later) {
                    survivors += scan_segment_bytes(&later_raw).records.len() as u32;
                }
                let _ = fs::remove_file(later);
            }
            tail = if survivors > 0 {
                TailState::CorruptionBeforeTail {
                    valid_frames_after: survivors,
                }
            } else {
                TailState::TornTail
            };
            active = Some((*seq, scan.stop, txns));
            break;
        }

        let (active_seq, active_off, active_txns) =
            active.expect("non-empty chain always yields an active segment");
        let active_path = segment_path(&dir, active_seq);
        let mut file = OpenOptions::new().write(true).open(&active_path)?;
        // Restore full preallocation: a torn image may be short, and the
        // damaged tail must not linger where a later scan could misread
        // it. Real zeros, so post-recovery appends stay metadata-free.
        let cap = segment_bytes.max(fs::metadata(&active_path)?.len().max(active_off));
        file.set_len(cap)?;
        file.seek(SeekFrom::Start(active_off))?;
        let mut w = BufWriter::with_capacity(ZERO_CHUNK, file);
        let zeros = [0u8; ZERO_CHUNK];
        let mut left = cap - active_off;
        while left > 0 {
            let n = left.min(ZERO_CHUNK as u64) as usize;
            w.write_all(&zeros[..n])?;
            left -= n as u64;
        }
        w.flush()?;
        let mut file = w.into_inner().map_err(|e| Error::Io(e.into_error()))?;
        file.sync_all()?;
        file.seek(SeekFrom::Start(active_off))?;

        Ok(SegmentedLog {
            dir,
            segment_bytes: cap,
            retain,
            sealed,
            writer: BufWriter::new(file),
            active_seq,
            active_base: base,
            active_off,
            active_txns,
            ended,
            cache,
            stats: LogStats::default(),
            seg_stats: SegmentStats::default(),
            recovered_tail: tail,
            pending_forces: 0,
        })
    }

    /// What [`SegmentedLog::open`] found at the end of the durable
    /// prefix — the chain-wide analogue of
    /// [`FileLog::recovered_tail`](crate::file::FileLog::recovered_tail).
    pub fn recovered_tail(&self) -> TailState {
        self.recovered_tail
    }

    /// Directory holding the segment chain.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the oldest live segment — where crash-time image faults
    /// (torn write, bit flip) land.
    pub fn first_segment_path(&self) -> PathBuf {
        self.sealed
            .first()
            .map(|s| s.path.clone())
            .unwrap_or_else(|| segment_path(&self.dir, self.active_seq))
    }

    /// Segment-level counters (rotations, reclamations, preallocations).
    pub fn segment_stats(&self) -> SegmentStats {
        self.seg_stats
    }

    /// Live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Deletes sealed segments from the front of the chain while every
    /// transaction they contain has ended; returns how many were
    /// reclaimed. Called automatically at rotation when retention is on.
    pub fn reclaim(&mut self) -> usize {
        let mut removed = 0;
        while let Some(first) = self.sealed.first() {
            // all() is vacuously true for an (unusual) empty segment —
            // nothing in it to lose, so reclaiming is still right.
            if !first.txns.iter().all(|t| self.ended.contains(t)) {
                break;
            }
            let seg = self.sealed.remove(0);
            let _ = fs::remove_file(&seg.path);
            let cutoff = seg.base + seg.len;
            self.cache.retain(|(lsn, _, _)| lsn.0 >= cutoff);
            // Drop `ended` markers no longer pinned by any live segment.
            for t in seg.txns {
                let live = self.active_txns.contains(&t)
                    || self.sealed.iter().any(|s| s.txns.contains(&t));
                if !live {
                    self.ended.remove(&t);
                }
            }
            self.seg_stats.segments_reclaimed += 1;
            removed += 1;
        }
        removed
    }

    /// Seals the active segment (flush + `sync_data`, one physical
    /// flush) and opens the next preallocated one.
    fn rotate(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.stats.physical_flushes += 1;
        self.sealed.push(SealedSegment {
            path: segment_path(&self.dir, self.active_seq),
            base: self.active_base,
            len: self.active_off,
            txns: std::mem::take(&mut self.active_txns),
        });
        self.active_base += self.active_off;
        self.active_seq += 1;
        self.active_off = 0;
        self.writer = BufWriter::new(preallocate(
            &segment_path(&self.dir, self.active_seq),
            self.segment_bytes,
        )?);
        self.seg_stats.rotations += 1;
        self.seg_stats.segments_created += 1;
        if self.retain {
            self.reclaim();
        }
        Ok(())
    }

    /// Writes one frame (rotating first if it does not fit) and updates
    /// logical stats; the physical flush is the caller's job.
    fn write_frame(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let flen = frame_len(&record) as u64;
        if flen > self.segment_bytes {
            return Err(Error::Log(format!(
                "record frame of {flen} bytes exceeds segment capacity {}",
                self.segment_bytes
            )));
        }
        if self.active_off + flen > self.segment_bytes {
            self.rotate()?;
        }
        let payload = record.encode_to_bytes();
        let mut body = Vec::with_capacity(1 + payload.len());
        body.extend_from_slice(&stream_to_byte(stream));
        body.extend_from_slice(&payload);
        let crc = crc32(&body);

        let lsn = Lsn(self.active_base + self.active_off);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.active_off += flen;

        self.stats.writes += 1;
        self.stats.bytes += payload.len() as u64;
        if durability.is_forced() {
            self.pending_forces += 1;
            self.stats.forced_writes += 1;
        }
        self.active_txns.insert(record.txn());
        if is_end_marker(&record) {
            self.ended.insert(record.txn());
        }
        self.cache.push((lsn, stream, record));
        Ok(lsn)
    }

    fn sync_active(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.pending_forces = 0;
        Ok(())
    }
}

/// Sorted `(seq, path)` list of segment files in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

impl LogManager for SegmentedLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let lsn = self.write_frame(stream, record, durability)?;
        if durability.is_forced() {
            self.stats.physical_flushes += 1;
            self.sync_active()?;
        }
        Ok(lsn)
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        // Forced durability is still a logical force; the group-commit
        // layer owns the single physical `sync_data` for the batch.
        self.write_frame(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        self.stats.physical_flushes += 1;
        self.sync_active()
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        Cow::Borrowed(&self.cache)
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        // Disk truth over the whole chain, mirroring the open() walk:
        // sealed segments then the active one, stopping at the first
        // damage. Errors degrade to "nothing further durable".
        let mut out = Vec::new();
        let mut base = 0u64;
        let chain = self
            .sealed
            .iter()
            .map(|s| s.path.clone())
            .chain(std::iter::once(segment_path(&self.dir, self.active_seq)));
        for path in chain {
            let Ok(raw) = fs::read(&path) else {
                break;
            };
            let scan = scan_segment_bytes(&raw);
            for (off, stream, rec) in scan.records {
                out.push((Lsn(base + off), stream, rec));
            }
            if !scan.clean {
                break;
            }
            base += scan.stop;
        }
        out
    }

    fn stats(&self) -> LogStats {
        self.stats
    }

    fn pending_forces(&self) -> u64 {
        self.pending_forces
    }

    fn crash_discard(&mut self) {
        // Sealed segments were synced at rotation; only the active
        // segment holds bytes a power failure would lose. Swap in a
        // fresh writer, discard the old buffer without flushing, and
        // resync in-memory state to what the disk actually holds.
        let active_path = segment_path(&self.dir, self.active_seq);
        let Ok(file) = OpenOptions::new().write(true).open(&active_path) else {
            return;
        };
        let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
        drop(old.into_parts()); // buffered bytes are discarded, not flushed
        let raw = fs::read(&active_path).unwrap_or_default();
        let scan = scan_segment_bytes(&raw);
        let stop = scan.stop;
        // Zero the partial frame the lost buffer may have left behind,
        // restoring the "frames then zero fill" invariant.
        if (stop as usize) < raw.len() {
            let zeros = vec![0u8; raw.len() - stop as usize];
            let _ = self.writer.seek(SeekFrom::Start(stop));
            let _ = self.writer.write_all(&zeros);
            let _ = self.writer.flush();
        }
        let _ = self.writer.seek(SeekFrom::Start(stop));
        self.active_off = stop;
        self.active_txns = scan.records.iter().map(|(_, _, r)| r.txn()).collect();
        let cutoff = self.active_base + stop;
        self.cache.retain(|(lsn, _, _)| lsn.0 < cutoff);
        self.ended = self
            .cache
            .iter()
            .filter(|(_, _, r)| is_end_marker(r))
            .map(|(_, _, r)| r.txn())
            .collect();
        self.pending_forces = 0;
    }
}

impl std::fmt::Debug for SegmentedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedLog")
            .field("dir", &self.dir)
            .field("segment_bytes", &self.segment_bytes)
            .field("active_seq", &self.active_seq)
            .field("active_off", &self.active_off)
            .field("sealed", &self.sealed.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tpc-wal-seg-{}-{name}", std::process::id()))
    }

    fn txn(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn committed(n: u64) -> LogRecord {
        LogRecord::Committed {
            txn: txn(n),
            subordinates: vec![NodeId(1)],
        }
    }

    fn end(n: u64) -> LogRecord {
        LogRecord::End { txn: txn(n) }
    }

    fn rm(dir: &PathBuf) {
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn append_force_reopen_scan() {
        let dir = tmp("basic");
        {
            let mut log = SegmentedLog::create(&dir).unwrap();
            log.append(StreamId::Tm, committed(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Rm(2), end(2), Durability::Forced)
                .unwrap();
        }
        let log = SegmentedLog::open(&dir).unwrap();
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, StreamId::Tm);
        assert_eq!(recs[1].1, StreamId::Rm(2));
        assert_eq!(recs[1].2.txn().seq, 2);
        assert!(recs[0].0 < recs[1].0, "LSNs monotone");
        assert_eq!(log.recovered_tail(), TailState::Clean);
        rm(&dir);
    }

    #[test]
    fn preallocation_means_appends_never_extend_the_file() {
        let dir = tmp("prealloc");
        let mut log = SegmentedLog::create_with(&dir, 4096, true).unwrap();
        let path = segment_path(&dir, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 4096);
        for i in 0..10 {
            log.append(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            4096,
            "file length untouched by appends"
        );
        rm(&dir);
    }

    #[test]
    fn rotation_seals_and_chains_across_segments() {
        let dir = tmp("rotate");
        let mut log = SegmentedLog::create_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        let mut lsns = Vec::new();
        for i in 0..20 {
            lsns.push(
                log.append(StreamId::Tm, committed(i), Durability::Forced)
                    .unwrap(),
            );
        }
        assert!(log.segment_count() > 1, "small segments must rotate");
        assert!(log.segment_stats().rotations > 0);
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs monotone");
        // The full history survives a reopen, in order.
        drop(log);
        let log = SegmentedLog::open_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        let recs = log.records();
        assert_eq!(recs.len(), 20);
        for (i, (_, _, rec)) in recs.iter().enumerate() {
            assert_eq!(rec.txn().seq, i as u64);
        }
        assert_eq!(log.recovered_tail(), TailState::Clean);
        rm(&dir);
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let dir = tmp("unflushed");
        let mut log = SegmentedLog::create(&dir).unwrap();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        assert_eq!(log.durable_records().len(), 0);
        log.flush().unwrap();
        assert_eq!(log.durable_records().len(), 1);
        rm(&dir);
    }

    #[test]
    fn crash_discard_loses_exactly_the_unforced_tail() {
        let dir = tmp("crash-discard");
        let mut log = SegmentedLog::create(&dir).unwrap();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.crash_discard();
        assert_eq!(log.durable_records().len(), 1);
        assert_eq!(log.records().len(), 1, "cache resynced to disk");
        log.append(StreamId::Tm, end(3), Durability::Forced)
            .unwrap();
        let durable = log.durable_records();
        assert_eq!(durable.len(), 2);
        assert_eq!(durable[1].2.txn().seq, 3);
        rm(&dir);
    }

    #[test]
    fn deferred_forces_share_one_physical_flush() {
        let dir = tmp("deferred");
        let mut log = SegmentedLog::create(&dir).unwrap();
        for i in 0..3 {
            log.append_deferred(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        let s = log.stats();
        assert_eq!(s.forced_writes, 3, "logical forces still counted");
        assert_eq!(s.physical_flushes, 0, "no sync until the batch flush");
        assert_eq!(log.durable_records().len(), 0, "nothing durable yet");

        log.flush_batch().unwrap();
        let s = log.stats();
        assert_eq!(s.physical_flushes, 1, "one flush covers the batch");
        assert_eq!(log.durable_records().len(), 3);
        rm(&dir);
    }

    #[test]
    fn torn_tail_at_rotation_boundary_recovers_sealed_prefix() {
        // Fill past one rotation, then tear the *new* active segment so
        // its frames are lost mid-write: recovery must keep every frame
        // of the sealed segment and classify a torn tail.
        let dir = tmp("rotation-torn");
        let mut log = SegmentedLog::create_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        let mut appended = 0u64;
        while log.segment_count() == 1 {
            log.append(StreamId::Tm, committed(appended), Durability::Forced)
                .unwrap();
            appended += 1;
        }
        // One more frame into the fresh segment, then damage its tail.
        log.append(StreamId::Tm, committed(appended), Durability::Forced)
            .unwrap();
        drop(log);
        let active: u64 = list_segments(&dir).unwrap().last().unwrap().0;
        let path = segment_path(&dir, active);
        let raw = std::fs::read(&path).unwrap();
        let scan = scan_segment_bytes(&raw);
        // Cut the last frame in half (mid-frame torn write).
        let tear_at = scan.stop - 3;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(tear_at).unwrap();
        drop(f);

        let log = SegmentedLog::open_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        assert_eq!(log.recovered_tail(), TailState::TornTail);
        let recs = log.records();
        assert_eq!(recs.len() as u64, appended, "sealed prefix intact");
        for (i, (_, _, rec)) in recs.iter().enumerate() {
            assert_eq!(rec.txn().seq, i as u64);
        }
        rm(&dir);
    }

    #[test]
    fn damage_in_sealed_segment_discards_later_segments_as_corruption() {
        let dir = tmp("mid-chain");
        let mut log = SegmentedLog::create_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        let mut appended = 0u64;
        while log.segment_count() < 3 {
            log.append(StreamId::Tm, committed(appended), Durability::Forced)
                .unwrap();
            appended += 1;
        }
        drop(log);
        // Flip a bit inside the FIRST segment's first frame.
        let path = segment_path(&dir, 0);
        let mut raw = std::fs::read(&path).unwrap();
        raw[HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();

        let log = SegmentedLog::open_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        assert!(
            log.recovered_tail().is_corruption(),
            "later valid frames must classify as corruption, got {:?}",
            log.recovered_tail()
        );
        assert_eq!(log.records().len(), 0, "prefix recovery still applies");
        assert_eq!(
            list_segments(&dir).unwrap().len(),
            1,
            "segments after the damage are deleted"
        );
        // The log keeps working after recovery.
        let mut log = log;
        log.append(StreamId::Tm, end(999), Durability::Forced)
            .unwrap();
        assert_eq!(log.durable_records().len(), 1);
        rm(&dir);
    }

    #[test]
    fn retention_reclaims_ended_segments_and_keeps_in_doubt() {
        let dir = tmp("retention");
        let mut log = SegmentedLog::create_with(&dir, 256, true).unwrap();
        // Txns 1..=20 run a full life cycle (Committed + End): once a
        // sealed segment holds only ended txns it is reclaimable.
        for i in 1..=20 {
            log.append(StreamId::Tm, committed(i), Durability::Forced)
                .unwrap();
            log.append(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        // Txn 99 prepares and never resolves — in doubt. Every segment
        // from its frame onward is pinned; earlier ones keep reclaiming.
        log.append(
            StreamId::Tm,
            LogRecord::Prepared {
                txn: txn(99),
                coordinator: NodeId(1),
                subordinates: vec![NodeId(0)],
                prepared_at: tpc_common::SimTime(0),
            },
            Durability::Forced,
        )
        .unwrap();
        let pinned_from = log.segment_count();
        for i in 100..=120 {
            log.append(StreamId::Tm, committed(i), Durability::Forced)
                .unwrap();
            log.append(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        assert!(
            log.segment_stats().segments_reclaimed > 0,
            "fully-ended sealed segments must be reclaimed"
        );
        assert!(
            !segment_path(&dir, 0).exists(),
            "oldest fully-ended segment must be deleted"
        );
        assert!(
            log.segment_count() >= pinned_from,
            "segments at and after the in-doubt txn are retained"
        );
        let recs = log.records();
        assert!(
            recs.iter().any(|(_, _, r)| r.txn() == txn(99)),
            "in-doubt record survives in cache"
        );
        assert!(
            recs.iter().all(|(_, _, r)| r.txn() != txn(1)),
            "reclaimed history leaves the live view"
        );
        // Reclaimed history is gone from the live view but the chain
        // still recovers cleanly.
        drop(log);
        let log = SegmentedLog::open_with(&dir, 256, true).unwrap();
        assert_eq!(log.recovered_tail(), TailState::Clean);
        assert!(log.records().iter().any(|(_, _, r)| r.txn() == txn(99)));
        rm(&dir);
    }

    #[test]
    fn retention_never_reclaims_without_end_records() {
        let dir = tmp("retention-off");
        let mut log = SegmentedLog::create_with(&dir, 256, true).unwrap();
        for i in 0..40 {
            // RM-style stream: updates and outcomes but no TM End.
            log.append(StreamId::Rm(0), committed(i), Durability::Forced)
                .unwrap();
        }
        assert!(log.segment_count() > 1);
        assert_eq!(
            log.segment_stats().segments_reclaimed,
            0,
            "no End markers -> nothing reclaimed"
        );
        rm(&dir);
    }

    #[test]
    fn oversized_record_is_rejected_not_mangled() {
        let dir = tmp("oversize");
        let mut log = SegmentedLog::create_with(&dir, MIN_SEGMENT_BYTES, false).unwrap();
        let big = LogRecord::Committed {
            txn: txn(1),
            subordinates: (0..200).map(NodeId).collect(),
        };
        assert!(log.append(StreamId::Tm, big, Durability::Forced).is_err());
        assert_eq!(log.stats().writes, 0);
        rm(&dir);
    }

    #[test]
    fn reopen_continues_appending_and_lsns_stay_monotone() {
        let dir = tmp("reopen");
        let last = {
            let mut log = SegmentedLog::create(&dir).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap()
        };
        let mut log = SegmentedLog::open(&dir).unwrap();
        let next = log
            .append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        assert!(next > last);
        assert_eq!(log.durable_records().len(), 2);
        rm(&dir);
    }
}
