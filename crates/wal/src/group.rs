//! Group commit: batching forced-write requests (§4, *Group Commits*).
//!
//! "The log manager delays performing a force-write request until one of
//! two things occur: either a defined number of force-write requests
//! arrive, or a timer expires."
//!
//! [`GroupCommitter`] is a pure, clock-driven state machine so the same
//! policy code runs under the deterministic simulator (virtual clock) and
//! the live runtime (wall clock). Callers hand in an opaque *ticket* per
//! force request (the simulator uses it to resume the suspended commit
//! step) and get tickets back when their batch flushes.

use tpc_common::config::GroupCommitConfig;
use tpc_common::{SimDuration, SimTime};

/// What the caller must do after submitting a force request.
#[derive(Debug, PartialEq, Eq)]
pub enum FlushDecision<T> {
    /// The batch is full: perform one physical flush now; all returned
    /// tickets' force requests are satisfied by it.
    FlushNow(Vec<T>),
    /// The request joined a pending batch. If no flush happens first, call
    /// [`GroupCommitter::expire`] at `deadline`.
    WaitUntil(SimTime),
}

/// Statistics for the group-commit layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Logical force requests submitted.
    pub requests: u64,
    /// Physical flushes performed (batch full or timer).
    pub flushes: u64,
    /// Flushes triggered by the batch filling.
    pub flushes_by_size: u64,
    /// Flushes triggered by timer expiry.
    pub flushes_by_timer: u64,
    /// Immediate flushes taken by the adaptive policy because the force
    /// queue was shallow (arrivals slower than a physical flush).
    pub flushes_adaptive: u64,
}

impl GroupStats {
    /// Forced writes saved versus one flush per request.
    pub fn flushes_saved(&self) -> u64 {
        self.requests.saturating_sub(self.flushes)
    }

    /// Folds another committer's counters into this one (per-lane
    /// committers on a shared log roll up to node totals).
    pub fn merge(&mut self, other: &GroupStats) {
        self.requests += other.requests;
        self.flushes += other.flushes;
        self.flushes_by_size += other.flushes_by_size;
        self.flushes_by_timer += other.flushes_by_timer;
        self.flushes_adaptive += other.flushes_adaptive;
    }
}

/// The batching state machine.
#[derive(Debug)]
pub struct GroupCommitter<T> {
    cfg: GroupCommitConfig,
    pending: Vec<T>,
    /// Deadline set when the first request of the current batch arrived.
    deadline: Option<SimTime>,
    stats: GroupStats,
    /// When the previous force request arrived (adaptive policy input).
    last_request: Option<SimTime>,
    /// Smoothed force inter-arrival gap, µs.
    gap_ewma_us: Option<u64>,
    /// Smoothed physical-flush cost, µs (reported by the host via
    /// [`GroupCommitter::note_flush_micros`]). `None` until measured.
    flush_cost_us: Option<u64>,
}

impl<T> GroupCommitter<T> {
    /// Creates a committer with the given policy.
    pub fn new(cfg: GroupCommitConfig) -> Self {
        GroupCommitter {
            cfg,
            pending: Vec::new(),
            deadline: None,
            stats: GroupStats::default(),
            last_request: None,
            gap_ewma_us: None,
            flush_cost_us: None,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &GroupCommitConfig {
        &self.cfg
    }

    /// Number of force requests waiting for a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Reports the measured cost of one physical flush, in microseconds.
    /// Feeds the adaptive policy's shallow-queue test; a no-op for the
    /// fixed policy. Hosts call this after every `flush_batch`.
    pub fn note_flush_micros(&mut self, micros: u64) {
        self.flush_cost_us = Some(match self.flush_cost_us {
            Some(prev) => (prev * 3 + micros) / 4,
            None => micros,
        });
    }

    /// The adaptive shallow-queue test: batching only pays when forces
    /// arrive faster than the device can flush them one by one. With no
    /// flush-cost measurement yet the queue counts as shallow, so the
    /// first forces flush solo and calibrate the estimate.
    fn queue_is_shallow(&self) -> bool {
        match (self.gap_ewma_us, self.flush_cost_us) {
            (Some(gap), Some(cost)) => gap >= cost,
            _ => true,
        }
    }

    /// Submits a force request at virtual time `now`.
    pub fn request(&mut self, now: SimTime, ticket: T) -> FlushDecision<T> {
        self.stats.requests += 1;
        if let Some(prev) = self.last_request {
            let gap = now.since(prev).as_micros();
            self.gap_ewma_us = Some(match self.gap_ewma_us {
                Some(e) => (e * 3 + gap) / 4,
                None => gap,
            });
        }
        self.last_request = Some(now);
        self.pending.push(ticket);
        if self.pending.len() >= self.cfg.batch_size {
            self.stats.flushes += 1;
            self.stats.flushes_by_size += 1;
            self.deadline = None;
            return FlushDecision::FlushNow(std::mem::take(&mut self.pending));
        }
        // Adaptive fast path: this request opened a batch nobody else is
        // waiting in, and the arrival rate says company is unlikely to
        // show before a flush would finish anyway — flush immediately
        // instead of stalling the tail behind `max_wait`.
        if self.cfg.adaptive && self.pending.len() == 1 && self.queue_is_shallow() {
            self.stats.flushes += 1;
            self.stats.flushes_adaptive += 1;
            self.deadline = None;
            return FlushDecision::FlushNow(std::mem::take(&mut self.pending));
        }
        let deadline = *self
            .deadline
            .get_or_insert(now + SimDuration::from_micros(self.cfg.max_wait.as_micros()));
        FlushDecision::WaitUntil(deadline)
    }

    /// Called when a previously returned deadline arrives. Returns the
    /// tickets to release if the batch is still pending and its deadline
    /// has indeed passed; `None` if a size-triggered flush already took it
    /// (a stale timer).
    pub fn expire(&mut self, now: SimTime) -> Option<Vec<T>> {
        match self.deadline {
            Some(d) if now >= d && !self.pending.is_empty() => {
                self.stats.flushes += 1;
                self.stats.flushes_by_timer += 1;
                self.deadline = None;
                Some(std::mem::take(&mut self.pending))
            }
            _ => None,
        }
    }

    /// Flushes whatever is pending immediately (e.g. on shutdown).
    /// Returns the released tickets, if any.
    pub fn drain(&mut self) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            return None;
        }
        self.stats.flushes += 1;
        self.stats.flushes_by_timer += 1;
        self.deadline = None;
        Some(std::mem::take(&mut self.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(batch: usize, wait_us: u64) -> GroupCommitConfig {
        GroupCommitConfig {
            batch_size: batch,
            max_wait: SimDuration::from_micros(wait_us),
            adaptive: false,
        }
    }

    #[test]
    fn batch_fills_and_flushes() {
        let mut gc = GroupCommitter::new(cfg(3, 100));
        let t0 = SimTime(0);
        assert_eq!(gc.request(t0, 'a'), FlushDecision::WaitUntil(SimTime(100)));
        assert_eq!(gc.request(t0, 'b'), FlushDecision::WaitUntil(SimTime(100)));
        match gc.request(t0, 'c') {
            FlushDecision::FlushNow(tickets) => assert_eq!(tickets, vec!['a', 'b', 'c']),
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(gc.stats().requests, 3);
        assert_eq!(gc.stats().flushes, 1);
        assert_eq!(gc.stats().flushes_by_size, 1);
        assert_eq!(gc.stats().flushes_saved(), 2);
    }

    #[test]
    fn timer_flushes_partial_batch() {
        let mut gc = GroupCommitter::new(cfg(10, 50));
        let d = match gc.request(SimTime(5), 1u32) {
            FlushDecision::WaitUntil(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(d, SimTime(55));
        gc.request(SimTime(20), 2u32);
        // Timer fires.
        let released = gc.expire(d).expect("deadline flush");
        assert_eq!(released, vec![1, 2]);
        assert_eq!(gc.stats().flushes_by_timer, 1);
    }

    #[test]
    fn deadline_anchors_to_first_request_of_batch() {
        let mut gc = GroupCommitter::new(cfg(10, 50));
        gc.request(SimTime(0), 'x');
        // A later request does not extend the batch deadline.
        match gc.request(SimTime(40), 'y') {
            FlushDecision::WaitUntil(d) => assert_eq!(d, SimTime(50)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_batch_after_timer_flush_anchors_its_own_deadline() {
        let mut gc = GroupCommitter::new(cfg(10, 50));
        gc.request(SimTime(0), 'a');
        assert_eq!(gc.expire(SimTime(50)), Some(vec!['a']));
        // The next request opens a fresh batch: deadline = its own now +
        // max_wait, not a remnant of the flushed batch.
        match gc.request(SimTime(200), 'b') {
            FlushDecision::WaitUntil(d) => assert_eq!(d, SimTime(250)),
            other => panic!("{other:?}"),
        }
        assert_eq!(gc.stats().flushes_by_timer, 1);
    }

    #[test]
    fn expire_with_empty_batch_is_a_noop() {
        let mut gc = GroupCommitter::<u32>::new(cfg(10, 50));
        assert_eq!(gc.expire(SimTime(1_000)), None);
        assert_eq!(gc.stats().flushes, 0);
    }

    #[test]
    fn deadline_flush_bounds_wait_regardless_of_batch_size() {
        // The §4 latency guarantee: no force waits longer than max_wait,
        // even when the batch never fills. Sparse arrivals, batch of 64:
        // every release happens within max_wait of the batch opening.
        let mut gc = GroupCommitter::new(cfg(64, 100));
        let mut open_at: Option<SimTime> = None;
        let mut released = 0usize;
        for i in 0..20u64 {
            let now = SimTime(i * 70); // slower than the batch can fill
            if let Some(opened) = open_at {
                let deadline = SimTime(opened.0 + 100);
                if now >= deadline {
                    let t = gc.expire(deadline).expect("deadline flush");
                    released += t.len();
                    open_at = None;
                }
            }
            match gc.request(now, i) {
                FlushDecision::WaitUntil(d) => {
                    let opened = *open_at.get_or_insert(now);
                    assert!(
                        d.0 - opened.0 <= 100,
                        "wait {} exceeds max_wait",
                        d.0 - opened.0
                    );
                }
                FlushDecision::FlushNow(_) => panic!("batch of 64 must never fill here"),
            }
        }
        if let Some(t) = gc.drain() {
            released += t.len();
        }
        assert_eq!(released, 20, "every force released");
        assert_eq!(gc.stats().flushes_by_size, 0);
        assert!(gc.stats().flushes_by_timer >= 9, "{:?}", gc.stats());
    }

    #[test]
    fn stale_timer_after_size_flush_is_ignored() {
        let mut gc = GroupCommitter::new(cfg(2, 100));
        gc.request(SimTime(0), 'a');
        let FlushDecision::FlushNow(_) = gc.request(SimTime(1), 'b') else {
            panic!("expected size flush");
        };
        assert_eq!(gc.expire(SimTime(100)), None);
        assert_eq!(gc.stats().flushes, 1);
    }

    #[test]
    fn early_expire_call_is_a_noop() {
        let mut gc = GroupCommitter::new(cfg(5, 100));
        gc.request(SimTime(0), 'a');
        assert_eq!(gc.expire(SimTime(50)), None);
        assert_eq!(gc.pending_len(), 1);
    }

    #[test]
    fn drain_releases_everything() {
        let mut gc = GroupCommitter::new(cfg(5, 100));
        gc.request(SimTime(0), 'a');
        gc.request(SimTime(1), 'b');
        assert_eq!(gc.drain(), Some(vec!['a', 'b']));
        assert_eq!(gc.drain(), None);
    }

    #[test]
    fn new_batch_starts_after_flush() {
        let mut gc = GroupCommitter::new(cfg(2, 100));
        gc.request(SimTime(0), 1);
        gc.request(SimTime(0), 2); // flush
        match gc.request(SimTime(200), 3) {
            FlushDecision::WaitUntil(d) => assert_eq!(d, SimTime(300)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adaptive_flushes_solo_when_arrivals_are_sparse() {
        // A fast device (flush ≈ 3 µs) with forces arriving every 1000 µs:
        // waiting max_wait for company is pure latency. Every force must
        // flush immediately.
        let mut gc = GroupCommitter::new(cfg(4, 5_000).with_adaptive());
        for i in 0..10u64 {
            let now = SimTime(i * 1_000);
            match gc.request(now, i) {
                FlushDecision::FlushNow(t) => assert_eq!(t, vec![i]),
                other => panic!("sparse adaptive force must flush solo, got {other:?}"),
            }
            gc.note_flush_micros(3);
        }
        assert_eq!(gc.stats().flushes, 10);
        assert_eq!(gc.stats().flushes_adaptive, 10);
        assert_eq!(gc.stats().flushes_saved(), 0);
    }

    #[test]
    fn adaptive_batches_under_real_depth() {
        // A slow device (flush ≈ 3000 µs) with forces arriving every
        // 100 µs: after the calibrating first flush, requests batch and
        // the size trigger takes over, exactly like the fixed policy.
        let mut gc = GroupCommitter::new(cfg(4, 5_000).with_adaptive());
        // First force: no flush-cost estimate yet — flushes solo and
        // calibrates.
        match gc.request(SimTime(0), 0u64) {
            FlushDecision::FlushNow(t) => assert_eq!(t, vec![0]),
            other => panic!("{other:?}"),
        }
        gc.note_flush_micros(3_000);
        let mut size_flushes = 0;
        for i in 1..=12u64 {
            match gc.request(SimTime(i * 100), i) {
                FlushDecision::FlushNow(t) => {
                    assert_eq!(t.len(), 4, "size-triggered batches of 4");
                    size_flushes += 1;
                    gc.note_flush_micros(3_000);
                }
                FlushDecision::WaitUntil(_) => {}
            }
        }
        assert_eq!(size_flushes, 3);
        assert_eq!(gc.stats().flushes_adaptive, 1, "only the calibrator");
        assert!(gc.stats().flushes_saved() >= 8);
    }

    #[test]
    fn adaptive_off_preserves_fixed_policy() {
        // Identical request streams with adaptive off must behave exactly
        // as before: the first request of a sparse stream waits.
        let mut gc = GroupCommitter::new(cfg(4, 5_000));
        gc.note_flush_micros(3);
        assert_eq!(
            gc.request(SimTime(0), 'a'),
            FlushDecision::WaitUntil(SimTime(5_000))
        );
    }

    #[test]
    fn paper_claim_n_requests_batch_m_saves_most_flushes() {
        // §4: "For n transactions and a group commit of size m" the saving
        // approaches n - n/m flushes. Simulate 120 back-to-back requests,
        // batch of 4: expect 30 flushes, 90 saved.
        let mut gc = GroupCommitter::new(cfg(4, 1_000));
        let mut released = 0;
        for i in 0..120u64 {
            if let FlushDecision::FlushNow(t) = gc.request(SimTime(i), i) {
                released += t.len();
            }
        }
        assert_eq!(released, 120);
        assert_eq!(gc.stats().flushes, 30);
        assert_eq!(gc.stats().flushes_saved(), 90);
    }
}
