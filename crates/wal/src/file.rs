//! File-backed log with real fsync and torn-tail recovery.
//!
//! Frame format, little-endian:
//!
//! ```text
//! +---------+---------+----------+-------------------+
//! | u32 len | u32 crc | u8 strm  | payload (len)     |
//! +---------+---------+----------+-------------------+
//! ```
//!
//! `crc` covers the stream byte plus the payload. The recovery scan stops
//! at the first short, zeroed or corrupt frame, treating everything before
//! it as the durable prefix — the standard WAL torn-write discipline.

use std::borrow::Cow;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tpc_common::wire::{crc32, Decode, Encode};
use tpc_common::{Lsn, Result};

use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

pub(crate) const HEADER_LEN: usize = 4 + 4 + 1;

pub(crate) fn stream_to_byte(s: StreamId) -> [u8; 1] {
    match s {
        StreamId::Tm => [0xFF],
        StreamId::Rm(i) => {
            debug_assert!(i < 0xFF, "RM ids above 254 unsupported in file frames");
            [i as u8]
        }
    }
}

fn stream_from_byte(b: u8) -> StreamId {
    if b == 0xFF {
        StreamId::Tm
    } else {
        StreamId::Rm(b as u16)
    }
}

/// How the recovery scan's stopping point classifies: did the log end in
/// the ordinary torn tail a crash leaves behind, or did valid frames
/// survive *after* the damage — i.e. corruption (bit rot, a misdirected
/// write) inside the committed prefix?
///
/// Both cases recover the same way — truncate to the last valid prefix —
/// but they mean very different things operationally: a torn tail is
/// expected after every crash, while corruption before the tail discards
/// frames that were once durable and must be surfaced, not silently
/// swallowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TailState {
    /// Every byte parsed; the file ends exactly at a frame boundary.
    #[default]
    Clean,
    /// The scan stopped at damage with no valid frame after it: the
    /// normal aftermath of a crash mid-append.
    TornTail,
    /// The scan stopped at damage but valid frames follow it — data that
    /// was durably written is being dropped by prefix truncation.
    CorruptionBeforeTail {
        /// Valid frames found after the damaged region (all discarded).
        valid_frames_after: u32,
    },
}

impl TailState {
    /// True when prefix truncation discarded once-durable frames.
    pub fn is_corruption(&self) -> bool {
        matches!(self, TailState::CorruptionBeforeTail { .. })
    }
}

/// Result of a classified recovery scan: the durable prefix plus what the
/// stopping point looked like.
#[derive(Debug)]
pub struct ScanReport {
    /// The valid prefix, in LSN order.
    pub records: Vec<(Lsn, StreamId, LogRecord)>,
    /// Classification of whatever ended the scan.
    pub tail: TailState,
}

/// An append-only log file.
pub struct FileLog {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Byte offset of the next frame == LSN of the next record.
    next_offset: u64,
    /// In-memory copy of appended records for `records()`; the durable
    /// view re-reads the file.
    cache: Vec<(Lsn, StreamId, LogRecord)>,
    stats: LogStats,
    /// What `open` found at the end of the durable prefix.
    recovered_tail: TailState,
    /// Logically forced appends not yet covered by a physical sync.
    pending_forces: u64,
}

impl FileLog {
    /// Creates (truncating) a new log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileLog {
            path,
            writer: BufWriter::new(file),
            next_offset: 0,
            cache: Vec::new(),
            stats: LogStats::default(),
            recovered_tail: TailState::Clean,
            pending_forces: 0,
        })
    }

    /// Opens an existing log file, scanning the durable prefix and
    /// positioning new appends after the last valid frame. Any tail is
    /// still truncated (prefix recovery is the only safe answer), but its
    /// classification — clean, torn, or corruption before the tail — is
    /// kept and reported via [`FileLog::recovered_tail`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let report = scan_classified(&path)?;
        let recovered = report.records;
        let next_offset = recovered
            .last()
            .map(|(lsn, _, rec)| lsn.0 + frame_len(rec) as u64)
            .unwrap_or(0);
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(next_offset)?; // drop the damaged tail
        file.seek(SeekFrom::Start(next_offset))?;
        Ok(FileLog {
            path,
            writer: BufWriter::new(file),
            next_offset,
            cache: recovered,
            stats: LogStats::default(),
            recovered_tail: report.tail,
            pending_forces: 0,
        })
    }

    /// What [`FileLog::open`] found at the end of the durable prefix:
    /// a clean boundary, a torn tail, or corruption with valid frames
    /// after it.
    pub fn recovered_tail(&self) -> TailState {
        self.recovered_tail
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

pub(crate) fn frame_len(record: &LogRecord) -> usize {
    HEADER_LEN + record.encode_to_bytes().len()
}

/// Tries to parse one frame at `off`; returns the record and the offset
/// of the next frame, or `None` if the bytes at `off` are not a complete
/// valid frame.
pub(crate) fn try_frame(raw: &[u8], off: usize) -> Option<(StreamId, LogRecord, usize)> {
    if off + HEADER_LEN > raw.len() {
        return None;
    }
    let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
    let body_start = off + 8;
    let body_end = body_start.checked_add(1 + len)?;
    if body_end > raw.len() {
        return None;
    }
    let body = &raw[body_start..body_end];
    if crc32(body) != crc {
        return None;
    }
    let stream = stream_from_byte(body[0]);
    let rec = LogRecord::decode_all(&body[1..]).ok()?;
    Some((stream, rec, body_end))
}

/// Reads the durable prefix of the log file at `path`.
pub fn scan(path: impl AsRef<Path>) -> Result<Vec<(Lsn, StreamId, LogRecord)>> {
    Ok(scan_classified(path)?.records)
}

/// Reads the durable prefix and classifies whatever stopped the scan:
/// a clean end-of-file, the torn tail of an interrupted append, or —
/// the alarming case — a damaged frame with valid frames *after* it,
/// meaning once-durable data is being discarded by prefix truncation.
pub fn scan_classified(path: impl AsRef<Path>) -> Result<ScanReport> {
    let mut raw = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut raw)?;
    let mut records = Vec::new();
    let mut off = 0usize;
    while let Some((stream, rec, next)) = try_frame(&raw, off) {
        records.push((Lsn(off as u64), stream, rec));
        off = next;
    }
    if off == raw.len() {
        return Ok(ScanReport {
            records,
            tail: TailState::Clean,
        });
    }
    // The scan stopped before end-of-file. A pure torn tail has nothing
    // parseable after the stopping point; if any later offset yields a
    // valid frame, the damage sits in front of data that was durable —
    // corruption, not an ordinary crash artifact. The brute-force resync
    // is O(file × frame) but recovery scans are rare and logs small.
    let mut probe = off + 1;
    while probe + HEADER_LEN <= raw.len() {
        if try_frame(&raw, probe).is_some() {
            // Count the surviving chain so the report says how much
            // once-durable data the truncation throws away.
            let mut survivors = 0u32;
            let mut o = probe;
            while let Some((_, _, next)) = try_frame(&raw, o) {
                survivors += 1;
                o = next;
            }
            return Ok(ScanReport {
                records,
                tail: TailState::CorruptionBeforeTail {
                    valid_frames_after: survivors,
                },
            });
        }
        probe += 1;
    }
    Ok(ScanReport {
        records,
        tail: TailState::TornTail,
    })
}

impl FileLog {
    /// Writes the frame and updates logical stats; the physical flush (if
    /// any) is the caller's job.
    fn write_frame(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let payload = record.encode_to_bytes();
        let mut body = Vec::with_capacity(1 + payload.len());
        body.extend_from_slice(&stream_to_byte(stream));
        body.extend_from_slice(&payload);
        let crc = crc32(&body);

        let lsn = Lsn(self.next_offset);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.next_offset += (HEADER_LEN + payload.len()) as u64;

        self.stats.writes += 1;
        self.stats.bytes += payload.len() as u64;
        if durability.is_forced() {
            self.stats.forced_writes += 1;
            self.pending_forces += 1;
        }
        self.cache.push((lsn, stream, record));
        Ok(lsn)
    }
}

impl LogManager for FileLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let lsn = self.write_frame(stream, record, durability)?;
        if durability.is_forced() {
            self.stats.physical_flushes += 1;
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
            self.pending_forces = 0;
        }
        Ok(lsn)
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        // Forced durability is still recorded as a logical force; the
        // group-commit layer owns the single physical `sync_data` that
        // covers the batch (`flush_batch`).
        self.write_frame(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        self.stats.physical_flushes += 1;
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.pending_forces = 0;
        Ok(())
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        // Borrow the cache instead of deep-cloning the whole history on
        // every summary or invariant check; callers that need ownership
        // pay for the copy explicitly via `into_owned`.
        Cow::Borrowed(&self.cache)
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        // What is on disk right now (buffered writes not yet flushed are
        // not durable). Errors degrade to "nothing durable" which is the
        // conservative answer for recovery tests.
        scan(&self.path).unwrap_or_default()
    }

    fn stats(&self) -> LogStats {
        self.stats
    }

    fn pending_forces(&self) -> u64 {
        self.pending_forces
    }

    fn crash_discard(&mut self) {
        // A dropped `BufWriter` flushes its buffer, which would let
        // non-forced records survive a "crash". Swap in a fresh writer and
        // dismantle the old one without flushing, then resync in-memory
        // state to what is actually on disk.
        let Ok(file) = OpenOptions::new().write(true).open(&self.path) else {
            return;
        };
        let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
        drop(old.into_parts()); // buffered bytes are discarded, not flushed
        let durable = scan(&self.path).unwrap_or_default();
        self.next_offset = durable
            .last()
            .map(|(lsn, _, rec)| lsn.0 + frame_len(rec) as u64)
            .unwrap_or(0);
        let _ = self.writer.get_mut().set_len(self.next_offset);
        let _ = self.writer.seek(SeekFrom::Start(self.next_offset));
        self.cache = durable;
        self.pending_forces = 0;
    }
}

impl std::fmt::Debug for FileLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileLog")
            .field("path", &self.path)
            .field("next_offset", &self.next_offset)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, TxnId};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tpc-wal-test-{}-{name}.log", std::process::id()));
        p
    }

    fn end(n: u64) -> LogRecord {
        LogRecord::End {
            txn: TxnId::new(NodeId(0), n),
        }
    }

    #[test]
    fn append_force_reopen_scan() {
        let path = tmp("basic");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Rm(2), end(2), Durability::Forced)
                .unwrap();
        }
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].1, StreamId::Tm);
        assert_eq!(recovered[1].1, StreamId::Rm(2));
        assert_eq!(recovered[1].2.txn().seq, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let path = tmp("unflushed");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        // Still sitting in the BufWriter.
        assert_eq!(log.durable_records().len(), 0);
        log.flush().unwrap();
        assert_eq!(log.durable_records().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_on_open() {
        let path = tmp("torn");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Tm, end(2), Durability::Forced)
                .unwrap();
        }
        // Corrupt the second frame's payload byte.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let reopened = FileLog::open(&path).unwrap();
        assert_eq!(reopened.records().len(), 1);
        assert_eq!(reopened.records()[0].2.txn().seq, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_is_tolerated() {
        let path = tmp("shorthdr");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0x12, 0x34]); // partial next header
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(scan(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_continue_after_recovery_open() {
        let path = tmp("continue");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
        }
        {
            let mut log = FileLog::open(&path).unwrap();
            log.append(StreamId::Tm, end(2), Durability::Forced)
                .unwrap();
        }
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert!(recovered[0].0 < recovered[1].0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_discard_loses_exactly_the_unforced_tail() {
        let path = tmp("crash-discard");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.crash_discard();
        assert_eq!(log.durable_records().len(), 1);
        assert_eq!(log.records().len(), 1, "cache resynced to disk");
        // The log keeps working after the simulated crash.
        log.append(StreamId::Tm, end(3), Durability::Forced)
            .unwrap();
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].2.txn().seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deferred_forces_share_one_physical_flush() {
        let path = tmp("deferred");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..3 {
            log.append_deferred(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        let s = log.stats();
        assert_eq!(s.forced_writes, 3, "logical forces still counted");
        assert_eq!(s.physical_flushes, 0, "no sync until the batch flush");
        assert_eq!(log.durable_records().len(), 0, "nothing durable yet");

        log.flush_batch().unwrap();
        let s = log.stats();
        assert_eq!(s.physical_flushes, 1, "one flush covers the batch");
        assert_eq!(log.durable_records().len(), 3);

        // A crash before the batch flush would have lost all three:
        log.append_deferred(StreamId::Tm, end(9), Durability::Forced)
            .unwrap();
        log.crash_discard();
        assert_eq!(log.durable_records().len(), 3, "suspended force lost");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_and_prior_corruption_are_distinguished() {
        // Case 1: a genuinely torn tail (partial last frame).
        let path = tmp("classify-torn");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Tm, end(2), Durability::Forced)
                .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let report = scan_classified(&path).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.tail, TailState::TornTail);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.recovered_tail(), TailState::TornTail);

        // Case 2: same file, but the damage hits frame 1 of 3 while
        // frames 2 and 3 stay intact — corruption before the tail.
        let path2 = tmp("classify-corrupt");
        {
            let mut log = FileLog::create(&path2).unwrap();
            for i in 1..=3 {
                log.append(StreamId::Tm, end(i), Durability::Forced)
                    .unwrap();
            }
        }
        let mut raw = std::fs::read(&path2).unwrap();
        let frame = raw.len() / 3;
        raw[frame / 2] ^= 0x40; // flip a bit inside frame 0
        std::fs::write(&path2, &raw).unwrap();
        let report = scan_classified(&path2).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(
            report.tail,
            TailState::CorruptionBeforeTail {
                valid_frames_after: 2
            }
        );
        assert!(report.tail.is_corruption());
        let log = FileLog::open(&path2).unwrap();
        assert!(log.recovered_tail().is_corruption());
        assert_eq!(log.records().len(), 0, "prefix recovery still applies");

        // Case 3: an untouched file is clean.
        let path3 = tmp("classify-clean");
        {
            let mut log = FileLog::create(&path3).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
        }
        assert_eq!(scan_classified(&path3).unwrap().tail, TailState::Clean);
        for p in [&path, &path2, &path3] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn stats_count_forces_and_flushes() {
        let path = tmp("stats");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        let s = log.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.forced_writes, 1);
        assert_eq!(s.physical_flushes, 1);
        std::fs::remove_file(&path).ok();
    }
}
