//! File-backed log with real fsync and torn-tail recovery.
//!
//! Frame format, little-endian:
//!
//! ```text
//! +---------+---------+----------+-------------------+
//! | u32 len | u32 crc | u8 strm  | payload (len)     |
//! +---------+---------+----------+-------------------+
//! ```
//!
//! `crc` covers the stream byte plus the payload. The recovery scan stops
//! at the first short, zeroed or corrupt frame, treating everything before
//! it as the durable prefix — the standard WAL torn-write discipline.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tpc_common::wire::{crc32, Decode, Encode};
use tpc_common::{Lsn, Result};

use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

const HEADER_LEN: usize = 4 + 4 + 1;

fn stream_to_byte(s: StreamId) -> [u8; 1] {
    match s {
        StreamId::Tm => [0xFF],
        StreamId::Rm(i) => {
            debug_assert!(i < 0xFF, "RM ids above 254 unsupported in file frames");
            [i as u8]
        }
    }
}

fn stream_from_byte(b: u8) -> StreamId {
    if b == 0xFF {
        StreamId::Tm
    } else {
        StreamId::Rm(b as u16)
    }
}

/// An append-only log file.
pub struct FileLog {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Byte offset of the next frame == LSN of the next record.
    next_offset: u64,
    /// In-memory copy of appended records for `records()`; the durable
    /// view re-reads the file.
    cache: Vec<(Lsn, StreamId, LogRecord)>,
    stats: LogStats,
}

impl FileLog {
    /// Creates (truncating) a new log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileLog {
            path,
            writer: BufWriter::new(file),
            next_offset: 0,
            cache: Vec::new(),
            stats: LogStats::default(),
        })
    }

    /// Opens an existing log file, scanning the durable prefix and
    /// positioning new appends after the last valid frame (discarding any
    /// torn tail).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let recovered = scan(&path)?;
        let next_offset = recovered
            .last()
            .map(|(lsn, _, rec)| lsn.0 + frame_len(rec) as u64)
            .unwrap_or(0);
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(next_offset)?; // drop torn tail
        file.seek(SeekFrom::Start(next_offset))?;
        Ok(FileLog {
            path,
            writer: BufWriter::new(file),
            next_offset,
            cache: recovered,
            stats: LogStats::default(),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn frame_len(record: &LogRecord) -> usize {
    HEADER_LEN + record.encode_to_bytes().len()
}

/// Reads the durable prefix of the log file at `path`.
pub fn scan(path: impl AsRef<Path>) -> Result<Vec<(Lsn, StreamId, LogRecord)>> {
    let mut raw = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut raw)?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + HEADER_LEN <= raw.len() {
        let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
        let body_start = off + 8;
        let body_end = body_start + 1 + len;
        if body_end > raw.len() {
            break; // torn tail
        }
        let body = &raw[body_start..body_end];
        if crc32(body) != crc {
            break; // corrupt frame: stop, everything after is suspect
        }
        let stream = stream_from_byte(body[0]);
        match LogRecord::decode_all(&body[1..]) {
            Ok(rec) => {
                out.push((Lsn(off as u64), stream, rec));
                off = body_end;
            }
            Err(_) => break,
        }
    }
    Ok(out)
}

impl FileLog {
    /// Writes the frame and updates logical stats; the physical flush (if
    /// any) is the caller's job.
    fn write_frame(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let payload = record.encode_to_bytes();
        let mut body = Vec::with_capacity(1 + payload.len());
        body.extend_from_slice(&stream_to_byte(stream));
        body.extend_from_slice(&payload);
        let crc = crc32(&body);

        let lsn = Lsn(self.next_offset);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.next_offset += (HEADER_LEN + payload.len()) as u64;

        self.stats.writes += 1;
        self.stats.bytes += payload.len() as u64;
        if durability.is_forced() {
            self.stats.forced_writes += 1;
        }
        self.cache.push((lsn, stream, record));
        Ok(lsn)
    }
}

impl LogManager for FileLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        let lsn = self.write_frame(stream, record, durability)?;
        if durability.is_forced() {
            self.stats.physical_flushes += 1;
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
        }
        Ok(lsn)
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        // Forced durability is still recorded as a logical force; the
        // group-commit layer owns the single physical `sync_data` that
        // covers the batch (`flush_batch`).
        self.write_frame(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        self.stats.physical_flushes += 1;
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    fn records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        self.cache.clone()
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        // What is on disk right now (buffered writes not yet flushed are
        // not durable). Errors degrade to "nothing durable" which is the
        // conservative answer for recovery tests.
        scan(&self.path).unwrap_or_default()
    }

    fn stats(&self) -> LogStats {
        self.stats
    }

    fn crash_discard(&mut self) {
        // A dropped `BufWriter` flushes its buffer, which would let
        // non-forced records survive a "crash". Swap in a fresh writer and
        // dismantle the old one without flushing, then resync in-memory
        // state to what is actually on disk.
        let Ok(file) = OpenOptions::new().write(true).open(&self.path) else {
            return;
        };
        let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
        drop(old.into_parts()); // buffered bytes are discarded, not flushed
        let durable = scan(&self.path).unwrap_or_default();
        self.next_offset = durable
            .last()
            .map(|(lsn, _, rec)| lsn.0 + frame_len(rec) as u64)
            .unwrap_or(0);
        let _ = self.writer.get_mut().set_len(self.next_offset);
        let _ = self.writer.seek(SeekFrom::Start(self.next_offset));
        self.cache = durable;
    }
}

impl std::fmt::Debug for FileLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileLog")
            .field("path", &self.path)
            .field("next_offset", &self.next_offset)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, TxnId};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tpc-wal-test-{}-{name}.log", std::process::id()));
        p
    }

    fn end(n: u64) -> LogRecord {
        LogRecord::End {
            txn: TxnId::new(NodeId(0), n),
        }
    }

    #[test]
    fn append_force_reopen_scan() {
        let path = tmp("basic");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Rm(2), end(2), Durability::Forced)
                .unwrap();
        }
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].1, StreamId::Tm);
        assert_eq!(recovered[1].1, StreamId::Rm(2));
        assert_eq!(recovered[1].2.txn().seq, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let path = tmp("unflushed");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        // Still sitting in the BufWriter.
        assert_eq!(log.durable_records().len(), 0);
        log.flush().unwrap();
        assert_eq!(log.durable_records().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_on_open() {
        let path = tmp("torn");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
            log.append(StreamId::Tm, end(2), Durability::Forced)
                .unwrap();
        }
        // Corrupt the second frame's payload byte.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let reopened = FileLog::open(&path).unwrap();
        assert_eq!(reopened.records().len(), 1);
        assert_eq!(reopened.records()[0].2.txn().seq, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_is_tolerated() {
        let path = tmp("shorthdr");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0x12, 0x34]); // partial next header
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(scan(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_continue_after_recovery_open() {
        let path = tmp("continue");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(StreamId::Tm, end(1), Durability::Forced)
                .unwrap();
        }
        {
            let mut log = FileLog::open(&path).unwrap();
            log.append(StreamId::Tm, end(2), Durability::Forced)
                .unwrap();
        }
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert!(recovered[0].0 < recovered[1].0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_discard_loses_exactly_the_unforced_tail() {
        let path = tmp("crash-discard");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::NonForced)
            .unwrap();
        log.crash_discard();
        assert_eq!(log.durable_records().len(), 1);
        assert_eq!(log.records().len(), 1, "cache resynced to disk");
        // The log keeps working after the simulated crash.
        log.append(StreamId::Tm, end(3), Durability::Forced)
            .unwrap();
        let recovered = scan(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].2.txn().seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deferred_forces_share_one_physical_flush() {
        let path = tmp("deferred");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..3 {
            log.append_deferred(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        let s = log.stats();
        assert_eq!(s.forced_writes, 3, "logical forces still counted");
        assert_eq!(s.physical_flushes, 0, "no sync until the batch flush");
        assert_eq!(log.durable_records().len(), 0, "nothing durable yet");

        log.flush_batch().unwrap();
        let s = log.stats();
        assert_eq!(s.physical_flushes, 1, "one flush covers the batch");
        assert_eq!(log.durable_records().len(), 3);

        // A crash before the batch flush would have lost all three:
        log.append_deferred(StreamId::Tm, end(9), Durability::Forced)
            .unwrap();
        log.crash_discard();
        assert_eq!(log.durable_records().len(), 3, "suspended force lost");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_forces_and_flushes() {
        let path = tmp("stats");
        let mut log = FileLog::create(&path).unwrap();
        log.append(StreamId::Tm, end(1), Durability::NonForced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        let s = log.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.forced_writes, 1);
        assert_eq!(s.physical_flushes, 1);
        std::fs::remove_file(&path).ok();
    }
}
