//! # tpc-wal
//!
//! Write-ahead logging substrate for the twopc workspace.
//!
//! The paper's cost metric is the *number of log writes, forced and
//! non-forced* (§2, "Logging"). This crate supplies:
//!
//! * [`record::LogRecord`] — every record type the protocols of §2–§4 write
//!   (commit-pending, prepared, committed, heuristic, END, plus resource-
//!   manager undo/redo records), with a checksummed binary encoding;
//! * [`log::LogManager`] — the force/non-force append interface, with
//!   precise [`log::LogStats`] counters;
//! * [`mem::MemLog`] — the simulator's log: non-forced records live in a
//!   volatile tail that a simulated crash destroys, exactly matching the
//!   paper's definition ("non-forced log writes ... are not guaranteed to
//!   survive a system failure");
//! * [`file::FileLog`] — a real on-disk log with fsync and a recovery scan
//!   that tolerates (and classifies) a torn tail;
//! * [`segment::SegmentedLog`] — the same frame format over preallocated,
//!   rotating fixed-size segments: steady-state appends never extend a
//!   file (so `sync_data` skips metadata flushes) and fully-ended sealed
//!   segments are reclaimed;
//! * [`faults::FaultyLog`] — seeded storage-fault injection over any
//!   backend: fsync failures, ENOSPC, torn writes, bit rot, sync latency;
//! * [`group::GroupCommitter`] — the §4 *Group Commits* batching policy as
//!   a pure, clock-driven state machine the simulator and the live runtime
//!   both drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod file;
pub mod group;
pub mod log;
pub mod mem;
pub mod record;
pub mod segment;
pub mod shared;

pub use faults::{FaultyLog, StorageFaultPlan, StorageFaultStats};
pub use file::{ScanReport, TailState};
pub use group::{FlushDecision, GroupCommitter, GroupStats};
pub use log::{Durability, LogManager, LogStats, StreamId};
pub use mem::MemLog;
pub use record::LogRecord;
pub use segment::{SegmentStats, SegmentedLog, DEFAULT_SEGMENT_BYTES};
pub use shared::SharedLog;
