//! Seeded storage-fault injection for any [`LogManager`].
//!
//! The wire already has [`FaultPlan`-style] chaos; this module gives the
//! *log device* the same treatment. [`FaultyLog`] wraps a backend
//! (memory or file) and subjects it to the failure modes real disks
//! exhibit: fsync calls that fail transiently or permanently, writes
//! rejected for lack of space, synthetic fsync latency, and — for
//! file-backed logs — torn writes and bit rot that only surface when the
//! next recovery scan reads the image back.
//!
//! All randomness comes from the plan's seed, so a failing chaos run
//! reproduces exactly. Crucially, an *injected* failure is
//! indistinguishable from a real one at the [`LogManager`] interface:
//! the append or flush returns `Err`, the record's durability is NOT
//! guaranteed, and it is the host's `IoErrorPolicy` that decides whether
//! the node fail-stops or degrades to read-only.
//!
//! [`FaultPlan`-style]: https://en.wikipedia.org/wiki/Fault_injection

use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tpc_common::{Error, Lsn, Result};

use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

/// What a [`FaultyLog`] does to the device, with which probabilities and
/// thresholds. `clean(seed)` injects nothing; build up from there.
#[derive(Clone, Debug)]
pub struct StorageFaultPlan {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Probability any one physical sync fails (transient: a retry may
    /// succeed, drawn independently).
    pub fsync_fail_rate: f64,
    /// After this many *successful* physical syncs, every subsequent sync
    /// fails permanently (the device is gone for good).
    pub fail_fsync_after: Option<u64>,
    /// Appends fail with a synthetic ENOSPC once the backend holds this
    /// many payload bytes.
    pub enospc_after_bytes: Option<u64>,
    /// Injected latency per successful physical sync, in microseconds
    /// (models a congested or failing device that still acknowledges).
    pub fsync_delay_us: u64,
    /// On crash, the durable image is torn at this byte offset: whatever
    /// follows is cut mid-frame, exactly what an interrupted sector write
    /// leaves behind. File-backed logs only (a memory log's crash already
    /// discards its volatile tail).
    pub torn_write_at: Option<u64>,
    /// On crash, flip bit `1 << bit` of the byte at this offset in the
    /// durable image — bit rot inside a committed frame, which recovery
    /// must detect as corruption *before* the tail. File-backed only.
    pub flip_bit_at: Option<(u64, u8)>,
}

impl StorageFaultPlan {
    /// A plan that injects nothing (useful as a base to build on).
    pub fn clean(seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            fsync_fail_rate: 0.0,
            fail_fsync_after: None,
            enospc_after_bytes: None,
            fsync_delay_us: 0,
            torn_write_at: None,
            flip_bit_at: None,
        }
    }

    /// Sets the transient fsync failure probability.
    pub fn with_fsync_failures(mut self, rate: f64) -> Self {
        self.fsync_fail_rate = rate;
        self
    }

    /// Fails every sync permanently after `n` successful ones.
    pub fn with_permanent_fsync_failure_after(mut self, n: u64) -> Self {
        self.fail_fsync_after = Some(n);
        self
    }

    /// Rejects appends with a synthetic ENOSPC once `bytes` payload bytes
    /// are held.
    pub fn with_enospc_after(mut self, bytes: u64) -> Self {
        self.enospc_after_bytes = Some(bytes);
        self
    }

    /// Adds `us` microseconds of latency to every successful sync.
    pub fn with_fsync_delay_us(mut self, us: u64) -> Self {
        self.fsync_delay_us = us;
        self
    }

    /// Tears the durable image at byte `offset` when the node crashes.
    pub fn with_torn_write_at(mut self, offset: u64) -> Self {
        self.torn_write_at = Some(offset);
        self
    }

    /// Flips bit `bit` of the byte at `offset` in the durable image when
    /// the node crashes.
    pub fn with_bit_flip_at(mut self, offset: u64, bit: u8) -> Self {
        self.flip_bit_at = Some((offset, bit % 8));
        self
    }
}

/// Counters a [`FaultyLog`] keeps; shared with the harness via
/// [`FaultyLog::stats`] so assertions can confirm faults actually fired.
#[derive(Debug, Default)]
pub struct StorageFaultStats {
    /// Physical syncs that went through (after any injected delay).
    pub syncs_ok: AtomicU64,
    /// Syncs failed by injection (transient + permanent).
    pub fsync_failures: AtomicU64,
    /// Appends rejected by the synthetic ENOSPC.
    pub enospc_failures: AtomicU64,
    /// Torn writes applied to the durable image at crash.
    pub torn_writes: AtomicU64,
    /// Bit flips applied to the durable image at crash.
    pub bit_flips: AtomicU64,
    /// Total injected sync latency, in microseconds.
    pub delay_us: AtomicU64,
}

impl StorageFaultStats {
    /// Total injected I/O failures (fsync + ENOSPC).
    pub fn failures(&self) -> u64 {
        self.fsync_failures.load(Ordering::Relaxed) + self.enospc_failures.load(Ordering::Relaxed)
    }
}

/// A [`LogManager`] wrapper injecting seeded storage faults.
///
/// Forced appends are split into "write the frame" plus "sync it", so an
/// injected sync failure leaves the record buffered (not durable) and a
/// later successful [`FaultyLog::flush`] — the host's retry path — makes
/// it stable, exactly like a real fsync-retry sequence.
pub struct FaultyLog {
    inner: Box<dyn LogManager + Send>,
    plan: StorageFaultPlan,
    rng: u64,
    /// Successful physical syncs so far (the permanent-failure clock).
    syncs_ok: u64,
    stats: Arc<StorageFaultStats>,
    /// Backing file for crash-time image faults (torn write, bit flip);
    /// `None` for memory backends, which skip those fault kinds.
    path: Option<PathBuf>,
    /// Image faults fire once, even if several lanes crash-discard the
    /// same shared log.
    torn_applied: bool,
    flip_applied: bool,
}

impl FaultyLog {
    /// Wraps `inner` under `plan`. Crash-time image faults (torn write,
    /// bit flip) need the backing file path — see [`FaultyLog::with_path`].
    pub fn new(inner: Box<dyn LogManager + Send>, plan: StorageFaultPlan) -> Self {
        // Splash the seed so seed=0 and seed=1 diverge immediately.
        let rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        FaultyLog {
            inner,
            plan,
            rng,
            syncs_ok: 0,
            stats: Arc::new(StorageFaultStats::default()),
            path: None,
            torn_applied: false,
            flip_applied: false,
        }
    }

    /// Tells the wrapper where the durable image lives, enabling the
    /// crash-time faults (torn write at a byte, bit flip).
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Handle to the fault counters (clone before moving the log into a
    /// worker thread).
    pub fn fault_stats(&self) -> Arc<StorageFaultStats> {
        Arc::clone(&self.stats)
    }

    /// Next uniform sample in `[0, 1)` (Knuth's MMIX LCG).
    fn roll(&mut self) -> f64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One physical sync under the plan: permanent failure past the
    /// threshold, transient failure by probability, injected latency on
    /// success.
    fn faulty_sync(&mut self) -> Result<()> {
        if self
            .plan
            .fail_fsync_after
            .is_some_and(|n| self.syncs_ok >= n)
        {
            self.stats.fsync_failures.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Io(std::io::Error::other(
                "injected fsync failure (permanent)",
            )));
        }
        if self.plan.fsync_fail_rate > 0.0 && self.roll() < self.plan.fsync_fail_rate {
            self.stats.fsync_failures.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Io(std::io::Error::other(
                "injected fsync failure (transient)",
            )));
        }
        if self.plan.fsync_delay_us > 0 {
            self.stats
                .delay_us
                .fetch_add(self.plan.fsync_delay_us, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(self.plan.fsync_delay_us));
        }
        self.inner.flush_batch()?;
        self.syncs_ok += 1;
        self.stats.syncs_ok.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The synthetic ENOSPC gate, checked before a frame is written.
    fn check_space(&self) -> Result<()> {
        if self
            .plan
            .enospc_after_bytes
            .is_some_and(|cap| self.inner.stats().bytes >= cap)
        {
            self.stats.enospc_failures.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Io(std::io::Error::other(
                "injected ENOSPC: log device full",
            )));
        }
        Ok(())
    }

    /// Applies the crash-time image faults to the durable file (one-shot
    /// each): tear the image at the chosen byte, flip the chosen bit.
    fn damage_image(&mut self) {
        let Some(path) = self.path.clone() else {
            return;
        };
        if let Some(at) = self.plan.torn_write_at {
            if !self.torn_applied {
                if let Ok(meta) = std::fs::metadata(&path) {
                    if meta.len() > at {
                        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
                            if f.set_len(at).is_ok() {
                                self.torn_applied = true;
                                self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        }
        if let Some((at, bit)) = self.plan.flip_bit_at {
            if !self.flip_applied {
                if let Ok(mut raw) = std::fs::read(&path) {
                    if let Some(byte) = raw.get_mut(at as usize) {
                        *byte ^= 1 << (bit % 8);
                        if std::fs::write(&path, &raw).is_ok() {
                            self.flip_applied = true;
                            self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }
}

impl LogManager for FaultyLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        self.check_space()?;
        if durability.is_forced() {
            // Write, then sync under the plan: a failed sync leaves the
            // record buffered so the host's flush retry can still land it.
            let lsn = self.inner.append_deferred(stream, record, durability)?;
            self.faulty_sync()?;
            Ok(lsn)
        } else {
            self.inner.append(stream, record, durability)
        }
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        self.check_space()?;
        self.inner.append_deferred(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        self.faulty_sync()
    }

    fn flush_batch(&mut self) -> Result<()> {
        self.faulty_sync()
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        self.inner.records()
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        self.inner.durable_records()
    }

    fn stats(&self) -> LogStats {
        self.inner.stats()
    }

    fn pending_forces(&self) -> u64 {
        self.inner.pending_forces()
    }

    fn crash_discard(&mut self) {
        self.inner.crash_discard();
        self.damage_image();
    }
}

impl std::fmt::Debug for FaultyLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyLog")
            .field("plan", &self.plan)
            .field("syncs_ok", &self.syncs_ok)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileLog;
    use crate::mem::MemLog;
    use tpc_common::{NodeId, TxnId};

    fn end(n: u64) -> LogRecord {
        LogRecord::End {
            txn: TxnId::new(NodeId(0), n),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tpc-wal-fault-{}-{name}.log", std::process::id()))
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let mut log = FaultyLog::new(Box::new(MemLog::new()), StorageFaultPlan::clean(7));
        for i in 0..5 {
            log.append(StreamId::Tm, end(i), Durability::Forced)
                .unwrap();
        }
        assert_eq!(log.durable_records().len(), 5);
        assert_eq!(log.stats().forced_writes, 5);
        assert_eq!(log.stats().physical_flushes, 5);
        assert_eq!(log.stats().writes, 5);
    }

    #[test]
    fn permanent_fsync_failure_strands_the_record_until_never() {
        let plan = StorageFaultPlan::clean(1).with_permanent_fsync_failure_after(1);
        let mut log = FaultyLog::new(Box::new(MemLog::new()), plan);
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        // Second force: the write lands but the sync fails, forever.
        assert!(log
            .append(StreamId::Tm, end(2), Durability::Forced)
            .is_err());
        assert!(log.flush().is_err(), "retries fail too");
        assert_eq!(log.durable_records().len(), 1, "record 2 never durable");
        assert!(log.stats().forced_writes >= 2, "the logical force happened");
        assert_eq!(log.stats().physical_flushes, 1);
    }

    #[test]
    fn transient_fsync_failure_recovers_on_retry() {
        // rate=1.0 would fail every retry; use the permanent knob off and
        // a seed-dependent single failure via a high-but-not-certain rate
        // is flaky, so drive the retry contract directly: fail once by
        // plan, then flip the plan off and flush.
        let plan = StorageFaultPlan::clean(3).with_fsync_failures(1.0);
        let mut log = FaultyLog::new(Box::new(MemLog::new()), plan);
        assert!(log
            .append(StreamId::Tm, end(1), Durability::Forced)
            .is_err());
        assert_eq!(log.durable_records().len(), 0);
        log.plan.fsync_fail_rate = 0.0; // the device comes back
        log.flush().expect("retry lands the buffered record");
        assert_eq!(log.durable_records().len(), 1);
        assert_eq!(log.stats().writes, 1, "no duplicate append on retry");
    }

    #[test]
    fn enospc_rejects_appends_past_the_cap() {
        let plan = StorageFaultPlan::clean(5).with_enospc_after(1);
        let mut log = FaultyLog::new(Box::new(MemLog::new()), plan);
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        let err = log
            .append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(log.stats().writes, 1, "rejected append never written");
        assert_eq!(log.fault_stats().enospc_failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn same_seed_same_failure_pattern() {
        let observe = |seed| {
            let plan = StorageFaultPlan::clean(seed).with_fsync_failures(0.4);
            let mut log = FaultyLog::new(Box::new(MemLog::new()), plan);
            (0..30)
                .map(|i| log.append(StreamId::Tm, end(i), Durability::Forced).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43), "different seeds should diverge");
    }

    #[test]
    fn torn_write_at_crash_cuts_the_image_mid_frame() {
        let path = tmp("torn");
        let file = FileLog::create(&path).unwrap();
        let plan = StorageFaultPlan::clean(9).with_torn_write_at(5);
        let mut log = FaultyLog::new(Box::new(file), plan).with_path(&path);
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        log.crash_discard();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5, "image torn");
        assert_eq!(log.stats.torn_writes.load(Ordering::Relaxed), 1);
        // Recovery sees a torn tail: the 5 leftover bytes are a partial
        // frame, not corruption in front of valid data.
        let report = crate::file::scan_classified(&path).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.tail, crate::file::TailState::TornTail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_at_crash_corrupts_a_committed_frame() {
        let path = tmp("flip");
        let file = FileLog::create(&path).unwrap();
        // Flip a payload bit inside frame 0 (offset 12 is past the 9-byte
        // header) so frame 1 survives *after* the damage.
        let plan = StorageFaultPlan::clean(11).with_bit_flip_at(12, 3);
        let mut log = FaultyLog::new(Box::new(file), plan).with_path(&path);
        log.append(StreamId::Tm, end(1), Durability::Forced)
            .unwrap();
        log.append(StreamId::Tm, end(2), Durability::Forced)
            .unwrap();
        log.crash_discard();
        let report = crate::file::scan_classified(&path).unwrap();
        assert_eq!(report.records.len(), 0, "nothing before the damage");
        assert_eq!(
            report.tail,
            crate::file::TailState::CorruptionBeforeTail {
                valid_frames_after: 1
            }
        );
        std::fs::remove_file(&path).ok();
    }
}
