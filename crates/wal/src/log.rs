//! The log-manager interface and its statistics.

use std::borrow::Cow;

use tpc_common::{Lsn, Result};

use crate::record::LogRecord;

/// Whether an append must reach stable storage before the caller proceeds.
///
/// During forced writes "the 2PC operation is suspended; the TM does
/// nothing until the record is guaranteed to be in stable storage" (§2).
/// Non-forced writes ride along with the next force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Durability {
    /// Suspend until the record (and all earlier records) are stable.
    Forced,
    /// Buffered; becomes stable with the next force or log-manager event.
    NonForced,
}

impl Durability {
    /// True for [`Durability::Forced`].
    #[inline]
    pub fn is_forced(self) -> bool {
        matches!(self, Durability::Forced)
    }
}

/// Identifies which component wrote a record into a (possibly shared) log.
///
/// Under the *Sharing the Log* optimization (§4) a node's TM and its LRMs
/// append into one physical log; the stream id keeps their histories
/// separable for recovery and for per-component statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// The node's transaction manager.
    Tm,
    /// A local resource manager, by id.
    Rm(u16),
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamId::Tm => f.write_str("TM"),
            StreamId::Rm(i) => write!(f, "RM{i}"),
        }
    }
}

/// Counters matching the paper's cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Total records appended (forced + non-forced).
    pub writes: u64,
    /// Appends that requested `Durability::Forced`.
    pub forced_writes: u64,
    /// Physical device flushes actually performed. Equal to
    /// `forced_writes` without group commit; smaller with it.
    pub physical_flushes: u64,
    /// Total encoded bytes appended.
    pub bytes: u64,
}

impl LogStats {
    /// Non-forced write count.
    pub fn unforced_writes(&self) -> u64 {
        self.writes - self.forced_writes
    }

    /// Difference between another (later) snapshot and this one.
    pub fn delta(&self, later: &LogStats) -> LogStats {
        LogStats {
            writes: later.writes - self.writes,
            forced_writes: later.forced_writes - self.forced_writes,
            physical_flushes: later.physical_flushes - self.physical_flushes,
            bytes: later.bytes - self.bytes,
        }
    }
}

/// A write-ahead log.
///
/// Implementations must preserve append order per log and guarantee that a
/// forced append makes *all* earlier appends stable too (the standard WAL
/// contract the *Sharing the Log* optimization exploits).
pub trait LogManager {
    /// Appends a record; returns its LSN.
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn>;

    /// Forces everything appended so far to stable storage.
    fn flush(&mut self) -> Result<()>;

    /// Appends a record *without* performing the physical flush even when
    /// `durability` is [`Durability::Forced`] — the group-commit layer
    /// takes over flush scheduling and will call
    /// [`LogManager::flush_batch`] once on behalf of the whole batch.
    /// Forced appends still count toward `forced_writes` (the logical
    /// cost the paper tabulates) but not `physical_flushes`.
    ///
    /// The default forwards to [`LogManager::append`], i.e. one physical
    /// flush per force — correct for hosts that never batch.
    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        self.append(stream, record, durability)
    }

    /// Performs one physical flush covering every deferred force
    /// submitted since the last flush (the group-commit amortized
    /// `sync_data`). Counts exactly one physical flush.
    ///
    /// The default forwards to [`LogManager::flush`].
    fn flush_batch(&mut self) -> Result<()> {
        self.flush()
    }

    /// All records currently readable (durable and volatile), in order.
    /// Used by tests and by live (non-crash) inspection.
    ///
    /// Returns a [`Cow`] so backends that keep an in-memory cache (the
    /// file and segmented logs) can lend a borrow instead of deep-cloning
    /// the whole history per call; backends that must assemble the view
    /// (the memory log's durable+volatile chain, the mutex-guarded shared
    /// log) return an owned copy.
    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]>;

    /// The records that would survive a crash right now, in order.
    /// This is the input to recovery.
    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)>;

    /// Cumulative statistics.
    fn stats(&self) -> LogStats;

    /// Force-queue depth: logically forced appends not yet covered by a
    /// physical flush (the records group commit is holding hostage).
    /// Saturation telemetry — a gauge, not a counter. The default returns
    /// zero for backends that flush every force inline.
    fn pending_forces(&self) -> u64 {
        0
    }

    /// Models a crash at this instant: buffered (non-durable) appends are
    /// discarded instead of reaching stable storage. Implementations whose
    /// teardown would otherwise flush the buffer (e.g. a buffered file
    /// writer flushing on drop) must override this so that a killed node
    /// loses exactly what a real power failure would lose. The default is
    /// a no-op for logs with no such teardown flush.
    fn crash_discard(&mut self) {}
}

impl<L: LogManager + ?Sized> LogManager for Box<L> {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        (**self).append(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        (**self).append_deferred(stream, record, durability)
    }

    fn flush_batch(&mut self) -> Result<()> {
        (**self).flush_batch()
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        (**self).records()
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        (**self).durable_records()
    }

    fn stats(&self) -> LogStats {
        (**self).stats()
    }

    fn pending_forces(&self) -> u64 {
        (**self).pending_forces()
    }

    fn crash_discard(&mut self) {
        (**self).crash_discard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_predicate() {
        assert!(Durability::Forced.is_forced());
        assert!(!Durability::NonForced.is_forced());
    }

    #[test]
    fn stats_delta_and_unforced() {
        let early = LogStats {
            writes: 10,
            forced_writes: 4,
            physical_flushes: 3,
            bytes: 100,
        };
        let later = LogStats {
            writes: 15,
            forced_writes: 6,
            physical_flushes: 4,
            bytes: 180,
        };
        let d = early.delta(&later);
        assert_eq!(d.writes, 5);
        assert_eq!(d.forced_writes, 2);
        assert_eq!(d.physical_flushes, 1);
        assert_eq!(d.bytes, 80);
        assert_eq!(d.unforced_writes(), 3);
    }

    #[test]
    fn stream_display() {
        assert_eq!(StreamId::Tm.to_string(), "TM");
        assert_eq!(StreamId::Rm(3).to_string(), "RM3");
    }
}
