//! A cloneable handle letting several coordinator lanes append to one
//! physical log.
//!
//! The paper's §4 *Sharing the Log* is about TM and RM sharing a log;
//! this module is about *lanes* sharing one: a multi-lane node runs M
//! `Driver` hosts, but the node still owns exactly one durable TM log
//! (and one RM log). [`SharedLog`] wraps any [`LogManager`] in
//! `Arc<Mutex<…>>` and implements [`LogManager`] itself, so each lane
//! holds what looks like its own log while every append and flush lands
//! in the single shared stream — preserving the node-level force/flush
//! accounting the benchmarks compare against the simulator.
//!
//! The mutex is held only for the duration of one log call; lanes never
//! block each other across an fsync *decision* (group commit), only
//! across the physical operation itself, which is the point of a shared
//! device.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

use tpc_common::{Lsn, Result};

use crate::log::{Durability, LogManager, LogStats, StreamId};
use crate::record::LogRecord;

/// A cloneable, thread-safe [`LogManager`] wrapper: all clones append to
/// the same underlying log.
#[derive(Clone)]
pub struct SharedLog {
    inner: Arc<Mutex<Box<dyn LogManager + Send>>>,
}

impl std::fmt::Debug for SharedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedLog")
    }
}

impl SharedLog {
    /// Wraps `log` for sharing across lanes.
    pub fn new(log: Box<dyn LogManager + Send>) -> Self {
        SharedLog {
            inner: Arc::new(Mutex::new(log)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn LogManager + Send>> {
        self.inner.lock().expect("shared log poisoned")
    }
}

impl LogManager for SharedLog {
    fn append(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        self.lock().append(stream, record, durability)
    }

    fn append_deferred(
        &mut self,
        stream: StreamId,
        record: LogRecord,
        durability: Durability,
    ) -> Result<Lsn> {
        self.lock().append_deferred(stream, record, durability)
    }

    fn flush(&mut self) -> Result<()> {
        self.lock().flush()
    }

    fn flush_batch(&mut self) -> Result<()> {
        self.lock().flush_batch()
    }

    fn records(&self) -> Cow<'_, [(Lsn, StreamId, LogRecord)]> {
        // The borrow cannot outlive the mutex guard, so the shared view
        // is the one implementation that must own its copy.
        Cow::Owned(self.lock().records().into_owned())
    }

    fn durable_records(&self) -> Vec<(Lsn, StreamId, LogRecord)> {
        self.lock().durable_records()
    }

    fn stats(&self) -> LogStats {
        self.lock().stats()
    }

    fn pending_forces(&self) -> u64 {
        self.lock().pending_forces()
    }

    fn crash_discard(&mut self) {
        self.lock().crash_discard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLog;
    use tpc_common::{NodeId, TxnId};

    #[test]
    fn clones_append_to_one_stream() {
        let log = SharedLog::new(Box::new(MemLog::new()));
        let mut a = log.clone();
        let mut b = log.clone();
        let t = TxnId::new(NodeId(0), 1);
        a.append(
            StreamId::Tm,
            LogRecord::Committed {
                txn: t,
                subordinates: vec![],
            },
            Durability::Forced,
        )
        .unwrap();
        b.append(
            StreamId::Tm,
            LogRecord::End { txn: t },
            Durability::NonForced,
        )
        .unwrap();
        assert_eq!(log.records().len(), 2);
        let stats = a.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.forced_writes, 1);
        // Every clone sees the same stats (one shared device).
        assert_eq!(b.stats(), stats);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let log = SharedLog::new(Box::new(MemLog::new()));
        let mut handles = Vec::new();
        for lane in 0..4u64 {
            let mut l = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let t = TxnId::new(NodeId(0), lane * 100 + i);
                    l.append(
                        StreamId::Tm,
                        LogRecord::Committed {
                            txn: t,
                            subordinates: vec![],
                        },
                        Durability::Forced,
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.stats().writes, 100);
        assert_eq!(log.records().len(), 100);
    }
}
