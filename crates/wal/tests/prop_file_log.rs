//! Property tests for the file-backed log: the recovery scan never
//! panics and always returns a prefix of the appended history, whatever
//! corruption the tail suffers.

use proptest::prelude::*;
use tpc_common::{NodeId, TxnId};
use tpc_wal::file::{scan, FileLog};
use tpc_wal::{Durability, LogManager, LogRecord, StreamId};

fn tmp(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpc-wal-prop-{}-{tag}.log", std::process::id()))
}

proptest! {
    /// Corrupting any suffix of the file leaves a clean prefix: scan
    /// returns the first k records for some k, never garbage and never a
    /// panic.
    #[test]
    fn scan_survives_arbitrary_tail_corruption(
        n_records in 1usize..20,
        cut in 0usize..2000,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        tag in any::<u64>(),
    ) {
        let path = tmp(tag);
        {
            let mut log = FileLog::create(&path).unwrap();
            for i in 0..n_records {
                log.append(
                    StreamId::Tm,
                    LogRecord::Committed {
                        txn: TxnId::new(NodeId(0), i as u64),
                        subordinates: vec![NodeId(1)],
                    },
                    Durability::Forced,
                ).unwrap();
            }
        }
        let original = std::fs::read(&path).unwrap();
        let cut = cut.min(original.len());
        let mut mutated = original[..cut].to_vec();
        mutated.extend_from_slice(&garbage);
        std::fs::write(&path, &mutated).unwrap();

        let recovered = scan(&path).unwrap();
        // Prefix property: recovered records are exactly 0..k in order.
        for (i, (_, stream, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(*stream, StreamId::Tm);
            match rec {
                LogRecord::Committed { txn, .. } => {
                    prop_assert_eq!(txn.seq, i as u64);
                }
                other => prop_assert!(false, "unexpected record {other:?}"),
            }
        }
        prop_assert!(recovered.len() <= n_records);
        // Reopening after corruption keeps working (torn tail truncated).
        {
            let mut log = FileLog::open(&path).unwrap();
            log.append(
                StreamId::Tm,
                LogRecord::End { txn: TxnId::new(NodeId(0), 999) },
                Durability::Forced,
            ).unwrap();
        }
        let after = scan(&path).unwrap();
        prop_assert_eq!(after.len(), recovered.len() + 1);
        std::fs::remove_file(&path).ok();
    }

    /// A single flipped bit anywhere in a record's frame confines the
    /// damage: everything before the flip's frame still scans.
    #[test]
    fn single_bit_flip_is_detected(
        n_records in 2usize..10,
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
        tag in any::<u64>(),
    ) {
        let path = tmp(tag.wrapping_add(1));
        {
            let mut log = FileLog::create(&path).unwrap();
            for i in 0..n_records {
                log.append(
                    StreamId::Tm,
                    LogRecord::End { txn: TxnId::new(NodeId(0), i as u64) },
                    Durability::Forced,
                ).unwrap();
            }
        }
        let mut raw = std::fs::read(&path).unwrap();
        let idx = flip_byte % raw.len();
        raw[idx] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).unwrap();
        let recovered = scan(&path).unwrap();
        // Whatever survives is a correct prefix.
        for (i, (_, _, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(rec.txn().seq, i as u64);
        }
        prop_assert!(recovered.len() < n_records || recovered.len() == n_records);
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    /// The satellite crash property: arbitrary records (mixed forced and
    /// non-forced) pushed through a [`FaultyLog`] over a [`FileLog`]
    /// under an arbitrary seeded [`StorageFaultPlan`], crashed at an
    /// arbitrary point — reopening yields exactly a prefix of the
    /// records that a successful sync made durable, and never
    /// resurrects a suspended (buffered, unforced) batch that no sync
    /// covered.
    #[test]
    fn faulty_log_crash_recovery_is_a_durable_prefix(
        n_records in 1usize..24,
        forced_mask in any::<u32>(),
        crash_after in 0usize..24,
        fsync_pct in 0u32..60,
        torn in prop::option::of(0u64..400),
        flip in prop::option::of((0u64..400, 0u8..8u8)),
        seed in any::<u64>(),
        tag in any::<u64>(),
    ) {
        use tpc_wal::{FaultyLog, StorageFaultPlan};

        let path = tmp(tag.wrapping_add(2));
        let mut plan = StorageFaultPlan::clean(seed).with_fsync_failures(f64::from(fsync_pct) / 100.0);
        if let Some(at) = torn {
            plan = plan.with_torn_write_at(at);
        }
        if let Some((at, bit)) = flip {
            plan = plan.with_bit_flip_at(at, bit);
        }
        let image_damage = torn.is_some() || flip.is_some();

        let mut log = FaultyLog::new(Box::new(FileLog::create(&path).unwrap()), plan)
            .with_path(&path);
        // Highest seq covered by the last successful physical sync: a
        // successful force flushes the whole buffer, so everything
        // appended up to that point (forced or not) is durable.
        let mut durable_high: Option<u64> = None;
        let crash_at = crash_after.min(n_records);
        for i in 0..crash_at {
            let rec = LogRecord::Committed {
                txn: TxnId::new(NodeId(0), i as u64),
                subordinates: vec![NodeId(1)],
            };
            if forced_mask >> (i % 32) & 1 == 1 {
                // A failed force leaves the record buffered; mirror the
                // host's reaction with one flush retry.
                if log.append(StreamId::Tm, rec, Durability::Forced).is_ok()
                    || log.flush().is_ok()
                {
                    durable_high = Some(i as u64);
                }
            } else {
                let _ = log.append(StreamId::Tm, rec, Durability::NonForced);
            }
        }
        log.crash_discard(); // power failure: drop the buffer, damage the image
        drop(log);

        let recovered = scan(&path).unwrap();
        // Prefix property: whatever survives is 0..k in order, nothing
        // invented, nothing reordered.
        for (i, (_, stream, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(*stream, StreamId::Tm);
            prop_assert_eq!(rec.txn().seq, i as u64);
        }
        match durable_high {
            // No resurrection: without a single successful sync nothing
            // is durable, whatever was appended or suspended.
            None => prop_assert!(recovered.is_empty(), "resurrected {recovered:?}"),
            Some(high) => {
                // At most the synced prefix survives...
                prop_assert!(recovered.len() as u64 <= high + 1);
                // ...and on an undamaged image, exactly that prefix.
                if !image_damage {
                    prop_assert_eq!(recovered.len() as u64, high + 1);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
