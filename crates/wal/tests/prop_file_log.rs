//! Property tests for the file-backed log: the recovery scan never
//! panics and always returns a prefix of the appended history, whatever
//! corruption the tail suffers.

use proptest::prelude::*;
use tpc_common::{NodeId, TxnId};
use tpc_wal::file::{scan, FileLog};
use tpc_wal::{Durability, LogManager, LogRecord, StreamId};

fn tmp(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpc-wal-prop-{}-{tag}.log", std::process::id()))
}

proptest! {
    /// Corrupting any suffix of the file leaves a clean prefix: scan
    /// returns the first k records for some k, never garbage and never a
    /// panic.
    #[test]
    fn scan_survives_arbitrary_tail_corruption(
        n_records in 1usize..20,
        cut in 0usize..2000,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        tag in any::<u64>(),
    ) {
        let path = tmp(tag);
        {
            let mut log = FileLog::create(&path).unwrap();
            for i in 0..n_records {
                log.append(
                    StreamId::Tm,
                    LogRecord::Committed {
                        txn: TxnId::new(NodeId(0), i as u64),
                        subordinates: vec![NodeId(1)],
                    },
                    Durability::Forced,
                ).unwrap();
            }
        }
        let original = std::fs::read(&path).unwrap();
        let cut = cut.min(original.len());
        let mut mutated = original[..cut].to_vec();
        mutated.extend_from_slice(&garbage);
        std::fs::write(&path, &mutated).unwrap();

        let recovered = scan(&path).unwrap();
        // Prefix property: recovered records are exactly 0..k in order.
        for (i, (_, stream, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(*stream, StreamId::Tm);
            match rec {
                LogRecord::Committed { txn, .. } => {
                    prop_assert_eq!(txn.seq, i as u64);
                }
                other => prop_assert!(false, "unexpected record {other:?}"),
            }
        }
        prop_assert!(recovered.len() <= n_records);
        // Reopening after corruption keeps working (torn tail truncated).
        {
            let mut log = FileLog::open(&path).unwrap();
            log.append(
                StreamId::Tm,
                LogRecord::End { txn: TxnId::new(NodeId(0), 999) },
                Durability::Forced,
            ).unwrap();
        }
        let after = scan(&path).unwrap();
        prop_assert_eq!(after.len(), recovered.len() + 1);
        std::fs::remove_file(&path).ok();
    }

    /// A single flipped bit anywhere in a record's frame confines the
    /// damage: everything before the flip's frame still scans.
    #[test]
    fn single_bit_flip_is_detected(
        n_records in 2usize..10,
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
        tag in any::<u64>(),
    ) {
        let path = tmp(tag.wrapping_add(1));
        {
            let mut log = FileLog::create(&path).unwrap();
            for i in 0..n_records {
                log.append(
                    StreamId::Tm,
                    LogRecord::End { txn: TxnId::new(NodeId(0), i as u64) },
                    Durability::Forced,
                ).unwrap();
            }
        }
        let mut raw = std::fs::read(&path).unwrap();
        let idx = flip_byte % raw.len();
        raw[idx] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).unwrap();
        let recovered = scan(&path).unwrap();
        // Whatever survives is a correct prefix.
        for (i, (_, _, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(rec.txn().seq, i as u64);
        }
        prop_assert!(recovered.len() < n_records || recovered.len() == n_records);
        std::fs::remove_file(&path).ok();
    }
}
