//! Property tests for the segmented log: recovery over arbitrary crash
//! points, fault seeds, and crash-time image damage always yields a
//! durable prefix, with tiny segment capacities forcing rotation so the
//! property spans multi-segment chains.

use proptest::prelude::*;
use tpc_common::{NodeId, TxnId};
use tpc_wal::segment::{scan_chain, SegmentedLog};
use tpc_wal::{Durability, FaultyLog, LogManager, LogRecord, StorageFaultPlan, StreamId};

fn tmp(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpc-seg-prop-{}-{tag}", std::process::id()))
}

/// The active (highest-numbered) segment file — where a real torn write
/// or bit flip would land at power-off.
fn last_segment(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .max()
        .expect("a segmented log always has an active segment")
}

proptest! {
    /// The segmented twin of `faulty_log_crash_recovery_is_a_durable_prefix`:
    /// arbitrary records (mixed forced and non-forced) pushed through a
    /// [`FaultyLog`] over a [`SegmentedLog`] with seeded fsync failures,
    /// crashed at an arbitrary point with optional image damage on the
    /// active segment — the chain scan yields exactly a prefix of the
    /// appended history, never less than what a successful sync covered,
    /// and the reopened chain keeps accepting appends.
    #[test]
    fn segmented_crash_recovery_is_a_durable_prefix(
        n_records in 1usize..24,
        forced_mask in any::<u32>(),
        crash_after in 0usize..24,
        fsync_pct in 0u32..60,
        seg_bytes in 128u64..512,
        torn in prop::option::of(0u64..600),
        flip in prop::option::of((0u64..600, 0u8..8u8)),
        seed in any::<u64>(),
        tag in any::<u64>(),
    ) {
        let dir = tmp(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let plan = StorageFaultPlan::clean(seed)
            .with_fsync_failures(f64::from(fsync_pct) / 100.0);
        let image_damage = torn.is_some() || flip.is_some();

        let mut log = FaultyLog::new(
            Box::new(SegmentedLog::create_with(&dir, seg_bytes, false).unwrap()),
            plan,
        );
        // Highest seq covered by the last successful physical sync. A
        // rotation also seals (and syncs) everything before it, so this
        // is a lower bound on durability, not the exact durable high.
        let mut forced_high: Option<u64> = None;
        let crash_at = crash_after.min(n_records);
        for i in 0..crash_at {
            let rec = LogRecord::Committed {
                txn: TxnId::new(NodeId(0), i as u64),
                subordinates: vec![NodeId(1)],
            };
            if forced_mask >> (i % 32) & 1 == 1 {
                // A failed force leaves the record buffered; mirror the
                // host's reaction with one flush retry.
                if log.append(StreamId::Tm, rec, Durability::Forced).is_ok()
                    || log.flush().is_ok()
                {
                    forced_high = Some(i as u64);
                }
            } else {
                let _ = log.append(StreamId::Tm, rec, Durability::NonForced);
            }
        }
        log.crash_discard(); // power failure: the buffered tail is gone
        drop(log);

        // Crash-time image damage lands on the active segment, where an
        // interrupted append physically writes.
        let active = last_segment(&dir);
        if let Some(at) = torn {
            let f = std::fs::OpenOptions::new().write(true).open(&active).unwrap();
            let len = f.metadata().unwrap().len();
            f.set_len(at.min(len)).unwrap();
        }
        if let Some((at, bit)) = flip {
            let mut raw = std::fs::read(&active).unwrap();
            if !raw.is_empty() {
                let idx = (at as usize) % raw.len();
                raw[idx] ^= 1 << bit;
                std::fs::write(&active, &raw).unwrap();
            }
        }

        let recovered = scan_chain(&dir).unwrap();
        // Prefix property: whatever survives is 0..k in order, nothing
        // invented, nothing reordered, nothing from after the crash.
        for (i, (_, stream, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(*stream, StreamId::Tm);
            prop_assert_eq!(rec.txn().seq, i as u64);
        }
        prop_assert!(recovered.len() <= crash_at);
        if !image_damage {
            // Nothing a successful sync covered may be lost. (Exact
            // equality cannot be asserted: rotation syncs sealed
            // segments even when every explicit force failed.)
            if let Some(high) = forced_high {
                prop_assert!(
                    recovered.len() as u64 > high,
                    "synced prefix lost: recovered {} of {}",
                    recovered.len(),
                    high + 1,
                );
            }
        }

        // Reopening over the crashed (and possibly damaged) image keeps
        // working: recovery re-zero-fills the tail and appends resume.
        {
            let mut log = SegmentedLog::open_with(&dir, seg_bytes, false).unwrap();
            log.append(
                StreamId::Tm,
                LogRecord::End { txn: TxnId::new(NodeId(0), 999) },
                Durability::Forced,
            ).unwrap();
        }
        let after = scan_chain(&dir).unwrap();
        prop_assert_eq!(after.len(), recovered.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Pure rotation, no faults: every forced record survives the chain
    /// scan in order, however many segment boundaries the history
    /// crosses, and LSNs stay strictly monotone across segments.
    #[test]
    fn rotation_preserves_every_synced_record(
        n_records in 1usize..40,
        seg_bytes in 128u64..400,
        tag in any::<u64>(),
    ) {
        let dir = tmp(tag.wrapping_add(1));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut log = SegmentedLog::create_with(&dir, seg_bytes, false).unwrap();
            for i in 0..n_records {
                log.append(
                    StreamId::Tm,
                    LogRecord::Committed {
                        txn: TxnId::new(NodeId(0), i as u64),
                        subordinates: vec![NodeId(1)],
                    },
                    Durability::Forced,
                ).unwrap();
            }
        }
        let recovered = scan_chain(&dir).unwrap();
        prop_assert_eq!(recovered.len(), n_records);
        let mut prev_lsn = None;
        for (i, (lsn, _, rec)) in recovered.iter().enumerate() {
            prop_assert_eq!(rec.txn().seq, i as u64);
            if let Some(p) = prev_lsn {
                prop_assert!(lsn.0 > p, "LSNs must be strictly monotone across the chain");
            }
            prev_lsn = Some(lsn.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
