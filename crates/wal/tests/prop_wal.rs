//! Property tests for the WAL: durability semantics under arbitrary
//! append/force/crash sequences, and group-commit conservation.

use proptest::prelude::*;
use tpc_common::config::GroupCommitConfig;
use tpc_common::{NodeId, SimDuration, SimTime, TxnId};
use tpc_wal::{Durability, FlushDecision, GroupCommitter, LogManager, LogRecord, MemLog, StreamId};

#[derive(Clone, Debug)]
enum WalOp {
    Append { forced: bool },
    Flush,
    CrashRestart,
}

fn arb_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        4 => any::<bool>().prop_map(|forced| WalOp::Append { forced }),
        1 => Just(WalOp::Flush),
        1 => Just(WalOp::CrashRestart),
    ]
}

proptest! {
    /// The fundamental WAL contract: after any crash, the durable prefix
    /// is exactly the appends up to (and including) the last force/flush,
    /// in order.
    #[test]
    fn durable_prefix_matches_force_history(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut log = MemLog::new();
        let mut appended: Vec<u64> = Vec::new();       // all sequence numbers
        let mut durable_watermark = 0usize;            // appended[..durable_watermark] is stable
        let mut seq = 0u64;
        for op in ops {
            match op {
                WalOp::Append { forced } => {
                    seq += 1;
                    log.append(
                        StreamId::Tm,
                        LogRecord::End { txn: TxnId::new(NodeId(0), seq) },
                        if forced { Durability::Forced } else { Durability::NonForced },
                    ).unwrap();
                    appended.push(seq);
                    if forced {
                        durable_watermark = appended.len();
                    }
                }
                WalOp::Flush => {
                    log.flush().unwrap();
                    durable_watermark = appended.len();
                }
                WalOp::CrashRestart => {
                    log.crash();
                    let survivors: Vec<u64> = log
                        .durable_records()
                        .iter()
                        .map(|(_, _, r)| r.txn().seq)
                        .collect();
                    prop_assert_eq!(&survivors, &appended[..durable_watermark]);
                    log.restart();
                    // Unforced tail is gone for good.
                    appended.truncate(durable_watermark);
                }
            }
        }
        // Final check without a crash: durable prefix still correct.
        let survivors: Vec<u64> = log
            .durable_records()
            .iter()
            .map(|(_, _, r)| r.txn().seq)
            .collect();
        prop_assert_eq!(&survivors, &appended[..durable_watermark]);
    }

    /// Group commit conserves tickets: every request is released exactly
    /// once, and flushes never exceed requests.
    #[test]
    #[allow(unused_assignments)]
    fn group_commit_conserves_tickets(
        batch in 1usize..8,
        wait_us in 1u64..5_000,
        arrivals in prop::collection::vec(0u64..10_000, 1..80),
    ) {
        let mut gc = GroupCommitter::new(GroupCommitConfig {
            batch_size: batch,
            max_wait: SimDuration::from_micros(wait_us),
            adaptive: false,
        });
        let mut released: Vec<u64> = Vec::new();
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut pending_deadline: Option<SimTime> = None;
        for (ticket, at) in sorted.iter().enumerate() {
            let now = SimTime(*at);
            // Fire any expired deadline first, as the harness would.
            if let Some(d) = pending_deadline {
                if now >= d {
                    if let Some(t) = gc.expire(d) {
                        released.extend(t);
                    }
                    pending_deadline = None;
                }
            }
            match gc.request(now, ticket as u64) {
                FlushDecision::FlushNow(t) => {
                    released.extend(t);
                    pending_deadline = None;
                }
                FlushDecision::WaitUntil(d) => pending_deadline = Some(d),
            }
        }
        if let Some(t) = gc.drain() {
            released.extend(t);
        }
        released.sort_unstable();
        let expected: Vec<u64> = (0..sorted.len() as u64).collect();
        prop_assert_eq!(released, expected);
        let stats = gc.stats();
        prop_assert_eq!(stats.requests, sorted.len() as u64);
        prop_assert!(stats.flushes <= stats.requests);
        prop_assert_eq!(stats.flushes_by_size + stats.flushes_by_timer, stats.flushes);
    }

    /// Log record encode/decode survives arbitrary key/value payloads.
    #[test]
    fn rm_update_records_roundtrip(
        key in prop::collection::vec(any::<u8>(), 0..64),
        before in prop::option::of(prop::collection::vec(any::<u8>(), 0..64)),
        after in prop::option::of(prop::collection::vec(any::<u8>(), 0..64)),
        seq in any::<u64>(),
    ) {
        use tpc_common::wire::{Decode, Encode};
        let rec = LogRecord::RmUpdate {
            rm: tpc_common::RmId(1),
            txn: TxnId::new(NodeId(7), seq),
            key,
            before,
            after,
        };
        let bytes = rec.encode_to_bytes();
        prop_assert_eq!(LogRecord::decode_all(&bytes).unwrap(), rec);
    }
}
