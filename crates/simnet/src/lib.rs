//! # tpc-simnet
//!
//! Deterministic discrete-event simulation substrate: a virtual-time event
//! scheduler and a point-to-point network model with per-link latency,
//! partitions and crash windows.
//!
//! The paper's evaluation counts message flows and log writes and reasons
//! about elapsed/lock time as a function of network delay. A deterministic
//! simulator reproduces those counts *exactly* and repeatably (every run
//! with the same seed is identical), which is why the whole test and
//! benchmark suite drives the sans-IO engine through this crate rather
//! than through sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod scheduler;

pub use network::{LatencyModel, Network, Partition};
pub use scheduler::Scheduler;
