//! Point-to-point network model: latency, partitions, crashed nodes.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpc_common::{NodeId, SimDuration, SimTime};

/// Per-link one-way latency model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Constant one-way delay.
    Fixed(SimDuration),
    /// Uniformly distributed in `[lo, hi]` (seeded, deterministic).
    Uniform(SimDuration, SimDuration),
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                let (lo, hi) = (lo.as_micros(), hi.as_micros().max(lo.as_micros()));
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
        }
    }
}

/// A bidirectional communication cut between two nodes for a time window.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: NodeId,
    /// The other side.
    pub b: NodeId,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive); `None` = forever.
    pub until: Option<SimTime>,
}

impl Partition {
    fn blocks(&self, x: NodeId, y: NodeId, at: SimTime) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && at >= self.from && self.until.map(|u| at < u).unwrap_or(true)
    }
}

/// The network: computes delivery delay (or loss) for each frame.
#[derive(Debug)]
pub struct Network {
    default_latency: LatencyModel,
    overrides: HashMap<(NodeId, NodeId), LatencyModel>,
    partitions: Vec<Partition>,
    crashed: HashSet<NodeId>,
    /// Probability in [0, 1] that any frame is silently lost.
    loss_rate: f64,
    rng: StdRng,
    /// Frames offered for delivery.
    pub frames_offered: u64,
    /// Frames dropped by partitions or crashed receivers.
    pub frames_dropped: u64,
}

impl Network {
    /// A network where every link has `default_latency`; `seed` fixes the
    /// randomness of any `Uniform` links.
    pub fn new(default_latency: LatencyModel, seed: u64) -> Self {
        Network {
            default_latency,
            overrides: HashMap::new(),
            partitions: Vec::new(),
            crashed: HashSet::new(),
            loss_rate: 0.0,
            rng: StdRng::seed_from_u64(seed),
            frames_offered: 0,
            frames_dropped: 0,
        }
    }

    /// Overrides the latency of the directed link `src → dst` (set both
    /// directions for a symmetric link). Used for the paper's "satellite
    /// link" scenarios (§4 Last Agent).
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, model: LatencyModel) {
        self.overrides.insert((src, dst), model);
    }

    /// Installs a partition window.
    pub fn add_partition(&mut self, p: Partition) {
        self.partitions.push(p);
    }

    /// Sets a uniform random frame-loss probability (deterministic given
    /// the seed). Exercises the at-least-once retry machinery.
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.loss_rate = rate.clamp(0.0, 1.0);
    }

    /// Marks a node crashed (frames to and from it are dropped).
    pub fn set_crashed(&mut self, node: NodeId, crashed: bool) {
        if crashed {
            self.crashed.insert(node);
        } else {
            self.crashed.remove(&node);
        }
    }

    /// Is `node` currently marked crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Computes the delivery delay for a frame sent `src → dst` at `now`,
    /// or `None` if the frame is lost (partition or crash).
    pub fn delay(&mut self, src: NodeId, dst: NodeId, now: SimTime) -> Option<SimDuration> {
        self.frames_offered += 1;
        if self.crashed.contains(&src) || self.crashed.contains(&dst) {
            self.frames_dropped += 1;
            return None;
        }
        if self.partitions.iter().any(|p| p.blocks(src, dst, now)) {
            self.frames_dropped += 1;
            return None;
        }
        if self.loss_rate > 0.0 && self.rng.gen_bool(self.loss_rate) {
            self.frames_dropped += 1;
            return None;
        }
        let model = self
            .overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_latency);
        Some(model.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn fixed_latency_is_constant() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(100)), 1);
        for _ in 0..5 {
            assert_eq!(net.delay(n(0), n(1), SimTime(0)), Some(SimDuration(100)));
        }
        assert_eq!(net.frames_offered, 5);
        assert_eq!(net.frames_dropped, 0);
    }

    #[test]
    fn uniform_latency_is_bounded_and_deterministic() {
        let mut a = Network::new(LatencyModel::Uniform(SimDuration(10), SimDuration(20)), 42);
        let mut b = Network::new(LatencyModel::Uniform(SimDuration(10), SimDuration(20)), 42);
        for _ in 0..100 {
            let da = a.delay(n(0), n(1), SimTime(0)).unwrap();
            let db = b.delay(n(0), n(1), SimTime(0)).unwrap();
            assert_eq!(da, db);
            assert!(da >= SimDuration(10) && da <= SimDuration(20));
        }
    }

    #[test]
    fn link_override_applies_one_direction() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 1);
        net.set_link(n(0), n(1), LatencyModel::Fixed(SimDuration(500_000)));
        assert_eq!(
            net.delay(n(0), n(1), SimTime(0)),
            Some(SimDuration(500_000))
        );
        assert_eq!(net.delay(n(1), n(0), SimTime(0)), Some(SimDuration(10)));
    }

    #[test]
    fn partition_window_drops_frames_both_ways() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 1);
        net.add_partition(Partition {
            a: n(0),
            b: n(1),
            from: SimTime(100),
            until: Some(SimTime(200)),
        });
        assert!(net.delay(n(0), n(1), SimTime(50)).is_some());
        assert!(net.delay(n(0), n(1), SimTime(100)).is_none());
        assert!(net.delay(n(1), n(0), SimTime(150)).is_none());
        assert!(net.delay(n(0), n(1), SimTime(200)).is_some());
        assert_eq!(net.frames_dropped, 2);
    }

    #[test]
    fn permanent_partition() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 1);
        net.add_partition(Partition {
            a: n(2),
            b: n(3),
            from: SimTime(0),
            until: None,
        });
        assert!(net.delay(n(2), n(3), SimTime(999_999)).is_none());
        // Other links unaffected.
        assert!(net.delay(n(2), n(4), SimTime(0)).is_some());
    }

    #[test]
    fn loss_rate_drops_roughly_that_fraction() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 7);
        net.set_loss_rate(0.3);
        let mut lost = 0;
        for _ in 0..1000 {
            if net.delay(n(0), n(1), SimTime(0)).is_none() {
                lost += 1;
            }
        }
        assert!((200..400).contains(&lost), "lost {lost} of 1000");
        assert_eq!(net.frames_dropped, lost);
    }

    #[test]
    fn loss_rate_zero_drops_nothing() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 7);
        net.set_loss_rate(0.0);
        for _ in 0..100 {
            assert!(net.delay(n(0), n(1), SimTime(0)).is_some());
        }
    }

    #[test]
    fn crashed_nodes_drop_traffic() {
        let mut net = Network::new(LatencyModel::Fixed(SimDuration(10)), 1);
        net.set_crashed(n(1), true);
        assert!(net.is_crashed(n(1)));
        assert!(net.delay(n(0), n(1), SimTime(0)).is_none());
        assert!(net.delay(n(1), n(0), SimTime(0)).is_none());
        net.set_crashed(n(1), false);
        assert!(net.delay(n(0), n(1), SimTime(0)).is_some());
    }
}
