//! A virtual-time event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tpc_common::SimTime;

/// Internal heap entry: ordered by time, then by insertion sequence so
/// same-time events run in a deterministic FIFO order.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// so a simulation's behaviour is a pure function of its inputs and seed.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Scheduling into the past
    /// is clamped to `now` (the event runs next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pops the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime(30), "c");
        s.schedule(SimTime(10), "a");
        s.schedule(SimTime(20), "b");
        assert_eq!(s.pop(), Some((SimTime(10), "a")));
        assert_eq!(s.pop(), Some((SimTime(20), "b")));
        assert_eq!(s.pop(), Some((SimTime(30), "c")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(SimTime(5), i);
        }
        for i in 0..10 {
            assert_eq!(s.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut s = Scheduler::new();
        s.schedule(SimTime(100), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime(100));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime(50), "first");
        s.pop();
        s.schedule(SimTime(10), "late");
        let (at, e) = s.pop().unwrap();
        assert_eq!(at, SimTime(50));
        assert_eq!(e, "late");
    }

    #[test]
    fn interleaved_scheduling() {
        let mut s = Scheduler::new();
        s.schedule(SimTime(10), 1);
        let (t, _) = s.pop().unwrap();
        s.schedule(t + SimDuration(5), 2);
        s.schedule(t + SimDuration(1), 3);
        assert_eq!(s.pop().unwrap().1, 3);
        assert_eq!(s.pop().unwrap().1, 2);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
