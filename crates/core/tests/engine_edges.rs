//! Engine edge cases driven through the testkit pump: duplicate and
//! dropped frames, reordering, two-initiator conflicts, recovery queries,
//! vote-flag aggregation, timer behaviour.

use tpc_common::{
    HeuristicPolicy, NodeId, Outcome, ProtocolKind, SimDuration, TxnId, Vote, VoteFlags,
};
use tpc_core::testkit::Pump;
use tpc_core::{Event, LocalVote, ProtocolMsg, Stage, TimerKind};

fn txn0() -> TxnId {
    TxnId::new(NodeId(0), 1)
}

fn start_pair_commit(p: &mut Pump) {
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn: txn0(),
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.feed(NodeId(0), Event::CommitRequested { txn: txn0() });
}

#[test]
fn duplicate_prepare_is_answered_with_the_same_vote() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    let prepare = p.deliver_next().expect("prepare frame");
    assert!(prepare.msgs.iter().any(|m| m.kind_name() == "Prepare"));
    // The vote is queued. Duplicate the Prepare: the subordinate must
    // re-send its vote, not re-prepare.
    let logs_before = p.log_kinds(NodeId(1)).len();
    p.redeliver(&prepare);
    assert_eq!(
        p.log_kinds(NodeId(1)).len(),
        logs_before,
        "duplicate prepare must not log again"
    );
    // Two vote frames now queued; both deliver harmlessly.
    p.run_to_quiescence();
    assert_eq!(
        p.engine(NodeId(1)).finished_outcome(txn0()),
        Some(Outcome::Commit)
    );
}

#[test]
fn duplicate_commit_decision_is_re_acked() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedNothing);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare
    p.deliver_next(); // Vote
    let commit = p.deliver_next().expect("commit frame");
    assert!(commit.msgs.iter().any(|m| m.kind_name() == "Commit"));
    p.run_to_quiescence();
    // Both sides done; now the decision arrives again (retry crossed the
    // ack). The subordinate must ack again without logging again.
    let sub_logs = p.log_kinds(NodeId(1));
    p.redeliver(&commit);
    assert_eq!(p.log_kinds(NodeId(1)), sub_logs);
    let re_ack = p.deliver_next().expect("re-ack frame");
    assert!(re_ack.msgs.iter().any(|m| m.kind_name().starts_with("Ack")));
}

#[test]
fn lost_commit_is_recovered_by_ack_timer_retry() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare
    p.deliver_next(); // Vote — coordinator decides, queues Commit
    let dropped = p.drop_next().expect("commit frame dropped");
    assert!(dropped.msgs.iter().any(|m| m.kind_name() == "Commit"));
    assert_eq!(
        p.engine(NodeId(1)).seat(txn0()).unwrap().stage,
        Stage::InDoubt
    );
    // The coordinator's ack-collection timer retries the decision.
    assert!(p.fire_timer(NodeId(0), txn0(), TimerKind::AckCollection));
    p.run_to_quiescence();
    assert_eq!(
        p.engine(NodeId(1)).finished_outcome(txn0()),
        Some(Outcome::Commit)
    );
    assert_eq!(p.engine(NodeId(0)).active_txns(), 0);
}

#[test]
fn lost_vote_leads_to_vote_timeout_abort() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare
    let vote = p.drop_next().expect("vote dropped");
    assert!(vote.msgs.iter().any(|m| m.kind_name() == "VoteYes"));
    assert!(p.fire_timer(NodeId(0), txn0(), TimerKind::VoteCollection));
    assert_eq!(
        p.engine(NodeId(0)).completed_seat(txn0()).unwrap().outcome,
        Some(Outcome::Abort)
    );
    // The in-doubt subordinate eventually queries and learns the abort
    // by presumption.
    assert!(p.fire_timer(NodeId(1), txn0(), TimerKind::InDoubtQuery));
    p.run_to_quiescence();
    assert_eq!(
        p.engine(NodeId(1)).completed_seat(txn0()).unwrap().outcome,
        Some(Outcome::Abort)
    );
}

#[test]
fn late_vote_after_abort_decision_does_not_silence_the_redrive() {
    // A YES vote delayed past the vote-collection timeout races the
    // abort decision. Recording it must not clobber the child's
    // DecisionSent state: under PN the subordinate never queries, so the
    // coordinator's re-drive (or a direct answer) is its only way out of
    // doubt.
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedNothing);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare — N1 votes
    let vote = p.drop_next().expect("vote delayed in transit");
    assert!(vote.msgs.iter().any(|m| m.kind_name() == "VoteYes"));
    // The missing vote counts NO; the abort goes to the un-voted child
    // too — and is lost.
    assert!(p.fire_timer(NodeId(0), txn0(), TimerKind::VoteCollection));
    let abort = p.drop_next().expect("abort decision dropped");
    assert!(abort.msgs.iter().any(|m| m.kind_name() == "Abort"));
    assert_eq!(
        p.engine(NodeId(1)).seat(txn0()).unwrap().stage,
        Stage::InDoubt
    );
    // Now the delayed vote lands: the coordinator answers the in-doubt
    // voter with the decision instead of silently recording the vote.
    p.redeliver(&vote);
    p.run_to_quiescence();
    assert_eq!(
        p.engine(NodeId(1)).completed_seat(txn0()).unwrap().outcome,
        Some(Outcome::Abort)
    );
    assert_eq!(p.engine(NodeId(0)).active_txns(), 0);
    assert_eq!(p.engine(NodeId(1)).active_txns(), 0);
}

#[test]
fn two_initiators_abort_the_transaction() {
    // §3: "it is an error for two participants to initiate commit
    // processing independently for the same transaction".
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedNothing);
    let txn = txn0();
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn,
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.deliver_next(); // Work arrives at N1
                      // Both nodes now ask to commit the same transaction.
    p.feed(NodeId(0), Event::CommitRequested { txn });
    p.feed(NodeId(1), Event::CommitRequested { txn });
    p.run_to_quiescence();
    // N1 refused N0's Prepare (it already aborted); if the NO vote raced
    // ahead, N0's vote timer resolves it identically.
    p.fire_timer(NodeId(0), txn, TimerKind::VoteCollection);
    p.run_to_quiescence();
    let n0 = p.engine(NodeId(0)).completed_seat(txn).map(|s| s.outcome);
    let n1 = p.engine(NodeId(1)).completed_seat(txn).map(|s| s.outcome);
    assert_eq!(n0, Some(Some(Outcome::Abort)), "initiator 0 must abort");
    assert_eq!(n1, Some(Some(Outcome::Abort)), "initiator 1 must abort");
}

#[test]
fn query_answers_follow_the_presumption() {
    for (protocol, expected) in [
        (ProtocolKind::PresumedAbort, Some("Abort")),
        (ProtocolKind::PresumedNothing, Some("Abort")),
        (ProtocolKind::PresumedCommit, Some("Commit")),
        (ProtocolKind::Basic, None), // OutcomeUnknown
    ] {
        let mut p = Pump::homogeneous(2, protocol);
        // N1 queries N0 about a transaction N0 has never heard of.
        let txn = TxnId::new(NodeId(0), 99);
        p.feed(
            NodeId(0),
            Event::MsgReceived {
                from: NodeId(1),
                msg: ProtocolMsg::Query { txn },
            },
        );
        let reply = p.queue.pop_front().expect("a reply is always sent");
        match (&reply.msgs[0], expected) {
            (ProtocolMsg::Decision { outcome, .. }, Some("Abort")) => {
                assert_eq!(*outcome, Outcome::Abort, "{protocol}")
            }
            (ProtocolMsg::Decision { outcome, .. }, Some("Commit")) => {
                assert_eq!(*outcome, Outcome::Commit, "{protocol}")
            }
            (ProtocolMsg::OutcomeUnknown { .. }, None) => {}
            (other, _) => panic!("{protocol}: unexpected reply {other:?}"),
        }
    }
}

#[test]
fn vote_flags_aggregate_across_a_cascade() {
    // Chain 0 → 1 → 2. The leaf is reliable+suspendable, the middle
    // reliable only: the middle's vote to the root must carry
    // reliable=true (all below reliable) and ok_to_leave_out=false (the
    // middle itself is not suspendable).
    let mut configs: Vec<tpc_core::EngineConfig> = (0..3)
        .map(|i| {
            tpc_core::EngineConfig::new(NodeId(i), ProtocolKind::PresumedNothing)
                .with_opts(tpc_common::OptimizationConfig::none().with_leave_out(true))
        })
        .collect();
    configs[0].opts = configs[0].opts.clone();
    let mut p = Pump::new(configs);
    p.set_local_vote(
        NodeId(1),
        LocalVote {
            disposition: tpc_core::LocalDisposition::Yes,
            reliable: true,
            suspendable: false,
        },
    );
    p.set_local_vote(
        NodeId(2),
        LocalVote {
            disposition: tpc_core::LocalDisposition::Yes,
            reliable: true,
            suspendable: true,
        },
    );
    let txn = txn0();
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn,
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.deliver_next(); // work to 1
    p.feed(
        NodeId(1),
        Event::SendWork {
            txn,
            to: NodeId(2),
            payload: vec![],
        },
    );
    p.deliver_next(); // work to 2
    p.feed(NodeId(0), Event::CommitRequested { txn });
    // Drain until the middle's vote to the root appears.
    let mut mid_vote: Option<Vote> = None;
    for _ in 0..20 {
        let Some(frame) = p.deliver_next() else { break };
        if frame.from == NodeId(1) && frame.to == NodeId(0) {
            if let Some(ProtocolMsg::VoteMsg { vote, .. }) = frame
                .msgs
                .iter()
                .find(|m| matches!(m, ProtocolMsg::VoteMsg { .. }))
            {
                mid_vote = Some(*vote);
            }
        }
    }
    let Some(Vote::Yes(flags)) = mid_vote else {
        panic!("expected the middle's YES vote, got {mid_vote:?}");
    };
    assert!(flags.reliable, "whole subtree reliable");
    assert!(
        !flags.ok_to_leave_out,
        "middle is not suspendable, so its subtree cannot be left out"
    );
    p.run_to_quiescence();
}

#[test]
fn unsolicited_vote_reaches_a_coordinator_still_working() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
    let txn = txn0();
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn,
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.deliver_next(); // Work
                      // The server self-prepares before any Prepare is sent.
    p.feed(NodeId(1), Event::SelfPrepare { txn });
    let vote_frame = p.deliver_next().expect("unsolicited vote");
    assert!(vote_frame
        .msgs
        .iter()
        .any(|m| m.kind_name() == "VoteYes(unsolicited)"));
    // Commit now: no Prepare is sent to the already-voted child.
    p.feed(NodeId(0), Event::CommitRequested { txn });
    let next = p.deliver_next().expect("decision frame");
    assert!(
        next.msgs.iter().any(|m| m.kind_name() == "Commit"),
        "expected the decision directly, got {:?}",
        next.msgs
    );
    p.run_to_quiescence();
    assert_eq!(
        p.engine(NodeId(0)).finished_outcome(txn),
        Some(Outcome::Commit)
    );
}

#[test]
fn heuristic_fires_only_while_in_doubt() {
    let mut p = Pump::new(vec![
        tpc_core::EngineConfig::new(NodeId(0), ProtocolKind::PresumedNothing),
        tpc_core::EngineConfig::new(NodeId(1), ProtocolKind::PresumedNothing)
            .with_heuristic(HeuristicPolicy::AbortAfter(SimDuration::from_secs(1))),
    ]);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare — N1 votes, arms the heuristic deadline
    assert!(p
        .timers
        .iter()
        .any(|t| t.node == NodeId(1) && t.kind == TimerKind::HeuristicDeadline));
    // Deliver the vote and the commit normally: the deadline is
    // cancelled, so firing it later must do nothing.
    p.run_to_quiescence();
    assert!(
        !p.fire_timer(NodeId(1), txn0(), TimerKind::HeuristicDeadline),
        "deadline should have been cancelled by the decision"
    );
    assert_eq!(p.engine(NodeId(1)).metrics().heuristic_decisions, 0);
}

#[test]
fn heuristic_decision_is_logged_forced_and_reported() {
    let mut p = Pump::new(vec![
        tpc_core::EngineConfig::new(NodeId(0), ProtocolKind::PresumedNothing),
        tpc_core::EngineConfig::new(NodeId(1), ProtocolKind::PresumedNothing)
            .with_heuristic(HeuristicPolicy::AbortAfter(SimDuration::from_secs(1))),
    ]);
    start_pair_commit(&mut p);
    p.deliver_next(); // Work
    p.deliver_next(); // Prepare
                      // The commit decision is delayed: drop the vote's consequences by
                      // holding the queue, and fire the heuristic deadline first.
    let vote = p.drop_next().expect("vote withheld");
    assert!(p.fire_timer(NodeId(1), txn0(), TimerKind::HeuristicDeadline));
    assert!(p.log_kinds(NodeId(1)).contains(&"Heuristic".to_string()));
    assert_eq!(p.engine(NodeId(1)).metrics().heuristic_decisions, 1);
    // Now the vote arrives late; the coordinator commits; the subordinate
    // compares and reports damage in its ack.
    p.redeliver(&vote);
    p.run_to_quiescence();
    assert_eq!(p.engine(NodeId(1)).metrics().heuristic_damage, 1);
    let root_note = &p.notifications[0];
    assert_eq!(root_note.outcome, Outcome::Commit);
    assert!(root_note.report.damaged.contains(&NodeId(1)));
}

#[test]
fn read_only_vote_flags_are_plain() {
    // A READ-ONLY vote carries no flags by construction; make sure the
    // engine treats a flagged YES and a read-only vote distinctly.
    let yes = Vote::Yes(VoteFlags {
        ok_to_leave_out: true,
        ..VoteFlags::NONE
    });
    assert_ne!(yes, Vote::ReadOnly);
    assert!(yes.is_yes());
    assert!(!Vote::ReadOnly.is_yes());
}

#[test]
fn stale_timers_for_finished_transactions_are_ignored() {
    let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
    start_pair_commit(&mut p);
    p.run_to_quiescence();
    // Both engines are done; firing every conceivably stale timer must
    // not panic or emit anything.
    for kind in [
        TimerKind::VoteCollection,
        TimerKind::AckCollection,
        TimerKind::InDoubtQuery,
        TimerKind::HeuristicDeadline,
    ] {
        p.feed(NodeId(0), Event::TimerFired { txn: txn0(), kind });
        p.feed(NodeId(1), Event::TimerFired { txn: txn0(), kind });
    }
    assert!(p.queue.is_empty());
}

#[test]
fn partner_failure_aborts_only_unvoted_transactions() {
    let mut p = Pump::homogeneous(3, ProtocolKind::PresumedAbort);
    let t_voted = TxnId::new(NodeId(0), 1);
    let t_working = TxnId::new(NodeId(0), 2);
    // Transaction 1 reaches the in-doubt stage at N1.
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn: t_voted,
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.deliver_next();
    p.feed(NodeId(0), Event::CommitRequested { txn: t_voted });
    p.deliver_next(); // Prepare
    assert_eq!(
        p.engine(NodeId(1)).seat(t_voted).unwrap().stage,
        Stage::InDoubt
    );
    // The vote for transaction 1 is lost (its coordinator never hears
    // it, matching the partner-failure scenario).
    p.drop_next();
    // Transaction 2 is still working at N1.
    p.feed(
        NodeId(0),
        Event::SendWork {
            txn: t_working,
            to: NodeId(1),
            payload: vec![],
        },
    );
    p.deliver_next();
    assert_eq!(
        p.engine(NodeId(1)).seat(t_working).unwrap().stage,
        Stage::Working
    );
    // The coordinator's conversation fails.
    p.feed(NodeId(1), Event::PartnerFailed { peer: NodeId(0) });
    // The unvoted transaction aborted; the in-doubt one is untouched.
    assert_eq!(
        p.engine(NodeId(1))
            .completed_seat(t_working)
            .unwrap()
            .outcome,
        Some(Outcome::Abort)
    );
    assert_eq!(
        p.engine(NodeId(1)).seat(t_voted).unwrap().stage,
        Stage::InDoubt
    );
}
