//! # tpc-core
//!
//! The paper's primary contribution: a two-phase-commit engine implementing
//! the **baseline 2PC**, **Presumed Abort**, **Presumed Commit** and
//! **Presumed Nothing** protocol families plus the ten normal-case
//! optimizations of Samaras, Britton, Citron & Mohan, *"Two-Phase Commit
//! Optimizations and Tradeoffs in the Commercial Environment"*, ICDE 1993.
//!
//! ## Sans-IO design
//!
//! The engine ([`TmEngine`]) is a pure state machine: it consumes
//! [`Event`]s (messages received, votes from local resource managers,
//! timers, application requests) and returns [`Action`]s (send a message
//! bundle, write a log record with a given durability, apply a local
//! commit/abort, notify the application, arm a timer). It performs **no**
//! I/O itself, so the same engine runs under:
//!
//! * the deterministic discrete-event simulator (`tpc-sim`), which the
//!   tests, benchmarks and paper-table generators use, and
//! * the live threaded runtime (`tpc-runtime`) with real sockets and logs.
//!
//! ## Protocol families and optimizations as data
//!
//! A node is configured with a [`ProtocolKind`](tpc_common::ProtocolKind)
//! and an [`OptimizationConfig`](tpc_common::OptimizationConfig); every
//! behavioural difference between the paper's variants — who logs what and
//! when, which records are forced, who acknowledges, what a participant
//! with no information presumes — is table-driven from those two values.
//! The benchmark harness regenerates the paper's Tables 2–4 by running the
//! *same engine* with different configuration rows.
//!
//! ## Transaction model
//!
//! Following the paper's peer-to-peer (LU 6.2) model, any node may send
//! work to any other ([`ProtocolMsg::Work`]) and any participant may
//! initiate commit, becoming the root of the commit tree for that
//! transaction. Sending work enrolls the receiver as a subordinate;
//! receiving it records the sender as the upstream coordinator. Two
//! independent initiators for one transaction are detected and abort the
//! transaction, as §3 requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod driver;
pub mod engine;
pub mod event;
pub mod messages;
pub mod metrics;
pub mod recovery;
pub mod seat;
pub mod testkit;

pub use check::{NodeProtocolState, OutcomeRecord};
pub use driver::{
    rm_log_of, rm_log_slot, AppSink, Driver, DriverStats, LogControl, LogHost, NodeHost,
    PrepareControl, RecoveryStats, RmHost, TimerHost, Wire,
};
pub use engine::{EngineConfig, InDoubtDisposition, OwedAck, Timeouts, TmEngine};
pub use event::{Action, Event, LocalDisposition, LocalVote, TimerKind};
pub use messages::{Frame, ProtocolMsg};
pub use metrics::EngineMetrics;
pub use seat::{ChildState, LocalState, Seat, Stage};
