//! A miniature deterministic pump for driving several engines directly,
//! with manual control over message delivery, timers and local votes.
//!
//! `tpc-sim` is the full-fidelity harness; this module exists so the
//! engine's own test suite (and microbenchmarks) can exercise precise
//! event orderings — duplicate deliveries, dropped frames, reordered
//! votes, manually fired timers — without a discrete-event scheduler in
//! the way.

use std::collections::VecDeque;

use tpc_common::{NodeId, SimDuration, SimTime, TxnId};
use tpc_wal::{Durability, LogRecord};

use crate::engine::{EngineConfig, TmEngine};
use crate::event::{Action, Event, LocalVote, TimerKind};
use crate::messages::ProtocolMsg;

/// A frame waiting in the pump's queue.
#[derive(Clone, Debug)]
pub struct QueuedFrame {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Messages in the frame.
    pub msgs: Vec<ProtocolMsg>,
}

/// A timer armed by an engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmedTimer {
    /// Owning node.
    pub node: NodeId,
    /// Transaction.
    pub txn: TxnId,
    /// Which timer.
    pub kind: TimerKind,
    /// Requested delay.
    pub delay: SimDuration,
}

/// A captured log append.
#[derive(Clone, Debug)]
pub struct LoggedRecord {
    /// Writing node.
    pub node: NodeId,
    /// The record.
    pub record: LogRecord,
    /// Forced or not.
    pub durability: Durability,
}

/// A captured application notification.
#[derive(Clone, Debug)]
pub struct Notification {
    /// Root node.
    pub node: NodeId,
    /// Transaction.
    pub txn: TxnId,
    /// Outcome delivered.
    pub outcome: tpc_common::Outcome,
    /// Damage report.
    pub report: tpc_common::DamageReport,
    /// "Recovery in progress" indication.
    pub pending: bool,
}

/// The pump: several engines plus captured side effects.
pub struct Pump {
    engines: Vec<TmEngine>,
    /// Frames awaiting delivery (FIFO).
    pub queue: VecDeque<QueuedFrame>,
    /// Every log append, in order.
    pub logs: Vec<LoggedRecord>,
    /// Currently armed (not cancelled) timers, most recent last.
    pub timers: Vec<ArmedTimer>,
    /// Application notifications, in order.
    pub notifications: Vec<Notification>,
    /// The vote each node's resources report to `PrepareLocal`.
    local_votes: Vec<LocalVote>,
    clock: SimTime,
}

impl Pump {
    /// Builds `n` engines with identical configuration except the node id.
    pub fn homogeneous(n: usize, proto: tpc_common::ProtocolKind) -> Pump {
        Pump::new(
            (0..n)
                .map(|i| EngineConfig::new(NodeId(i as u32), proto))
                .collect(),
        )
    }

    /// Builds engines from explicit configurations.
    pub fn new(configs: Vec<EngineConfig>) -> Pump {
        let n = configs.len();
        Pump {
            engines: configs
                .into_iter()
                .map(|c| TmEngine::new(c).expect("valid testkit config"))
                .collect(),
            queue: VecDeque::new(),
            logs: Vec::new(),
            timers: Vec::new(),
            notifications: Vec::new(),
            local_votes: vec![LocalVote::yes(); n],
            clock: SimTime(1),
        }
    }

    /// Read access to an engine.
    pub fn engine(&self, node: NodeId) -> &TmEngine {
        &self.engines[node.index()]
    }

    /// Sets the local vote a node reports when asked to prepare.
    pub fn set_local_vote(&mut self, node: NodeId, vote: LocalVote) {
        self.local_votes[node.index()] = vote;
    }

    /// Advances the virtual clock.
    pub fn tick(&mut self, by: SimDuration) {
        self.clock += by;
    }

    /// Feeds one event to `node`, capturing side effects. `PrepareLocal`
    /// is answered immediately with the node's configured local vote;
    /// sends are queued (not delivered).
    pub fn feed(&mut self, node: NodeId, event: Event) {
        let actions = self.engines[node.index()]
            .handle(self.clock, event)
            .expect("engine accepts testkit event");
        self.absorb(node, actions);
    }

    fn absorb(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msgs } => self.queue.push_back(QueuedFrame {
                    from: node,
                    to,
                    msgs,
                }),
                Action::Log { record, durability } => self.logs.push(LoggedRecord {
                    node,
                    record,
                    durability,
                }),
                Action::PrepareLocal { txn, .. } => {
                    let vote = self.local_votes[node.index()];
                    self.feed(node, Event::LocalPrepared { txn, vote });
                }
                Action::NotifyOutcome {
                    txn,
                    outcome,
                    report,
                    pending,
                } => self.notifications.push(Notification {
                    node,
                    txn,
                    outcome,
                    report,
                    pending,
                }),
                Action::SetTimer { txn, kind, delay } => {
                    self.timers
                        .retain(|t| !(t.node == node && t.txn == txn && t.kind == kind));
                    self.timers.push(ArmedTimer {
                        node,
                        txn,
                        kind,
                        delay,
                    });
                }
                Action::CancelTimer { txn, kind } => {
                    self.timers
                        .retain(|t| !(t.node == node && t.txn == txn && t.kind == kind));
                }
                Action::CommitLocal { .. }
                | Action::AbortLocal { .. }
                | Action::ForgetLocal { .. }
                | Action::TxnEnded { .. } => {}
            }
        }
    }

    /// Delivers the next queued frame (if any). Returns it for
    /// inspection.
    pub fn deliver_next(&mut self) -> Option<QueuedFrame> {
        let frame = self.queue.pop_front()?;
        for msg in frame.msgs.clone() {
            self.feed(
                frame.to,
                Event::MsgReceived {
                    from: frame.from,
                    msg,
                },
            );
        }
        Some(frame)
    }

    /// Drops the next queued frame without delivering it.
    pub fn drop_next(&mut self) -> Option<QueuedFrame> {
        self.queue.pop_front()
    }

    /// Re-delivers a frame (duplicate delivery testing).
    pub fn redeliver(&mut self, frame: &QueuedFrame) {
        for msg in frame.msgs.clone() {
            self.feed(
                frame.to,
                Event::MsgReceived {
                    from: frame.from,
                    msg,
                },
            );
        }
    }

    /// Delivers everything until the queue drains.
    pub fn run_to_quiescence(&mut self) {
        let mut budget = 10_000;
        while self.deliver_next().is_some() {
            budget -= 1;
            assert!(budget > 0, "testkit pump did not quiesce");
        }
    }

    /// Fires the most recently armed timer matching `(node, txn, kind)`,
    /// if still armed.
    pub fn fire_timer(&mut self, node: NodeId, txn: TxnId, kind: TimerKind) -> bool {
        let armed = self
            .timers
            .iter()
            .any(|t| t.node == node && t.txn == txn && t.kind == kind);
        if armed {
            self.timers
                .retain(|t| !(t.node == node && t.txn == txn && t.kind == kind));
            self.feed(node, Event::TimerFired { txn, kind });
        }
        armed
    }

    /// Log records written by `node`, by kind name.
    pub fn log_kinds(&self, node: NodeId) -> Vec<String> {
        self.logs
            .iter()
            .filter(|l| l.node == node)
            .map(|l| l.record.kind_name().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    #[test]
    fn pump_drives_a_pair_commit() {
        let mut p = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
        let txn = TxnId::new(NodeId(0), 1);
        p.feed(
            NodeId(0),
            Event::SendWork {
                txn,
                to: NodeId(1),
                payload: vec![],
            },
        );
        p.feed(NodeId(0), Event::CommitRequested { txn });
        p.run_to_quiescence();
        assert_eq!(
            p.engine(NodeId(0)).finished_outcome(txn),
            Some(Outcome::Commit)
        );
        assert_eq!(
            p.engine(NodeId(1)).finished_outcome(txn),
            Some(Outcome::Commit)
        );
        assert_eq!(p.notifications.len(), 1);
        assert_eq!(p.log_kinds(NodeId(0)), vec!["Committed", "End"]);
        assert_eq!(p.log_kinds(NodeId(1)), vec!["Prepared", "Committed", "End"]);
    }
}
