//! The harness-independent consistency checker.
//!
//! Verifies the properties the protocols promise, from nothing but
//! per-node protocol snapshots and the outcomes the application saw:
//!
//! 1. **Atomicity** — every participant that reached an outcome reached
//!    the *same* outcome as the root, unless it took a heuristic decision
//!    (which is damage, not a protocol bug — but it must be accounted).
//! 2. **Quiescence** — once a run is over, no seat is still unresolved
//!    (blocked in-doubt participants are reported as *unresolved* rather
//!    than violations: blocking is legitimate 2PC behaviour under
//!    failures).
//! 3. **Damage-report fidelity** — under PN with late acknowledgments,
//!    every damaged participant appears in the root's report (§3: "the
//!    root coordinator [must be] informed of any heuristic damage").
//!
//! The simulator's end-of-run verification ([`tpc-sim`]'s `verify`) and
//! the live runtime's chaos harness both delegate here, so a chaos run
//! over real sockets asserts exactly the invariants the simulator
//! asserts. The inputs are plain snapshots ([`Seat`] clones), which the
//! live runtime can ship across its node threads, not borrows of a
//! running cluster.

use tpc_common::{AckMode, DamageReport, NodeId, Outcome, ProtocolKind, TxnId, Vote};

use crate::engine::{EngineConfig, TmEngine};
use crate::seat::{Seat, Stage};

/// One application-visible transaction completion — the checker's view
/// of what a root promised its application.
#[derive(Clone, Debug)]
pub struct OutcomeRecord {
    /// The transaction.
    pub txn: TxnId,
    /// Its root (commit initiator).
    pub root: NodeId,
    /// The outcome delivered to the application.
    pub outcome: Outcome,
    /// Damage report visible at the root.
    pub report: DamageReport,
    /// Completed with "recovery in progress" (wait-for-outcome).
    pub pending: bool,
}

/// A checkable snapshot of one node's protocol state.
#[derive(Clone, Debug)]
pub struct NodeProtocolState {
    /// The node.
    pub node: NodeId,
    /// The node is down; its seats are excluded from unresolved checks
    /// (it is dead, not blocked).
    pub crashed: bool,
    /// Protocol family the node runs.
    pub protocol: ProtocolKind,
    /// Acknowledgment mode (damage-report fidelity precondition).
    pub ack_mode: AckMode,
    /// Vote-reliable weakens the damage chain.
    pub vote_reliable: bool,
    /// Wait-for-outcome weakens the damage chain.
    pub wait_for_outcome: bool,
    /// Long locks defer acks past the outcome notification.
    pub long_locks: bool,
    /// Seats still in flight.
    pub active: Vec<Seat>,
    /// Seats whose commit processing completed.
    pub completed: Vec<Seat>,
}

impl NodeProtocolState {
    /// Snapshots a live engine.
    pub fn from_engine(node: NodeId, crashed: bool, engine: &TmEngine) -> Self {
        let cfg: &EngineConfig = engine.config();
        NodeProtocolState {
            node,
            crashed,
            protocol: cfg.protocol,
            ack_mode: cfg.opts.ack_mode,
            vote_reliable: cfg.opts.vote_reliable,
            wait_for_outcome: cfg.opts.wait_for_outcome,
            long_locks: cfg.opts.long_locks,
            active: engine.active_seats().cloned().collect(),
            completed: engine.completed_seats().cloned().collect(),
        }
    }

    fn completed_seat(&self, txn: TxnId) -> Option<&Seat> {
        self.completed.iter().find(|s| s.txn == txn)
    }
}

/// Runs all checks. Returns `(violations, unresolved)`.
pub fn check(
    nodes: &[NodeProtocolState],
    outcomes: &[OutcomeRecord],
) -> (Vec<String>, Vec<(NodeId, TxnId)>) {
    let mut violations = Vec::new();
    let mut unresolved = Vec::new();

    // Unresolved seats (skip crashed nodes: they are down, not blocked).
    for state in nodes {
        if state.crashed {
            continue;
        }
        for seat in &state.active {
            // A delegate whose initiator's implied ack never arrived is
            // bookkeeping debt, not a stuck transaction, once it knows
            // the outcome.
            if seat.stage == Stage::Deciding && seat.outcome.is_some() {
                continue;
            }
            unresolved.push((state.node, seat.txn));
        }
    }
    unresolved.sort();

    // Outcome agreement per completed transaction.
    let damage_must_reach_root = must_report_damage(nodes);
    for result in outcomes {
        for state in nodes {
            let Some(seat) = state.completed_seat(result.txn) else {
                continue;
            };
            if seat.sent_vote == Some(Vote::ReadOnly) {
                // Read-only participants are compatible with either
                // outcome by definition.
                continue;
            }
            if let Some(h) = seat.heuristic {
                // Heuristic decisions are checked for reporting, below.
                let damaged = h.damages(result.outcome);
                if damaged && damage_must_reach_root {
                    let reported = result.report.damaged.contains(&state.node);
                    if !reported {
                        violations.push(format!(
                            "{}: heuristic damage at {} not reported to root {} \
                             (PN late-ack promises reliable damage reporting)",
                            result.txn, state.node, result.root
                        ));
                    }
                }
                continue;
            }
            match seat.outcome {
                Some(o) if o == result.outcome => {}
                Some(o) => violations.push(format!(
                    "{}: {} finished {o} but root {} decided {}",
                    result.txn, state.node, result.root, result.outcome
                )),
                None => violations.push(format!(
                    "{}: {} completed without an outcome",
                    result.txn, state.node
                )),
            }
        }
    }

    (violations, unresolved)
}

/// The configuration under which the paper promises the root sees every
/// damage report: all nodes run PN with late acknowledgments and neither
/// vote-reliable nor wait-for-outcome weakens the chain.
pub fn must_report_damage(nodes: &[NodeProtocolState]) -> bool {
    nodes.iter().all(|s| {
        s.protocol == ProtocolKind::PresumedNothing
            && s.ack_mode == AckMode::Late
            && !s.vote_reliable
            && !s.wait_for_outcome
            && !s.long_locks
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::HeuristicOutcome;

    fn txn() -> TxnId {
        TxnId::new(NodeId(0), 1)
    }

    fn state(node: u32, protocol: ProtocolKind) -> NodeProtocolState {
        NodeProtocolState {
            node: NodeId(node),
            crashed: false,
            protocol,
            ack_mode: AckMode::Late,
            vote_reliable: false,
            wait_for_outcome: false,
            long_locks: false,
            active: Vec::new(),
            completed: Vec::new(),
        }
    }

    fn outcome(o: Outcome) -> OutcomeRecord {
        OutcomeRecord {
            txn: txn(),
            root: NodeId(0),
            outcome: o,
            report: DamageReport::clean(),
            pending: false,
        }
    }

    fn completed_seat(o: Option<Outcome>) -> Seat {
        let mut s = Seat::new(txn());
        s.stage = Stage::Done;
        s.outcome = o;
        s
    }

    #[test]
    fn agreeing_outcomes_are_clean() {
        let mut a = state(0, ProtocolKind::PresumedAbort);
        a.completed.push(completed_seat(Some(Outcome::Commit)));
        let mut b = state(1, ProtocolKind::PresumedAbort);
        b.completed.push(completed_seat(Some(Outcome::Commit)));
        let (violations, unresolved) = check(&[a, b], &[outcome(Outcome::Commit)]);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(unresolved.is_empty());
    }

    #[test]
    fn disagreeing_outcome_is_a_violation() {
        let mut a = state(0, ProtocolKind::PresumedAbort);
        a.completed.push(completed_seat(Some(Outcome::Commit)));
        let mut b = state(1, ProtocolKind::PresumedAbort);
        b.completed.push(completed_seat(Some(Outcome::Abort)));
        let (violations, _) = check(&[a, b], &[outcome(Outcome::Commit)]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("finished ABORT"));
    }

    #[test]
    fn active_seat_is_unresolved_not_violation() {
        let mut a = state(0, ProtocolKind::Basic);
        a.active.push(Seat::new(txn()));
        let (violations, unresolved) = check(&[a], &[]);
        assert!(violations.is_empty());
        assert_eq!(unresolved, vec![(NodeId(0), txn())]);
    }

    #[test]
    fn crashed_node_seats_are_skipped() {
        let mut a = state(0, ProtocolKind::Basic);
        a.active.push(Seat::new(txn()));
        a.crashed = true;
        let (violations, unresolved) = check(&[a], &[]);
        assert!(violations.is_empty());
        assert!(unresolved.is_empty());
    }

    #[test]
    fn unreported_damage_flagged_only_under_pn_late_ack() {
        let mut seat = completed_seat(None);
        seat.heuristic = Some(HeuristicOutcome::Abort);
        let mut pn = state(1, ProtocolKind::PresumedNothing);
        pn.completed.push(seat.clone());
        let root = state(0, ProtocolKind::PresumedNothing);
        let (violations, _) = check(&[root.clone(), pn], &[outcome(Outcome::Commit)]);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("heuristic damage"));

        // Same shape under PA: damage is possible but unreported damage
        // is not promised away.
        let mut pa = state(1, ProtocolKind::PresumedAbort);
        pa.completed.push(seat);
        let mut root_pa = root;
        root_pa.protocol = ProtocolKind::PresumedAbort;
        let (violations, _) = check(&[root_pa, pa], &[outcome(Outcome::Commit)]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
