//! Restart recovery: folding a durable log into per-transaction summaries.
//!
//! After a crash, the engine replays its TM log stream and rebuilds one
//! [`TxnLogSummary`] per transaction. The summary determines the restart
//! action per the protocol's presumption rules (see
//! [`crate::TmEngine::recover`]):
//!
//! | durable state                         | restart action                    |
//! |---------------------------------------|-----------------------------------|
//! | `CommitPending`/`Collecting` only     | abort; drive subordinates         |
//! | `Prepared`, no outcome                | in doubt; query / await coordinator |
//! | `Committed`/`Aborted`, no `End`       | re-propagate outcome, re-collect acks |
//! | outcome + `End`                       | finished; keep for queries        |
//! | nothing                               | transaction never reached Phase 2 |

use std::collections::BTreeMap;

use tpc_common::{HeuristicOutcome, Lsn, NodeId, Outcome, SimTime, TxnId};
use tpc_wal::{LogRecord, StreamId};

/// Everything the durable TM stream says about one transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnLogSummary {
    /// PN's pre-Phase-1 record: subordinates enrolled at commit initiation.
    pub commit_pending: Option<Vec<NodeId>>,
    /// PC's pre-Phase-1 record.
    pub collecting: Option<Vec<NodeId>>,
    /// Prepared record: (coordinator to ask, own subordinates).
    pub prepared: Option<(NodeId, Vec<NodeId>)>,
    /// Harness clock stamped into the Prepared record — when the in-doubt
    /// window opened (observability: recovery re-opens it here).
    pub prepared_at: Option<SimTime>,
    /// Commit decision/outcome with the subordinates owed it.
    pub committed: Option<Vec<NodeId>>,
    /// Abort decision/outcome with the subordinates owed it.
    pub aborted: Option<Vec<NodeId>>,
    /// A heuristic decision taken while in doubt.
    pub heuristic: Option<HeuristicOutcome>,
    /// Commit processing completed before the crash.
    pub end: bool,
}

impl TxnLogSummary {
    /// The durable outcome, if one was reached.
    pub fn outcome(&self) -> Option<Outcome> {
        if self.committed.is_some() {
            Some(Outcome::Commit)
        } else if self.aborted.is_some() {
            Some(Outcome::Abort)
        } else {
            None
        }
    }

    /// Prepared with no outcome: the in-doubt window.
    pub fn in_doubt(&self) -> bool {
        self.prepared.is_some() && self.outcome().is_none()
    }

    /// A coordinator's pre-Phase-1 record with no outcome: the commit
    /// operation was cut down mid-voting.
    pub fn interrupted_voting(&self) -> bool {
        (self.commit_pending.is_some() || self.collecting.is_some())
            && self.outcome().is_none()
            && self.prepared.is_none()
    }
}

/// Folds the TM-stream records of a durable log into per-transaction
/// summaries, in transaction order.
pub fn summarize(records: &[(Lsn, StreamId, LogRecord)]) -> BTreeMap<TxnId, TxnLogSummary> {
    let mut out: BTreeMap<TxnId, TxnLogSummary> = BTreeMap::new();
    for (_, stream, record) in records {
        if *stream != StreamId::Tm {
            continue;
        }
        let entry = out.entry(record.txn()).or_default();
        match record {
            LogRecord::CommitPending { subordinates, .. } => {
                entry.commit_pending = Some(subordinates.clone());
            }
            LogRecord::Collecting { subordinates, .. } => {
                entry.collecting = Some(subordinates.clone());
            }
            LogRecord::Prepared {
                coordinator,
                subordinates,
                prepared_at,
                ..
            } => {
                entry.prepared = Some((*coordinator, subordinates.clone()));
                entry.prepared_at = Some(*prepared_at);
            }
            LogRecord::Committed { subordinates, .. } => {
                entry.committed = Some(subordinates.clone());
            }
            LogRecord::Aborted { subordinates, .. } => {
                entry.aborted = Some(subordinates.clone());
            }
            LogRecord::Heuristic { decision, .. } => {
                entry.heuristic = Some(*decision);
            }
            LogRecord::End { .. } => {
                entry.end = true;
            }
            // RM records are replayed by the resource managers themselves.
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;
    use tpc_wal::{Durability, LogManager, MemLog};

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn summarizes_full_commit_history() {
        let mut log = MemLog::new();
        log.append(
            StreamId::Tm,
            LogRecord::CommitPending {
                txn: t(1),
                subordinates: vec![NodeId(2)],
            },
            Durability::Forced,
        )
        .unwrap();
        log.append(
            StreamId::Tm,
            LogRecord::Committed {
                txn: t(1),
                subordinates: vec![NodeId(2)],
            },
            Durability::Forced,
        )
        .unwrap();
        log.append(
            StreamId::Tm,
            LogRecord::End { txn: t(1) },
            Durability::NonForced,
        )
        .unwrap();
        log.flush().unwrap();
        let s = summarize(&log.durable_records());
        let sum = &s[&t(1)];
        assert_eq!(sum.commit_pending, Some(vec![NodeId(2)]));
        assert_eq!(sum.outcome(), Some(Outcome::Commit));
        assert!(sum.end);
        assert!(!sum.in_doubt());
        assert!(!sum.interrupted_voting());
    }

    #[test]
    fn in_doubt_detection() {
        let mut log = MemLog::new();
        log.append(
            StreamId::Tm,
            LogRecord::Prepared {
                txn: t(2),
                coordinator: NodeId(1),
                subordinates: vec![],
                prepared_at: SimTime(750),
            },
            Durability::Forced,
        )
        .unwrap();
        let s = summarize(&log.durable_records());
        assert!(s[&t(2)].in_doubt());
        assert_eq!(s[&t(2)].prepared, Some((NodeId(1), vec![])));
        assert_eq!(s[&t(2)].prepared_at, Some(SimTime(750)));
    }

    #[test]
    fn interrupted_voting_detection() {
        let mut log = MemLog::new();
        log.append(
            StreamId::Tm,
            LogRecord::Collecting {
                txn: t(3),
                subordinates: vec![NodeId(4), NodeId(5)],
            },
            Durability::Forced,
        )
        .unwrap();
        let s = summarize(&log.durable_records());
        assert!(s[&t(3)].interrupted_voting());
        assert_eq!(s[&t(3)].outcome(), None);
    }

    #[test]
    fn rm_records_and_other_streams_are_ignored() {
        let mut log = MemLog::new();
        log.append(
            StreamId::Rm(1),
            LogRecord::RmPrepared {
                rm: tpc_common::RmId(1),
                txn: t(4),
            },
            Durability::Forced,
        )
        .unwrap();
        // A TM record written (incorrectly) on an RM stream is skipped too.
        log.append(
            StreamId::Rm(1),
            LogRecord::End { txn: t(4) },
            Durability::Forced,
        )
        .unwrap();
        assert!(summarize(&log.durable_records()).is_empty());
    }

    #[test]
    fn heuristic_tracked() {
        let mut log = MemLog::new();
        log.append(
            StreamId::Tm,
            LogRecord::Prepared {
                txn: t(5),
                coordinator: NodeId(9),
                subordinates: vec![],
                prepared_at: SimTime::ZERO,
            },
            Durability::Forced,
        )
        .unwrap();
        log.append(
            StreamId::Tm,
            LogRecord::Heuristic {
                txn: t(5),
                decision: HeuristicOutcome::Commit,
            },
            Durability::Forced,
        )
        .unwrap();
        let s = summarize(&log.durable_records());
        assert_eq!(s[&t(5)].heuristic, Some(HeuristicOutcome::Commit));
        assert!(s[&t(5)].in_doubt());
    }

    #[test]
    fn multiple_transactions_kept_separate() {
        let mut log = MemLog::new();
        for n in 1..=3 {
            log.append(
                StreamId::Tm,
                LogRecord::Committed {
                    txn: t(n),
                    subordinates: vec![],
                },
                Durability::Forced,
            )
            .unwrap();
        }
        log.append(
            StreamId::Tm,
            LogRecord::End { txn: t(2) },
            Durability::Forced,
        )
        .unwrap();
        let s = summarize(&log.durable_records());
        assert_eq!(s.len(), 3);
        assert!(!s[&t(1)].end);
        assert!(s[&t(2)].end);
        assert!(!s[&t(3)].end);
    }
}
