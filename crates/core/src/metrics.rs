//! Per-engine counters matching the paper's evaluation metrics.

/// Message and outcome counters for one node's engine.
///
/// Frames ("flows" in the paper) are counted at the sender; each frame may
/// carry several piggybacked protocol messages, which the paper's metric
/// deliberately does not charge for (§4 *Long Locks*: "the commit
/// acknowledgment can be packaged in the same packet as the
/// next-transaction data").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Network frames sent (the paper's "message flows").
    pub frames_sent: u64,
    /// Frames whose primary message is application data (`Work`). The
    /// paper's flow counts cover commit traffic only, so table generators
    /// subtract these: `frames_sent - work_frames` is the 2PC flow count.
    pub work_frames: u64,
    /// Individual protocol messages sent (>= frames when piggybacking).
    pub messages_sent: u64,
    /// Messages that rode along in another message's frame.
    pub piggybacked_messages: u64,
    /// Transactions this node decided (as root or delegate).
    pub decided: u64,
    /// ... of which committed.
    pub committed: u64,
    /// ... of which aborted.
    pub aborted: u64,
    /// Heuristic decisions taken here.
    pub heuristic_decisions: u64,
    /// ... of which jumped to commit.
    pub heuristic_commits: u64,
    /// ... of which jumped to abort.
    pub heuristic_aborts: u64,
    /// Heuristic damage observed here (decision conflicted with outcome).
    pub heuristic_damage: u64,
    /// Damage reported by the subtree in acknowledgments received here.
    /// At the root under PN this counts every damaged node in the tree —
    /// the reliable reporting Figure 3 buys; under PA/PC one hop only.
    pub damage_reports_received: u64,
    /// Damage reports received from children that were *not* forwarded
    /// upstream (PA's one-hop reporting) — the reliability loss the paper
    /// contrasts PN against.
    pub damage_reports_absorbed: u64,
    /// Commit operations that completed with "outcome pending"
    /// (wait-for-outcome).
    pub outcome_pending_completions: u64,
    /// Transactions in which this node was skipped entirely by leave-out.
    pub left_out_of: u64,
    /// Recovery `Query` messages this node answered for in-doubt peers.
    pub recovery_queries_answered: u64,
}

impl EngineMetrics {
    /// Difference between a later snapshot and this one.
    pub fn delta(&self, later: &EngineMetrics) -> EngineMetrics {
        EngineMetrics {
            frames_sent: later.frames_sent - self.frames_sent,
            work_frames: later.work_frames - self.work_frames,
            messages_sent: later.messages_sent - self.messages_sent,
            piggybacked_messages: later.piggybacked_messages - self.piggybacked_messages,
            decided: later.decided - self.decided,
            committed: later.committed - self.committed,
            aborted: later.aborted - self.aborted,
            heuristic_decisions: later.heuristic_decisions - self.heuristic_decisions,
            heuristic_commits: later.heuristic_commits - self.heuristic_commits,
            heuristic_aborts: later.heuristic_aborts - self.heuristic_aborts,
            heuristic_damage: later.heuristic_damage - self.heuristic_damage,
            damage_reports_received: later.damage_reports_received - self.damage_reports_received,
            damage_reports_absorbed: later.damage_reports_absorbed - self.damage_reports_absorbed,
            outcome_pending_completions: later.outcome_pending_completions
                - self.outcome_pending_completions,
            left_out_of: later.left_out_of - self.left_out_of,
            recovery_queries_answered: later.recovery_queries_answered
                - self.recovery_queries_answered,
        }
    }

    /// Adds another node's counters (for cluster-wide totals).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.frames_sent += other.frames_sent;
        self.work_frames += other.work_frames;
        self.messages_sent += other.messages_sent;
        self.piggybacked_messages += other.piggybacked_messages;
        self.decided += other.decided;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.heuristic_decisions += other.heuristic_decisions;
        self.heuristic_commits += other.heuristic_commits;
        self.heuristic_aborts += other.heuristic_aborts;
        self.heuristic_damage += other.heuristic_damage;
        self.damage_reports_received += other.damage_reports_received;
        self.damage_reports_absorbed += other.damage_reports_absorbed;
        self.outcome_pending_completions += other.outcome_pending_completions;
        self.left_out_of += other.left_out_of;
        self.recovery_queries_answered += other.recovery_queries_answered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_merge() {
        let a = EngineMetrics {
            frames_sent: 10,
            messages_sent: 12,
            committed: 2,
            decided: 2,
            ..Default::default()
        };
        let b = EngineMetrics {
            frames_sent: 15,
            messages_sent: 20,
            committed: 3,
            decided: 4,
            aborted: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.frames_sent, 5);
        assert_eq!(d.messages_sent, 8);
        assert_eq!(d.committed, 1);
        assert_eq!(d.aborted, 1);

        let mut total = a;
        total.merge(&b);
        assert_eq!(total.frames_sent, 25);
        assert_eq!(total.decided, 6);
    }
}
