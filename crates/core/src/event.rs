//! Events consumed and actions emitted by the engine.

use tpc_common::{DamageReport, NodeId, Outcome, SimDuration, TxnId};
use tpc_wal::{Durability, LogRecord};

use crate::messages::ProtocolMsg;

/// The aggregated disposition of a node's *local* resource managers after
/// a prepare request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalDisposition {
    /// All local RMs prepared successfully.
    Yes,
    /// At least one local RM refused; the transaction must abort.
    No,
    /// No local RM performed updates; commit and abort are identical
    /// locally (read-only eligible).
    ReadOnly,
}

/// The local vote a harness reports in response to
/// [`Action::PrepareLocal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalVote {
    /// Aggregated local RM disposition.
    pub disposition: LocalDisposition,
    /// All local RMs are reliable (§4 *Vote Reliable*).
    pub reliable: bool,
    /// The local application is a pure server that suspends between
    /// requests, i.e. eligible to assert `ok_to_leave_out` (§4 *Leaving
    /// Inactive Partners Out*). Application-level knowledge, supplied by
    /// the harness.
    pub suspendable: bool,
}

impl LocalVote {
    /// A plain, updating, non-reliable, non-suspendable participant.
    pub fn yes() -> Self {
        LocalVote {
            disposition: LocalDisposition::Yes,
            reliable: false,
            suspendable: false,
        }
    }

    /// A read-only participant.
    pub fn read_only() -> Self {
        LocalVote {
            disposition: LocalDisposition::ReadOnly,
            reliable: false,
            suspendable: false,
        }
    }

    /// A refusing participant.
    pub fn no() -> Self {
        LocalVote {
            disposition: LocalDisposition::No,
            reliable: false,
            suspendable: false,
        }
    }
}

/// Timers the engine may arm. All are per-transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Coordinator waiting for votes; expiry aborts the transaction.
    VoteCollection,
    /// Participant waiting for decision acknowledgments; expiry retries
    /// the decision (once more under wait-for-outcome, then reports
    /// "outcome pending").
    AckCollection,
    /// In-doubt subordinate; expiry sends a recovery [`ProtocolMsg::Query`]
    /// (subordinate-driven recovery) and re-arms.
    InDoubtQuery,
    /// In-doubt subordinate with a heuristic policy; expiry takes the
    /// unilateral decision (§1, §3).
    HeuristicDeadline,
}

/// Input to [`crate::TmEngine::handle`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The local application wants to send work to a partner. The engine
    /// enrolls the partner as a subordinate (unless the leave-out rule
    /// skips enrollment — it never does when data *is* exchanged) and
    /// emits the `Work` frame, attaching any deferred piggyback messages.
    SendWork {
        /// Transaction the work belongs to.
        txn: TxnId,
        /// Destination partner.
        to: NodeId,
        /// Opaque payload for the partner's application.
        payload: Vec<u8>,
    },
    /// The local application asks to commit. This node becomes the root
    /// coordinator for the transaction.
    CommitRequested {
        /// Transaction to commit.
        txn: TxnId,
    },
    /// The local application asks to roll back.
    AbortRequested {
        /// Transaction to abort.
        txn: TxnId,
    },
    /// The local application (a server that knows it is done) volunteers
    /// a vote without waiting for Prepare (§4 *Unsolicited Vote*).
    SelfPrepare {
        /// Transaction to self-prepare.
        txn: TxnId,
    },
    /// A network frame arrived.
    MsgReceived {
        /// Sender.
        from: NodeId,
        /// One protocol message (the harness unbundles frames).
        msg: ProtocolMsg,
    },
    /// The harness's reply to [`Action::PrepareLocal`].
    LocalPrepared {
        /// Transaction that was prepared locally.
        txn: TxnId,
        /// Aggregated local vote.
        vote: LocalVote,
    },
    /// A previously armed timer fired.
    TimerFired {
        /// Transaction the timer belongs to.
        txn: TxnId,
        /// Which timer.
        kind: TimerKind,
    },
    /// The transport reports the conversation with `peer` failed (LU 6.2
    /// notifies partners when a conversation breaks). Transactions that
    /// have not yet voted and whose coordinator is `peer` abort
    /// unilaterally — they are still free to. In-doubt transactions are
    /// NOT touched: that is the blocking window recovery handles.
    PartnerFailed {
        /// The unreachable partner.
        peer: NodeId,
    },
}

/// Output of [`crate::TmEngine::handle`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send one network frame carrying `msgs` to `to` (one *flow*).
    Send {
        /// Destination node.
        to: NodeId,
        /// Messages in the frame (piggybacking puts several here).
        msgs: Vec<ProtocolMsg>,
    },
    /// Append `record` to this node's TM log stream.
    Log {
        /// The record to append.
        record: LogRecord,
        /// Forced or non-forced, per protocol/optimization policy.
        durability: Durability,
    },
    /// Prepare all local resource managers for `txn`. The harness must
    /// respond with [`Event::LocalPrepared`]. `rm_durability` tells the
    /// RM layer whether its prepared records must force (NonForced under
    /// the shared-log optimization, where the TM's force covers them).
    PrepareLocal {
        /// Transaction to prepare locally.
        txn: TxnId,
        /// Durability for RM prepared records.
        rm_durability: Durability,
    },
    /// Commit all local resource managers for `txn` (fire-and-forget).
    CommitLocal {
        /// Transaction to commit locally.
        txn: TxnId,
        /// Durability for RM commit records.
        rm_durability: Durability,
    },
    /// Abort all local resource managers for `txn` (fire-and-forget).
    AbortLocal {
        /// Transaction to abort locally.
        txn: TxnId,
        /// Durability for RM abort records.
        rm_durability: Durability,
    },
    /// Release a read-only transaction's local resources without logging.
    ForgetLocal {
        /// Transaction whose local resources are released.
        txn: TxnId,
    },
    /// Tell the application the outcome. Under late acknowledgment this
    /// fires after the whole subtree confirmed (with the damage report);
    /// under early acknowledgment / wait-for-outcome it may fire earlier,
    /// possibly with `pending = true`.
    NotifyOutcome {
        /// Transaction decided.
        txn: TxnId,
        /// The global outcome.
        outcome: Outcome,
        /// Heuristic-damage report visible at this node.
        report: DamageReport,
        /// True if some subtree outcome is still unknown
        /// (wait-for-outcome's "recovery in progress").
        pending: bool,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Transaction the timer belongs to.
        txn: TxnId,
        /// Which timer.
        kind: TimerKind,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Cancel a timer if armed.
    CancelTimer {
        /// Transaction the timer belongs to.
        txn: TxnId,
        /// Which timer.
        kind: TimerKind,
    },
    /// Commit processing for `txn` is complete at this node; the harness
    /// may clean up per-transaction state.
    TxnEnded {
        /// The finished transaction.
        txn: TxnId,
    },
}

impl Action {
    /// Convenience for tests: is this a `Send` of a frame whose first
    /// message has the given kind name?
    pub fn is_send_of(&self, kind: &str) -> bool {
        matches!(self, Action::Send { msgs, .. } if msgs.first().map(|m| m.kind_name() == kind).unwrap_or(false))
    }

    /// Convenience for tests: is this a log append of the given record
    /// kind (optionally restricted to forced)?
    pub fn is_log_of(&self, kind: &str, forced: Option<bool>) -> bool {
        match self {
            Action::Log { record, durability } => {
                record.kind_name() == kind
                    && forced.map(|f| durability.is_forced() == f).unwrap_or(true)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    fn t() -> TxnId {
        TxnId::new(NodeId(0), 1)
    }

    #[test]
    fn local_vote_constructors() {
        assert_eq!(LocalVote::yes().disposition, LocalDisposition::Yes);
        assert_eq!(LocalVote::no().disposition, LocalDisposition::No);
        assert_eq!(
            LocalVote::read_only().disposition,
            LocalDisposition::ReadOnly
        );
    }

    #[test]
    fn action_test_helpers() {
        let send = Action::Send {
            to: NodeId(1),
            msgs: vec![ProtocolMsg::Prepare {
                txn: t(),
                long_locks: false,
                expect_work: true,
            }],
        };
        assert!(send.is_send_of("Prepare"));
        assert!(!send.is_send_of("Commit"));

        let log = Action::Log {
            record: LogRecord::End { txn: t() },
            durability: Durability::NonForced,
        };
        assert!(log.is_log_of("End", None));
        assert!(log.is_log_of("End", Some(false)));
        assert!(!log.is_log_of("End", Some(true)));
        assert!(!log.is_log_of("Committed", None));
        assert!(!send.is_log_of("End", None));
    }
}
