//! The transaction-manager engine: one sans-IO state machine implementing
//! every protocol family and optimization in the paper.
//!
//! See the crate docs for the design overview. The engine's externally
//! visible behaviour is specified by the paper's figures:
//!
//! * Figures 1–2 — baseline 2PC, flat and cascaded;
//! * Figure 3 — Presumed Nothing with an intermediate coordinator;
//! * Figure 4 — partial read-only;
//! * Figure 6 — last agent;
//! * Figure 7 — long locks;
//! * Figure 8 — vote reliable (early acks with late-ack semantics);
//!
//! and its per-configuration log/flow counts are validated against the
//! analytic formulas of §4 by the `tpc-bench` table generators.

use std::collections::{HashMap, HashSet};

use tpc_common::{
    DamageReport, Error, HeuristicOutcome, HeuristicPolicy, Lsn, NodeId, OptimizationConfig,
    Outcome, ProtocolKind, Result, SimDuration, SimTime, TxnId, Vote, VoteFlags,
};
use tpc_wal::{Durability, LogRecord, StreamId};

use crate::event::{Action, Event, LocalDisposition, LocalVote, TimerKind};
use crate::messages::ProtocolMsg;
use crate::metrics::EngineMetrics;
use crate::recovery::summarize;
use crate::seat::{ChildState, LocalState, Seat, Stage};

/// Failure-handling timer defaults. Only failure scenarios ever see these
/// fire; the normal case is timer-free on the wire.
#[derive(Clone, Copy, Debug)]
pub struct Timeouts {
    /// Coordinator's patience for votes before aborting.
    pub vote_collection: SimDuration,
    /// Patience for acknowledgments before resending the decision.
    pub ack_collection: SimDuration,
    /// In-doubt subordinate's re-query period (subordinate-driven
    /// recovery; not used by PN, whose coordinator drives recovery).
    pub in_doubt_query: SimDuration,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts {
            vote_collection: SimDuration::from_secs(10),
            ack_collection: SimDuration::from_secs(10),
            in_doubt_query: SimDuration::from_secs(30),
        }
    }
}

/// How a recovered TM resolves one of its resource managers' in-doubt
/// transactions after restart (see [`TmEngine::recovered_disposition`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InDoubtDisposition {
    /// The durable TM state says the transaction committed.
    Commit,
    /// The durable TM state says it aborted — or the TM never voted, so
    /// abort is safe under every protocol (the vote could not have been
    /// sent without the TM's prepared force).
    Abort,
    /// Genuinely in doubt: the distributed protocol resolves it.
    AwaitOutcome,
}

/// Static configuration of one node's transaction manager.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// This node's identity.
    pub node: NodeId,
    /// Protocol family.
    pub protocol: ProtocolKind,
    /// Optimization switches (§4).
    pub opts: OptimizationConfig,
    /// Failure timers.
    pub timeouts: Timeouts,
    /// What this TM does when left in doubt too long.
    pub heuristic: HeuristicPolicy,
}

impl EngineConfig {
    /// A plain configuration for `node` running `protocol` with no
    /// optimizations and no heuristics.
    pub fn new(node: NodeId, protocol: ProtocolKind) -> Self {
        EngineConfig {
            node,
            protocol,
            opts: OptimizationConfig::none(),
            timeouts: Timeouts::default(),
            heuristic: HeuristicPolicy::Never,
        }
    }

    /// Replaces the optimization switches.
    pub fn with_opts(mut self, opts: OptimizationConfig) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the heuristic policy.
    pub fn with_heuristic(mut self, policy: HeuristicPolicy) -> Self {
        self.heuristic = policy;
        self
    }
}

/// One deferred acknowledgment: the partner it is owed to and the ack
/// message itself. Normally private bookkeeping — exposed so a
/// multi-lane host can move deferred acks into a node-level piggyback
/// slot that outbound frames of *any* lane drain.
#[derive(Clone, Debug)]
pub struct OwedAck {
    /// Destination partner.
    pub to: NodeId,
    /// The deferred acknowledgment message.
    pub msg: ProtocolMsg,
}

/// One node's transaction manager.
///
/// ```
/// use tpc_common::{NodeId, Outcome, ProtocolKind, TxnId};
/// use tpc_core::testkit::Pump;
/// use tpc_core::Event;
///
/// // Two engines, driven sans-IO through the testkit pump.
/// let mut pump = Pump::homogeneous(2, ProtocolKind::PresumedAbort);
/// let txn = TxnId::new(NodeId(0), 1);
/// pump.feed(NodeId(0), Event::SendWork { txn, to: NodeId(1), payload: vec![] });
/// pump.feed(NodeId(0), Event::CommitRequested { txn });
/// pump.run_to_quiescence();
/// assert_eq!(pump.engine(NodeId(0)).finished_outcome(txn), Some(Outcome::Commit));
/// assert_eq!(pump.engine(NodeId(1)).finished_outcome(txn), Some(Outcome::Commit));
/// ```
#[derive(Debug)]
pub struct TmEngine {
    cfg: EngineConfig,
    seats: HashMap<TxnId, Seat>,
    /// Final seats, kept for recovery queries, re-delivery and reporting.
    completed: HashMap<TxnId, Seat>,
    /// Durable-outcome index for recovery queries (PA aborts deliberately
    /// absent: they are *presumed*).
    finished: HashMap<TxnId, Outcome>,
    /// Acks deferred by long locks or owed as implied acks; they ride on
    /// the next frame to their destination (or are flushed explicitly).
    owed: Vec<OwedAck>,
    /// Standing conversation partners downstream of this node: enrolled in
    /// every commit tree unless the leave-out rule exempts them.
    session_partners: Vec<NodeId>,
    /// Partners whose last committed vote asserted `ok_to_leave_out`.
    leave_out_ok: HashSet<NodeId>,
    metrics: EngineMetrics,
}

impl TmEngine {
    /// Creates an engine; rejects contradictory optimization configs.
    pub fn new(cfg: EngineConfig) -> Result<Self> {
        cfg.opts.validate()?;
        Ok(TmEngine {
            cfg,
            seats: HashMap::new(),
            completed: HashMap::new(),
            finished: HashMap::new(),
            owed: Vec::new(),
            session_partners: Vec::new(),
            leave_out_ok: HashSet::new(),
            metrics: EngineMetrics::default(),
        })
    }

    /// This node's identity.
    pub fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// The static configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Active seat for `txn`.
    pub fn seat(&self, txn: TxnId) -> Option<&Seat> {
        self.seats.get(&txn)
    }

    /// Final seat for `txn`, once commit processing completed here.
    pub fn completed_seat(&self, txn: TxnId) -> Option<&Seat> {
        self.completed.get(&txn)
    }

    /// Number of transactions still in flight at this node.
    pub fn active_txns(&self) -> usize {
        self.seats.len()
    }

    /// Iterates over the seats still in flight (unresolved transactions).
    pub fn active_seats(&self) -> impl Iterator<Item = &Seat> {
        self.seats.values()
    }

    /// Iterates over retired seats (completed transactions).
    pub fn completed_seats(&self) -> impl Iterator<Item = &Seat> {
        self.completed.values()
    }

    /// Durable outcome of a finished transaction, if retained.
    pub fn finished_outcome(&self, txn: TxnId) -> Option<Outcome> {
        self.finished.get(&txn).copied()
    }

    /// Declares a standing downstream conversation partner. Standing
    /// partners are enrolled in every commit this node coordinates, even
    /// when untouched — unless the leave-out optimization exempts them.
    pub fn add_session_partner(&mut self, peer: NodeId) {
        if !self.session_partners.contains(&peer) {
            self.session_partners.push(peer);
        }
    }

    /// Is `peer` currently exempt from enrollment (voted `ok_to_leave_out`
    /// in the last committed transaction)?
    pub fn is_leave_out_eligible(&self, peer: NodeId) -> bool {
        self.leave_out_ok.contains(&peer)
    }

    /// Acks currently deferred (long locks / implied acks).
    pub fn owed_ack_count(&self) -> usize {
        self.owed.len()
    }

    /// Removes and returns every deferred ack without emitting frames or
    /// touching the metrics. The caller assumes the delivery obligation:
    /// a multi-lane host parks these in a node-level piggyback slot so
    /// later outbound frames of *other* transactions — on any lane — can
    /// carry them.
    pub fn take_owed_acks(&mut self) -> Vec<OwedAck> {
        std::mem::take(&mut self.owed)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Feeds one event; returns the actions the harness must execute.
    pub fn handle(&mut self, now: SimTime, event: Event) -> Result<Vec<Action>> {
        let mut out = Vec::new();
        match event {
            Event::SendWork { txn, to, payload } => {
                self.on_send_work(txn, to, payload, now, &mut out)?
            }
            Event::CommitRequested { txn } => self.on_commit_requested(txn, now, &mut out)?,
            Event::AbortRequested { txn } => self.on_abort_requested(txn, now, &mut out)?,
            Event::SelfPrepare { txn } => self.on_self_prepare(txn, now, &mut out)?,
            Event::LocalPrepared { txn, vote } => {
                self.on_local_prepared(txn, vote, now, &mut out)?
            }
            Event::MsgReceived { from, msg } => self.on_msg(from, msg, now, &mut out)?,
            Event::TimerFired { txn, kind } => self.on_timer(txn, kind, now, &mut out)?,
            Event::PartnerFailed { peer } => self.on_partner_failed(peer, now, &mut out),
        }
        Ok(self.coalesce(out))
    }

    /// Flushes deferred acks as explicit frames (end of conversation /
    /// session close). Normally they piggyback for free; this exists so a
    /// final transaction still completes its partners' bookkeeping.
    pub fn flush_owed_acks(&mut self) -> Vec<Action> {
        let owed = std::mem::take(&mut self.owed);
        let mut out = Vec::new();
        for ack in owed {
            self.metrics.frames_sent += 1;
            self.metrics.messages_sent += 1;
            out.push(Action::Send {
                to: ack.to,
                msgs: vec![ack.msg],
            });
        }
        self.coalesce(out)
    }

    /// Merges `Send` actions to the same destination emitted within one
    /// `handle` call into single frames — the engine-level piggybacking
    /// that makes implied acks and coupled flows free on the wire.
    fn coalesce(&mut self, actions: Vec<Action>) -> Vec<Action> {
        let mut out: Vec<Action> = Vec::with_capacity(actions.len());
        for action in actions {
            if let Action::Send { to, msgs } = action {
                if let Some(Action::Send {
                    to: prev_to,
                    msgs: prev_msgs,
                }) = out
                    .iter_mut()
                    .rev()
                    .find(|a| matches!(a, Action::Send { to: t, .. } if *t == to))
                {
                    debug_assert_eq!(*prev_to, to);
                    self.metrics.frames_sent -= 1;
                    self.metrics.piggybacked_messages += msgs.len() as u64;
                    prev_msgs.extend(msgs);
                    continue;
                }
                out.push(Action::Send { to, msgs });
            } else {
                out.push(action);
            }
        }
        out
    }

    /// Emits one frame to `to`, draining any owed acks for that
    /// destination into it as piggyback.
    fn push_send(&mut self, out: &mut Vec<Action>, to: NodeId, msg: ProtocolMsg) {
        if matches!(msg, ProtocolMsg::Work { .. }) {
            self.metrics.work_frames += 1;
        }
        let mut msgs = vec![msg];
        let mut i = 0;
        while i < self.owed.len() {
            if self.owed[i].to == to {
                msgs.push(self.owed.remove(i).msg);
            } else {
                i += 1;
            }
        }
        self.metrics.frames_sent += 1;
        self.metrics.messages_sent += msgs.len() as u64;
        self.metrics.piggybacked_messages += (msgs.len() - 1) as u64;
        out.push(Action::Send { to, msgs });
    }

    fn rm_prepare_durability(&self) -> Durability {
        if self.cfg.opts.shared_log {
            Durability::NonForced
        } else {
            Durability::Forced
        }
    }

    fn rm_commit_durability(&self) -> Durability {
        if self.cfg.opts.shared_log {
            Durability::NonForced
        } else {
            Durability::Forced
        }
    }

    // ------------------------------------------------------------------
    // Application-facing events
    // ------------------------------------------------------------------

    fn on_send_work(
        &mut self,
        txn: TxnId,
        to: NodeId,
        payload: Vec<u8>,
        _now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        if seat.stage != Stage::Working {
            return Err(Error::InvalidState(format!(
                "{txn}: cannot send work in stage {:?}",
                seat.stage
            )));
        }
        seat.child_mut(to).worked = true;
        self.push_send(out, to, ProtocolMsg::Work { txn, payload });
        Ok(())
    }

    fn on_commit_requested(
        &mut self,
        txn: TxnId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        if seat.stage != Stage::Working {
            return Err(Error::InvalidState(format!(
                "{txn}: commit requested in stage {:?}",
                seat.stage
            )));
        }
        if seat.upstream.is_some() {
            // §3: two participants initiating commit for one transaction
            // is an error; the transaction aborts.
            seat.poisoned = true;
        }
        seat.is_root = true;
        seat.commit_started = Some(now);
        seat.stage = Stage::Voting;
        // The natural last agent is "the last subordinate contacted
        // during the voting phase" (§4) — the most recently *touched*
        // partner, chosen before untouched standing partners are
        // enrolled behind it.
        let touched_last = seat.children.last().map(|c| c.node);

        // Enroll standing partners (peer-to-peer conversations persist
        // across transactions) unless the leave-out exemption applies.
        let partners = self.session_partners.clone();
        let seat = self.seats.get_mut(&txn).expect("just inserted");
        let mut skipped = 0u64;
        for p in partners {
            let already = seat.child(p).is_some();
            if already {
                continue;
            }
            if self.cfg.opts.leave_out && self.leave_out_ok.contains(&p) {
                skipped += 1;
                continue;
            }
            seat.child_mut(p);
        }
        self.metrics.left_out_of += skipped;

        if seat.poisoned {
            self.decide(txn, Outcome::Abort, now, out);
            return Ok(());
        }

        // Pre-Phase-1 logging: PN's commit-pending, PC's collecting.
        let subs: Vec<NodeId> = seat.children.iter().map(|c| c.node).collect();
        match self.cfg.protocol {
            ProtocolKind::PresumedNothing => out.push(Action::Log {
                record: LogRecord::CommitPending {
                    txn,
                    subordinates: subs.clone(),
                },
                durability: Durability::Forced,
            }),
            ProtocolKind::PresumedCommit => out.push(Action::Log {
                record: LogRecord::Collecting {
                    txn,
                    subordinates: subs.clone(),
                },
                durability: Durability::Forced,
            }),
            _ => {}
        }

        // Choose a last agent: the most recently touched partner, or —
        // failing any data exchange this transaction — the final
        // enrolled subordinate.
        if self.cfg.opts.last_agent {
            let seat = self.seats.get_mut(&txn).expect("present");
            if let Some(last) = touched_last.or_else(|| seat.children.last().map(|c| c.node)) {
                seat.delegate = Some(last);
                seat.child_mut(last).state = ChildState::Delegate;
            }
        }

        // Phase 1: prepare everyone except the delegate; skip children
        // whose unsolicited vote already arrived.
        let long_locks = self.cfg.opts.long_locks;
        let seat = self.seats.get_mut(&txn).expect("present");
        let targets: Vec<(NodeId, bool)> = seat
            .children
            .iter()
            .filter(|c| c.state == ChildState::Enrolled)
            .map(|c| (c.node, c.worked))
            .collect();
        for (nodeid, expect_work) in targets {
            self.seats
                .get_mut(&txn)
                .expect("present")
                .child_mut(nodeid)
                .state = ChildState::PrepareSent;
            self.push_send(
                out,
                nodeid,
                ProtocolMsg::Prepare {
                    txn,
                    long_locks,
                    expect_work,
                },
            );
        }

        let seat = self.seats.get_mut(&txn).expect("present");
        seat.local = LocalState::Preparing;
        out.push(Action::PrepareLocal {
            txn,
            rm_durability: self.rm_prepare_durability(),
        });
        out.push(Action::SetTimer {
            txn,
            kind: TimerKind::VoteCollection,
            delay: self.cfg.timeouts.vote_collection,
        });
        // Everything else proceeds from LocalPrepared / votes.
        Ok(())
    }

    fn on_abort_requested(
        &mut self,
        txn: TxnId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        if !matches!(seat.stage, Stage::Working) {
            return Err(Error::InvalidState(format!(
                "{txn}: abort requested in stage {:?}",
                seat.stage
            )));
        }
        seat.is_root = true;
        seat.commit_started = Some(now);
        self.decide(txn, Outcome::Abort, now, out);
        Ok(())
    }

    fn on_self_prepare(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) -> Result<()> {
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        if seat.upstream.is_none() {
            return Err(Error::InvalidState(format!(
                "{txn}: self-prepare requires an upstream coordinator"
            )));
        }
        if seat.stage != Stage::Working {
            return Ok(()); // already preparing (e.g. Prepare raced in)
        }
        seat.self_prepared = true;
        seat.commit_started = Some(now);
        self.begin_subordinate_phase_one(txn, now, out);
        Ok(())
    }

    /// Shared entry into Phase 1 for a subordinate (on Prepare receipt or
    /// on self-prepare): cascaded pre-logging, child prepares, local
    /// prepare.
    fn begin_subordinate_phase_one(&mut self, txn: TxnId, _now: SimTime, out: &mut Vec<Action>) {
        // Enroll our own standing partners, same rule as a root.
        let partners = self.session_partners.clone();
        let seat = self.seats.get_mut(&txn).expect("seat exists");
        let mut skipped = 0u64;
        for p in partners {
            if Some(p) == seat.upstream || seat.child(p).is_some() {
                continue;
            }
            if self.cfg.opts.leave_out && self.leave_out_ok.contains(&p) {
                skipped += 1;
                continue;
            }
            seat.child_mut(p);
        }
        self.metrics.left_out_of += skipped;

        let seat = self.seats.get_mut(&txn).expect("seat exists");
        seat.stage = Stage::Voting;
        let has_children = !seat.children.is_empty();

        // §3 / Figure 3: a PN cascaded coordinator force-logs
        // commit-pending before propagating Prepare. PC likewise forces
        // its Collecting record at every (cascaded) coordinator — without
        // it, a crash here followed by a subordinate query would presume
        // COMMIT for a transaction the root may abort.
        if has_children {
            let subs: Vec<NodeId> = seat.children.iter().map(|c| c.node).collect();
            match self.cfg.protocol {
                ProtocolKind::PresumedNothing => out.push(Action::Log {
                    record: LogRecord::CommitPending {
                        txn,
                        subordinates: subs,
                    },
                    durability: Durability::Forced,
                }),
                ProtocolKind::PresumedCommit => out.push(Action::Log {
                    record: LogRecord::Collecting {
                        txn,
                        subordinates: subs,
                    },
                    durability: Durability::Forced,
                }),
                _ => {}
            }
        }

        let long_locks = self.cfg.opts.long_locks;
        let targets: Vec<(NodeId, bool)> = self.seats[&txn]
            .children
            .iter()
            .filter(|c| c.state == ChildState::Enrolled)
            .map(|c| (c.node, c.worked))
            .collect();
        for (nodeid, expect_work) in targets {
            self.seats
                .get_mut(&txn)
                .expect("present")
                .child_mut(nodeid)
                .state = ChildState::PrepareSent;
            self.push_send(
                out,
                nodeid,
                ProtocolMsg::Prepare {
                    txn,
                    long_locks,
                    expect_work,
                },
            );
        }
        if has_children {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::VoteCollection,
                delay: self.cfg.timeouts.vote_collection,
            });
        }

        let seat = self.seats.get_mut(&txn).expect("present");
        seat.local = LocalState::Preparing;
        out.push(Action::PrepareLocal {
            txn,
            rm_durability: self.rm_prepare_durability(),
        });
    }

    fn on_local_prepared(
        &mut self,
        txn: TxnId,
        vote: LocalVote,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let Some(seat) = self.seats.get_mut(&txn) else {
            return Err(Error::UnknownTxn(txn));
        };
        if seat.local != LocalState::Preparing {
            return Err(Error::InvalidState(format!(
                "{txn}: local prepared in local state {:?}",
                seat.local
            )));
        }
        seat.local = match vote.disposition {
            LocalDisposition::No => LocalState::Refused,
            LocalDisposition::ReadOnly => {
                if self.cfg.opts.read_only {
                    LocalState::ReadOnly
                } else {
                    // Without the optimization an inactive participant
                    // pays the full protocol.
                    LocalState::Yes {
                        reliable: vote.reliable,
                        suspendable: vote.suspendable,
                    }
                }
            }
            LocalDisposition::Yes => LocalState::Yes {
                reliable: vote.reliable,
                suspendable: vote.suspendable,
            },
        };
        self.try_advance_voting(txn, now, out);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn on_msg(
        &mut self,
        from: NodeId,
        msg: ProtocolMsg,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        match msg {
            ProtocolMsg::Work { txn, .. } => self.on_work_received(from, txn, now, out),
            ProtocolMsg::Prepare {
                txn,
                long_locks,
                expect_work,
            } => self.on_prepare(from, txn, long_locks, expect_work, now, out),
            ProtocolMsg::VoteMsg { txn, vote } => self.on_vote(from, txn, vote, now, out),
            ProtocolMsg::Decision { txn, outcome } => {
                self.on_decision(from, txn, outcome, now, out)
            }
            ProtocolMsg::Ack {
                txn,
                report,
                pending,
            } => self.on_ack(from, txn, report, pending, now, out),
            ProtocolMsg::Query { txn } => self.on_query(from, txn, now, out),
            ProtocolMsg::OutcomeUnknown { txn } => {
                // Stay in doubt; the query timer re-fires. Nothing to do.
                let _ = txn;
                Ok(())
            }
        }
    }

    fn on_work_received(
        &mut self,
        from: NodeId,
        txn: TxnId,
        _now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        let first_contact = seat.upstream.is_none();
        match seat.upstream {
            None => seat.upstream = Some(from),
            Some(up) if up == from => {}
            Some(_) => {
                // Work for one transaction from two different parents:
                // the tree is broken (Figure 5 territory). Poison.
                seat.poisoned = true;
            }
        }
        // Working-stage liveness: if the Prepare (or a presumption-style
        // abort, which is never retried) gets lost — or the coordinator
        // dies before durably learning it has subordinates — a Working
        // seat would idle forever holding resources. The query fires well
        // after the coordinator's vote-collection window, so a live
        // coordinator has decided by then. PN cancels it again at the
        // YES vote (its *in-doubt* recovery is coordinator-driven); the
        // pre-vote window needs liveness under every protocol, because a
        // PN coordinator that never forced its commit-pending record has
        // nothing to drive recovery from.
        if first_contact {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::InDoubtQuery,
                delay: SimDuration::from_micros(
                    self.cfg.timeouts.vote_collection.as_micros()
                        + self.cfg.timeouts.in_doubt_query.as_micros(),
                ),
            });
        }
        Ok(())
    }

    fn on_prepare(
        &mut self,
        from: NodeId,
        txn: TxnId,
        long_locks: bool,
        expect_work: bool,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        // Re-delivery to a finished seat: repeat our vote. A seat that
        // finished without ever voting (e.g. aborted on a two-initiator
        // conflict or a conversation failure) answers NO — it can no
        // longer guarantee anything.
        if let Some(done) = self.completed.get(&txn) {
            match done.sent_vote {
                Some(v) => self.push_send(out, from, ProtocolMsg::VoteMsg { txn, vote: v }),
                None => self.push_send(
                    out,
                    from,
                    ProtocolMsg::VoteMsg {
                        txn,
                        vote: Vote::No,
                    },
                ),
            }
            return Ok(());
        }
        let first_contact = !self.seats.contains_key(&txn);
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        if first_contact && expect_work {
            // The coordinator conversed with us during this transaction,
            // but we have no trace of it: our state was lost in a crash,
            // or the Work frame never arrived. Either way the work's
            // local effects are gone, so a YES (or READ-ONLY) vote would
            // commit a transaction missing its updates here. Poison the
            // seat; Phase 1 below turns that into a NO vote with full
            // bookkeeping.
            seat.poisoned = true;
        }
        match seat.upstream {
            None => seat.upstream = Some(from),
            Some(up) if up == from => {}
            Some(_) => {
                seat.poisoned = true;
            }
        }
        if seat.is_root {
            // We initiated commit ourselves and now someone prepares us:
            // two coordinators own the decision. Abort.
            seat.poisoned = true;
            self.push_send(
                out,
                from,
                ProtocolMsg::VoteMsg {
                    txn,
                    vote: Vote::No,
                },
            );
            if self.seats[&txn].stage == Stage::Voting {
                self.try_advance_voting(txn, now, out);
            }
            return Ok(());
        }
        match self.seats[&txn].stage {
            Stage::Working => {
                let seat = self.seats.get_mut(&txn).expect("present");
                // The coordinator may request long locks in the Prepare
                // (Figure 7); a subordinate configured for long locks
                // defers its ack on its own initiative too.
                seat.long_locks_deferred_ack = long_locks || self.cfg.opts.long_locks;
                seat.commit_started = Some(now);
                self.begin_subordinate_phase_one(txn, now, out);
                self.try_advance_voting(txn, now, out);
            }
            Stage::Voting => {
                // Raced with self-prepare; remember the long-locks wish.
                let seat = self.seats.get_mut(&txn).expect("present");
                seat.long_locks_deferred_ack = long_locks || self.cfg.opts.long_locks;
            }
            Stage::InDoubt | Stage::Delegated => {
                // Vote may have been lost: re-send it.
                if let Some(v) = self.seats[&txn].sent_vote {
                    self.push_send(out, from, ProtocolMsg::VoteMsg { txn, vote: v });
                }
            }
            Stage::Deciding | Stage::Done => {}
        }
        Ok(())
    }

    fn on_vote(
        &mut self,
        from: NodeId,
        txn: TxnId,
        vote: Vote,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        // A vote from our *upstream* is a last-agent delegation (§4): the
        // initiator hands us the commit decision.
        let is_delegation = self
            .seats
            .get(&txn)
            .and_then(|s| s.upstream)
            .map(|up| up == from)
            .unwrap_or(false)
            || matches!(
                (&vote, self.seats.get(&txn)),
                (Vote::Yes(f), _) if f.last_agent_delegation
            );
        if is_delegation {
            return self.on_delegation(from, txn, vote, now, out);
        }

        let Some(seat) = self.seats.get_mut(&txn) else {
            // Vote for a transaction we already decided (e.g. duplicate).
            return Ok(());
        };
        if let Some(outcome) = seat.outcome {
            // The vote lost a race with the decision (the vote-collection
            // timeout counted it NO, or the frame was delayed in
            // transit). The child's state already reflects the decision
            // re-drive — DecisionSent under ack-collecting protocols —
            // and recording the vote now would clobber that and silence
            // the retries the child depends on to learn the outcome
            // (fatal under PN, where subordinates never query). A YES
            // voter is in doubt: answer it directly instead.
            if matches!(vote, Vote::Yes(_)) {
                self.push_send(out, from, ProtocolMsg::Decision { txn, outcome });
            }
            return Ok(());
        }
        // Record the child's vote.
        match vote {
            Vote::Yes(flags) => {
                seat.leave_out_votes.push((from, flags.ok_to_leave_out));
                seat.child_mut(from).state = ChildState::VotedYes(flags);
            }
            Vote::No => {
                seat.child_mut(from).state = ChildState::VotedNo;
            }
            Vote::ReadOnly => {
                seat.child_mut(from).state = ChildState::VotedReadOnly;
            }
        }
        if matches!(seat.stage, Stage::Voting) {
            self.try_advance_voting(txn, now, out);
        }
        // Votes arriving in Working stage (unsolicited) are just recorded.
        Ok(())
    }

    /// We are the chosen last agent: the initiator delegated the commit
    /// decision to us (Figure 6). A READ-ONLY delegation means the
    /// initiator (and its whole remaining tree) is read-only and keeps no
    /// recoverable state.
    fn on_delegation(
        &mut self,
        from: NodeId,
        txn: TxnId,
        vote: Vote,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let no_trace = !self.seats.contains_key(&txn);
        let seat = self.seats.entry(txn).or_insert_with(|| Seat::new(txn));
        match seat.upstream {
            None => seat.upstream = Some(from),
            Some(up) if up == from => {}
            Some(_) => seat.poisoned = true,
        }
        match vote {
            Vote::Yes(flags) if flags.last_agent_delegation => {
                seat.is_delegate = true;
                seat.initiator_prepared = true;
                // The initiator conversed with us, yet we have no trace
                // of the transaction: our work died in a crash (frames
                // are FIFO per pair, so the Work frame cannot still be
                // in flight behind the delegation). Committing would
                // commit effects that no longer exist — decide ABORT.
                if flags.expect_work && no_trace {
                    seat.poisoned = true;
                }
            }
            Vote::ReadOnly => {
                seat.is_delegate = true;
                seat.initiator_prepared = false;
            }
            Vote::No => {
                // The initiator tells us it cannot commit — abort.
                seat.poisoned = true;
                seat.is_delegate = true;
            }
            Vote::Yes(_) => {
                // A plain YES from upstream makes no protocol sense;
                // treat as delegation for robustness.
                seat.is_delegate = true;
                seat.initiator_prepared = true;
            }
        }
        if seat.commit_started.is_none() {
            seat.commit_started = Some(now);
        }
        match self.seats[&txn].stage {
            Stage::Working => {
                self.begin_subordinate_phase_one(txn, now, out);
                self.try_advance_voting(txn, now, out);
            }
            Stage::Voting => {
                self.try_advance_voting(txn, now, out);
            }
            _ => {}
        }
        Ok(())
    }

    fn on_decision(
        &mut self,
        from: NodeId,
        txn: TxnId,
        outcome: Outcome,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        if !self.seats.contains_key(&txn) {
            // Finished or unknown: satisfy at-least-once redelivery. The
            // coordinator retries until acked, so repeat the ack when the
            // protocol collects one.
            let needs_ack = match outcome {
                Outcome::Commit => self.cfg.protocol.commit_needs_acks(),
                Outcome::Abort => self.cfg.protocol.abort_needs_acks(),
            };
            if needs_ack {
                let report = self
                    .completed
                    .get(&txn)
                    .map(|s| s.report.clone())
                    .unwrap_or_default();
                self.push_send(
                    out,
                    from,
                    ProtocolMsg::Ack {
                        txn,
                        report,
                        pending: false,
                    },
                );
            }
            return Ok(());
        }
        // A duplicate Decision while our ack sits in the deferred
        // (long-locks) queue is the coordinator re-driving recovery: it
        // paid a flow to reclaim its pending-list entry, so stop waiting
        // for a piggyback opportunity and answer now.
        if self
            .seats
            .get(&txn)
            .is_some_and(|s| matches!(s.stage, Stage::Deciding | Stage::Done))
        {
            let mut i = 0;
            while i < self.owed.len() {
                if self.owed[i].to == from && self.owed[i].msg.txn() == txn {
                    let ack = self.owed.remove(i);
                    self.metrics.frames_sent += 1;
                    self.metrics.messages_sent += 1;
                    out.push(Action::Send {
                        to: ack.to,
                        msgs: vec![ack.msg],
                    });
                } else {
                    i += 1;
                }
            }
        }
        self.apply_decision(txn, outcome, now, out);
        Ok(())
    }

    fn on_ack(
        &mut self,
        from: NodeId,
        txn: TxnId,
        report: DamageReport,
        pending: bool,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        self.metrics.damage_reports_received += report.damaged.len() as u64;
        if let Some(seat) = self.seats.get_mut(&txn) {
            if seat.is_delegate && seat.upstream == Some(from) {
                seat.awaiting_initiator_ack = false;
                seat.report.merge(&report);
            } else if seat.child(from).is_some() {
                seat.report.merge(&report);
                seat.child_mut(from).state = if pending {
                    ChildState::AckPending
                } else {
                    ChildState::Acked
                };
            }
            self.try_advance_deciding(txn, now, out);
        } else if let Some(done) = self.completed.get_mut(&txn) {
            // Late ack after a wait-for-outcome completion: record the
            // straggler's report for post-hoc inspection.
            done.report.merge(&report);
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        from: NodeId,
        txn: TxnId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        self.metrics.recovery_queries_answered += 1;
        // Active seat?
        if let Some(seat) = self.seats.get(&txn) {
            match seat.outcome {
                Some(outcome) => {
                    self.push_send(out, from, ProtocolMsg::Decision { txn, outcome });
                }
                None => match seat.stage {
                    Stage::Voting => {
                        // A participant is already recovering: resolve by
                        // aborting (its vote may never arrive).
                        self.push_send(
                            out,
                            from,
                            ProtocolMsg::Decision {
                                txn,
                                outcome: Outcome::Abort,
                            },
                        );
                        self.decide(txn, Outcome::Abort, now, out);
                    }
                    _ => {
                        // We are in doubt ourselves; we cannot answer.
                        self.push_send(out, from, ProtocolMsg::OutcomeUnknown { txn });
                    }
                },
            }
            return Ok(());
        }
        // Finished with retained outcome?
        if let Some(&outcome) = self.finished.get(&txn) {
            self.push_send(out, from, ProtocolMsg::Decision { txn, outcome });
            return Ok(());
        }
        // No information: the presumption is the protocol's namesake.
        let reply = match self.cfg.protocol {
            ProtocolKind::PresumedAbort | ProtocolKind::PresumedNothing => {
                // PN coordinators never forget an unresolved transaction
                // (the forced commit-pending record guarantees it), so no
                // information means it never reached Phase 2: abort safe.
                ProtocolMsg::Decision {
                    txn,
                    outcome: Outcome::Abort,
                }
            }
            ProtocolKind::PresumedCommit => ProtocolMsg::Decision {
                txn,
                outcome: Outcome::Commit,
            },
            ProtocolKind::Basic => ProtocolMsg::OutcomeUnknown { txn },
        };
        self.push_send(out, from, reply);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Progress: voting phase
    // ------------------------------------------------------------------

    /// Central Phase 1 progress check, called whenever a vote or the local
    /// prepare result arrives.
    fn try_advance_voting(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let Some(seat) = self.seats.get(&txn) else {
            return;
        };
        if seat.stage != Stage::Voting {
            return;
        }
        // Local result still outstanding?
        if matches!(seat.local, LocalState::Preparing | LocalState::Unprepared) {
            return;
        }
        // Fast abort on any NO / poison.
        if seat.local == LocalState::Refused || seat.any_vote_no() || seat.poisoned {
            if seat.is_root || seat.is_delegate {
                self.decide(txn, Outcome::Abort, now, out);
            } else {
                self.subordinate_vote_no(txn, now, out);
            }
            return;
        }
        // All votes in (the delegate never votes — it decides)?
        let votes_in = seat
            .children
            .iter()
            .all(|c| c.state.voted() || c.state == ChildState::Delegate);
        if !votes_in {
            return;
        }
        out.push(Action::CancelTimer {
            txn,
            kind: TimerKind::VoteCollection,
        });
        // Snapshot subtree reliability while the vote states are intact
        // (§4 Vote Reliable: "the intermediates collect the reliability
        // information during every first phase").
        let reliable_now = (seat.local_reliable() || seat.local == LocalState::ReadOnly)
            && seat.all_yes_children_reliable();
        let seat = self.seats.get_mut(&txn).expect("present");
        seat.subtree_reliable = reliable_now;
        let seat = self.seats.get(&txn).expect("present");
        if seat.is_root || seat.is_delegate {
            if let Some(delegate) = seat.delegate {
                self.delegate_decision(txn, delegate, now, out);
            } else {
                self.decide(txn, Outcome::Commit, now, out);
            }
        } else {
            self.subordinate_vote(txn, now, out);
        }
    }

    /// A subordinate (leaf or cascaded) sends its vote upstream.
    fn subordinate_vote(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("checked");
        let upstream = seat.upstream.expect("subordinate has upstream");

        // Fully read-only subtree: vote READ-ONLY and vanish (§4).
        if self.cfg.opts.read_only
            && seat.local == LocalState::ReadOnly
            && seat.all_children_read_only()
        {
            seat.sent_vote = Some(Vote::ReadOnly);
            seat.outcome = Some(Outcome::Commit); // either outcome is fine
            seat.stage = Stage::Done;
            seat.finished_at = Some(now);
            out.push(Action::ForgetLocal { txn });
            self.push_send(
                out,
                upstream,
                ProtocolMsg::VoteMsg {
                    txn,
                    vote: Vote::ReadOnly,
                },
            );
            out.push(Action::TxnEnded { txn });
            let done = self.seats.remove(&txn).expect("present");
            self.completed.insert(txn, done);
            return;
        }

        // Otherwise: force the prepared record and vote YES.
        let flags = VoteFlags {
            ok_to_leave_out: self.cfg.opts.leave_out
                && seat.local_suspendable()
                && seat.all_yes_children_leave_out(),
            reliable: seat.local_reliable() && seat.all_yes_children_reliable(),
            unsolicited: seat.self_prepared,
            last_agent_delegation: false,
            expect_work: false,
        };
        let subs: Vec<NodeId> = seat.decision_targets();
        let vote = Vote::Yes(flags);
        seat.sent_vote = Some(vote);
        seat.stage = Stage::InDoubt;
        out.push(Action::Log {
            record: LogRecord::Prepared {
                txn,
                coordinator: upstream,
                subordinates: subs,
                prepared_at: now,
            },
            durability: Durability::Forced,
        });
        self.push_send(out, upstream, ProtocolMsg::VoteMsg { txn, vote });
        self.arm_in_doubt_timers(txn, out);
    }

    fn arm_in_doubt_timers(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        // Subordinate-driven recovery for everyone except PN, whose
        // coordinator drives recovery from its commit-pending record —
        // for PN, the pre-vote liveness timer is cancelled here instead.
        // One exception: an UNSOLICITED voter entered in-doubt before its
        // coordinator may have forced that commit-pending record (the
        // Prepare never arrived), so coordinator-driven recovery has
        // nothing durable to drive from — it must query for itself.
        let unsolicited_voter = self.seats.get(&txn).is_some_and(|s| s.self_prepared);
        if self.cfg.protocol != ProtocolKind::PresumedNothing || unsolicited_voter {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::InDoubtQuery,
                delay: self.cfg.timeouts.in_doubt_query,
            });
        } else {
            out.push(Action::CancelTimer {
                txn,
                kind: TimerKind::InDoubtQuery,
            });
        }
        if let Some(deadline) = self.cfg.heuristic.timeout() {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::HeuristicDeadline,
                delay: deadline,
            });
        }
    }

    /// A subordinate votes NO: it aborts its subtree unilaterally (it
    /// knows the outcome) and tells its coordinator.
    fn subordinate_vote_no(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("checked");
        let upstream = seat.upstream.expect("subordinate has upstream");
        seat.sent_vote = Some(Vote::No);
        self.push_send(
            out,
            upstream,
            ProtocolMsg::VoteMsg {
                txn,
                vote: Vote::No,
            },
        );
        // Drive our own subtree to abort. decide() handles protocol
        // logging and child propagation; it will keep the seat alive to
        // answer the coordinator's Abort with an Ack where required.
        self.decide(txn, Outcome::Abort, now, out);
    }

    /// Last-agent delegation: everything but the delegate is prepared;
    /// hand the decision over (Figure 6).
    fn delegate_decision(
        &mut self,
        txn: TxnId,
        delegate: NodeId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let seat = self.seats.get_mut(&txn).expect("checked");
        seat.stage = Stage::Delegated;

        // A fully read-only initiator delegates with a READ-ONLY vote and
        // keeps no recoverable state (§4 Last Agent, read-only variant).
        let initiator_read_only = self.cfg.opts.read_only
            && seat.local == LocalState::ReadOnly
            && seat
                .children
                .iter()
                .all(|c| c.state == ChildState::VotedReadOnly || c.state == ChildState::Delegate);
        let vote = if initiator_read_only {
            out.push(Action::ForgetLocal { txn });
            Vote::ReadOnly
        } else {
            // Force a prepared record so an in-doubt restart knows to ask
            // the delegate. PN's commit-pending force already names the
            // delegate, so the paper lets PN skip the extra force — the
            // prepared record rides unforced there.
            let subs: Vec<NodeId> = seat.decision_targets();
            let durability = if self.cfg.protocol == ProtocolKind::PresumedNothing {
                Durability::NonForced
            } else {
                Durability::Forced
            };
            out.push(Action::Log {
                record: LogRecord::Prepared {
                    txn,
                    coordinator: delegate,
                    subordinates: subs,
                    prepared_at: now,
                },
                durability,
            });
            Vote::Yes(VoteFlags {
                ok_to_leave_out: false,
                reliable: false,
                unsolicited: false,
                last_agent_delegation: true,
                // Same defense as Prepare's field: a delegate we
                // conversed with that has no trace of the transaction
                // lost its work in a crash and must decide ABORT.
                expect_work: seat.children.iter().any(|c| c.node == delegate && c.worked),
            })
        };
        let seat = self.seats.get_mut(&txn).expect("present");
        seat.sent_vote = Some(vote);
        self.push_send(out, delegate, ProtocolMsg::VoteMsg { txn, vote });
        // A delegating initiator is in doubt exactly like a prepared
        // subordinate: if the delegate dies before answering, only a
        // periodic query resolves us.
        out.push(Action::SetTimer {
            txn,
            kind: TimerKind::InDoubtQuery,
            delay: self.cfg.timeouts.in_doubt_query,
        });
        if let Some(deadline) = self.cfg.heuristic.timeout() {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::HeuristicDeadline,
                delay: deadline,
            });
        }
    }

    // ------------------------------------------------------------------
    // Progress: decision phase
    // ------------------------------------------------------------------

    /// This node owns the decision (root, delegate, or unilateral
    /// subtree-abort): log it, apply it locally, propagate it.
    fn decide(&mut self, txn: TxnId, outcome: Outcome, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("decide on live seat");
        debug_assert!(seat.outcome.is_none(), "{txn} decided twice");
        seat.outcome = Some(outcome);
        seat.decided_at = Some(now);
        if seat.is_root || seat.is_delegate {
            self.metrics.decided += 1;
            match outcome {
                Outcome::Commit => self.metrics.committed += 1,
                Outcome::Abort => self.metrics.aborted += 1,
            }
        }
        out.push(Action::CancelTimer {
            txn,
            kind: TimerKind::VoteCollection,
        });

        match outcome {
            Outcome::Commit => self.decide_commit(txn, now, out),
            Outcome::Abort => self.decide_abort(txn, now, out),
        }
    }

    fn decide_commit(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("present");

        // The all-read-only commit: no second phase at all (§4 Read Only;
        // "PA performs no logging at all if all subordinates vote
        // read-only"). A delegate whose *initiator is prepared* cannot
        // take this shortcut: it owns the decision the initiator's forced
        // prepared record will ask about after a crash, so it must log.
        let all_read_only = self.cfg.opts.read_only
            && seat.local == LocalState::ReadOnly
            && seat.all_children_read_only()
            && !(seat.is_delegate && seat.initiator_prepared);
        if all_read_only {
            out.push(Action::ForgetLocal { txn });
            // PN/PC forced a pre-Phase-1 record; close it out (non-forced).
            if self.cfg.protocol.logs_before_prepare() {
                out.push(Action::Log {
                    record: LogRecord::End { txn },
                    durability: Durability::NonForced,
                });
            }
            if seat.is_root && !seat.notified {
                seat.notified = true;
                out.push(Action::NotifyOutcome {
                    txn,
                    outcome: Outcome::Commit,
                    report: seat.report.clone(),
                    pending: false,
                });
            }
            // A read-only-delegated transaction still tells its initiator
            // the outcome (the initiator's application is waiting).
            if seat.is_delegate {
                if let Some(up) = seat.upstream {
                    self.push_send(
                        out,
                        up,
                        ProtocolMsg::Decision {
                            txn,
                            outcome: Outcome::Commit,
                        },
                    );
                }
            }
            self.finish(txn, now, out);
            return;
        }

        let targets = seat.decision_targets();
        let mut commit_record_subs = targets.clone();
        if seat.is_delegate && seat.initiator_prepared {
            if let Some(up) = seat.upstream {
                commit_record_subs.push(up);
            }
        }
        // The commit point: forced at the decider.
        out.push(Action::Log {
            record: LogRecord::Committed {
                txn,
                subordinates: commit_record_subs,
            },
            durability: Durability::Forced,
        });
        if seat.local != LocalState::ReadOnly {
            out.push(Action::CommitLocal {
                txn,
                rm_durability: self.rm_commit_durability(),
            });
        } else {
            out.push(Action::ForgetLocal { txn });
        }
        let seat = self.seats.get_mut(&txn).expect("present");
        seat.local = LocalState::Committed;
        seat.stage = Stage::Deciding;

        // Propagate downward (and to a delegating initiator: upward).
        let mut send_to = targets;
        if seat.is_delegate {
            if let Some(up) = seat.upstream {
                send_to.push(up);
                if seat.initiator_prepared {
                    seat.awaiting_initiator_ack = true;
                }
            }
        }
        let expects_acks = self.cfg.protocol.commit_needs_acks();
        for node in send_to {
            let is_initiator = self.seats[&txn].upstream == Some(node);
            if !is_initiator {
                self.seats
                    .get_mut(&txn)
                    .expect("present")
                    .child_mut(node)
                    .state = if expects_acks {
                    ChildState::DecisionSent { retries: 0 }
                } else {
                    ChildState::Acked
                };
            }
            self.push_send(
                out,
                node,
                ProtocolMsg::Decision {
                    txn,
                    outcome: Outcome::Commit,
                },
            );
        }
        // Same PN exemption as `propagate_outcome_to_children`: PN
        // participants never query, so the decider's re-drive timer must
        // survive long locks or a crashed child stays in doubt forever.
        let retries_required = self.cfg.protocol == ProtocolKind::PresumedNothing;
        if expects_acks && (!self.cfg.opts.long_locks || retries_required) {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::AckCollection,
                delay: self.cfg.timeouts.ack_collection,
            });
        }
        self.maybe_notify_early(txn, now, out);
        self.try_advance_deciding(txn, now, out);
    }

    fn decide_abort(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("present");
        // Everyone who may have state learns of the abort: prepared
        // voters, un-voted prepare targets, enrolled workers — and a
        // delegate, had one been chosen.
        let targets: Vec<NodeId> = seat
            .children
            .iter()
            .filter(|c| {
                matches!(
                    c.state,
                    ChildState::Enrolled
                        | ChildState::PrepareSent
                        | ChildState::VotedYes(_)
                        | ChildState::VotedNo
                        | ChildState::Delegate
                )
            })
            .map(|c| c.node)
            .collect();

        let presumed = !self.cfg.protocol.abort_needs_acks(); // PA
        if !presumed {
            out.push(Action::Log {
                record: LogRecord::Aborted {
                    txn,
                    subordinates: targets.clone(),
                },
                durability: Durability::Forced,
            });
        }
        if seat.local != LocalState::ReadOnly {
            out.push(Action::AbortLocal {
                txn,
                rm_durability: Durability::NonForced,
            });
        } else {
            out.push(Action::ForgetLocal { txn });
        }
        let seat = self.seats.get_mut(&txn).expect("present");
        seat.local = LocalState::Aborted;
        seat.stage = Stage::Deciding;
        let is_delegate = seat.is_delegate;
        let upstream = seat.upstream;

        for node in targets {
            self.seats
                .get_mut(&txn)
                .expect("present")
                .child_mut(node)
                .state = if presumed {
                ChildState::Acked
            } else {
                ChildState::DecisionSent { retries: 0 }
            };
            self.push_send(
                out,
                node,
                ProtocolMsg::Decision {
                    txn,
                    outcome: Outcome::Abort,
                },
            );
        }
        // A delegate tells the initiator too; a prepared initiator must
        // confirm under ack-collecting protocols.
        if is_delegate {
            if let Some(up) = upstream {
                self.push_send(
                    out,
                    up,
                    ProtocolMsg::Decision {
                        txn,
                        outcome: Outcome::Abort,
                    },
                );
                let seat = self.seats.get_mut(&txn).expect("present");
                if seat.initiator_prepared && !presumed {
                    seat.awaiting_initiator_ack = true;
                }
            }
        }
        if !presumed {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::AckCollection,
                delay: self.cfg.timeouts.ack_collection,
            });
        }
        self.maybe_notify_early(txn, now, out);
        self.try_advance_deciding(txn, now, out);
    }

    /// A participant learns the outcome from its coordinator (or, as a
    /// delegating initiator, from its delegate).
    fn apply_decision(
        &mut self,
        txn: TxnId,
        outcome: Outcome,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let Some(seat) = self.seats.get_mut(&txn) else {
            return;
        };
        match seat.stage {
            Stage::InDoubt | Stage::Delegated => {}
            Stage::Voting | Stage::Working => {
                // An abort can arrive before we voted (vote-collection
                // timeout upstream, or recovery). A *commit* cannot bind
                // us either: our YES was never sent, so no genuine commit
                // decision includes this subtree — a "Commit" here can
                // only be a false no-information presumption (PC) after
                // the coordinator lost its state, and aborting our
                // never-voted work is the safe resolution.
                if seat.sent_vote.is_none() {
                    seat.outcome = Some(Outcome::Abort);
                    seat.decided_at = Some(now);
                    // decide_abort drives the subtree and, via
                    // try_advance_deciding, acks upstream once settled.
                    self.decide_abort(txn, now, out);
                }
                return;
            }
            Stage::Deciding | Stage::Done => return, // duplicate
        }
        out.push(Action::CancelTimer {
            txn,
            kind: TimerKind::InDoubtQuery,
        });
        out.push(Action::CancelTimer {
            txn,
            kind: TimerKind::HeuristicDeadline,
        });
        seat.outcome = Some(outcome);
        seat.decided_at = Some(now);

        // Heuristic residue: we already went one way unilaterally.
        if let Some(h) = seat.heuristic {
            let damaged = h.damages(outcome);
            if damaged {
                self.metrics.heuristic_damage += 1;
                seat.report.damaged.push(self.cfg.node);
            } else {
                seat.report.heuristic_no_damage.push(self.cfg.node);
            }
            // Propagate the real outcome to children regardless — they
            // were not part of our unilateral decision.
            seat.stage = Stage::Deciding;
            self.propagate_outcome_to_children(txn, outcome, out);
            self.try_advance_deciding(txn, now, out);
            return;
        }

        match outcome {
            Outcome::Commit => {
                // A PC subordinate's commit record may ride unforced: if
                // it is lost, no-information presumes commit (§3/PC).
                let durability = if self.cfg.protocol == ProtocolKind::PresumedCommit {
                    Durability::NonForced
                } else {
                    Durability::Forced
                };
                let subs = self.seats[&txn].decision_targets();
                out.push(Action::Log {
                    record: LogRecord::Committed {
                        txn,
                        subordinates: subs,
                    },
                    durability,
                });
                let read_only_local = self.seats[&txn].local == LocalState::ReadOnly;
                if read_only_local {
                    out.push(Action::ForgetLocal { txn });
                } else {
                    out.push(Action::CommitLocal {
                        txn,
                        rm_durability: self.rm_commit_durability(),
                    });
                }
                let seat = self.seats.get_mut(&txn).expect("present");
                seat.local = LocalState::Committed;
                seat.stage = Stage::Deciding;
                self.propagate_outcome_to_children(txn, outcome, out);
                // Early acknowledgment (§4 Commit Acknowledgment / Vote
                // Reliable): ack upstream before children confirm; a
                // delegating root may likewise notify its app early.
                self.maybe_early_ack(txn, now, out);
                self.maybe_notify_early(txn, now, out);
                self.try_advance_deciding(txn, now, out);
            }
            Outcome::Abort => {
                let presumed = !self.cfg.protocol.abort_needs_acks();
                if !presumed {
                    let subs = self.seats[&txn].decision_targets();
                    out.push(Action::Log {
                        record: LogRecord::Aborted {
                            txn,
                            subordinates: subs,
                        },
                        durability: Durability::Forced,
                    });
                }
                let read_only_local = self.seats[&txn].local == LocalState::ReadOnly;
                if read_only_local {
                    out.push(Action::ForgetLocal { txn });
                } else {
                    out.push(Action::AbortLocal {
                        txn,
                        rm_durability: Durability::NonForced,
                    });
                }
                let seat = self.seats.get_mut(&txn).expect("present");
                seat.local = LocalState::Aborted;
                seat.stage = Stage::Deciding;
                self.propagate_outcome_to_children(txn, outcome, out);
                self.try_advance_deciding(txn, now, out);
            }
        }
    }

    fn propagate_outcome_to_children(
        &mut self,
        txn: TxnId,
        outcome: Outcome,
        out: &mut Vec<Action>,
    ) {
        let expects_acks = match outcome {
            Outcome::Commit => self.cfg.protocol.commit_needs_acks(),
            Outcome::Abort => self.cfg.protocol.abort_needs_acks(),
        };
        // Note: a `Delegate` child is excluded — this function propagates
        // an outcome *learned from* the delegate, who obviously knows.
        let targets = match outcome {
            Outcome::Commit => self.seats[&txn].decision_targets(),
            Outcome::Abort => self.seats[&txn]
                .children
                .iter()
                .filter(|c| {
                    matches!(
                        c.state,
                        ChildState::Enrolled
                            | ChildState::PrepareSent
                            | ChildState::VotedYes(_)
                            | ChildState::VotedNo
                    )
                })
                .map(|c| c.node)
                .collect(),
        };
        let any_targets = !targets.is_empty();
        for node in targets {
            self.seats
                .get_mut(&txn)
                .expect("present")
                .child_mut(node)
                .state = if expects_acks {
                ChildState::DecisionSent { retries: 0 }
            } else {
                ChildState::Acked
            };
            self.push_send(out, node, ProtocolMsg::Decision { txn, outcome });
        }
        // Long locks defers the children's acks to piggyback on later
        // traffic, so the retry timer would only generate spurious
        // re-drives — except under PN, whose in-doubt participants never
        // query: there the coordinator's re-drive is the ONLY path by
        // which a crashed-and-recovered child ever learns the outcome,
        // so the timer stays armed (a live deferring child answers the
        // re-drive by flushing its ack — see `on_decision`).
        let retries_required = self.cfg.protocol == ProtocolKind::PresumedNothing;
        if any_targets && expects_acks && (!self.cfg.opts.long_locks || retries_required) {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::AckCollection,
                delay: self.cfg.timeouts.ack_collection,
            });
        }
    }

    /// Cascaded coordinator early acknowledgment: fires when the ack mode
    /// is Early, or when vote-reliable applies (every vote below was
    /// reliable), sending the ack upstream before children confirm.
    fn maybe_early_ack(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get(&txn).expect("present");
        if seat.upstream.is_none() || seat.is_delegate {
            return;
        }
        let use_early = match self.cfg.opts.ack_mode {
            tpc_common::AckMode::Early => true,
            tpc_common::AckMode::Late => self.cfg.opts.vote_reliable && seat.subtree_reliable,
        };
        if !use_early {
            return;
        }
        let seat = self.seats.get_mut(&txn).expect("present");
        if seat.notified {
            return;
        }
        seat.notified = true; // reuse: ack already sent upstream
        let upstream = seat.upstream.expect("checked");
        let report = seat.report.clone();
        let _ = now;
        self.send_or_defer_ack(txn, upstream, report, false, out);
    }

    /// Sends the upstream ack, or defers it under long locks / implied-ack
    /// rules.
    fn send_or_defer_ack(
        &mut self,
        txn: TxnId,
        upstream: NodeId,
        report: DamageReport,
        pending: bool,
        out: &mut Vec<Action>,
    ) {
        let msg = ProtocolMsg::Ack {
            txn,
            report,
            pending,
        };
        let defer = self
            .seats
            .get(&txn)
            .map(|s| s.long_locks_deferred_ack)
            .unwrap_or(false)
            || self
                .completed
                .get(&txn)
                .map(|s| s.long_locks_deferred_ack)
                .unwrap_or(false);
        if defer {
            self.owed.push(OwedAck { to: upstream, msg });
        } else {
            self.push_send(out, upstream, msg);
        }
    }

    /// Root-side early notification (before acks) when the configuration
    /// allows it.
    fn maybe_notify_early(&mut self, txn: TxnId, _now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("present");
        if !(seat.is_root || (seat.is_delegate && seat.upstream.is_none())) || seat.notified {
            return;
        }
        let outcome = seat.outcome.expect("decided");
        // The root application regains control at the decision point when
        // the configuration says nobody upstream of it is owed certainty:
        // explicit early acks; long locks (the app must be free to start
        // the next transaction that carries the piggybacked ack); PA/PC,
        // whose commit point is the coordinator's force (R* style); or a
        // fully reliable subtree under vote-reliable. Wait-for-outcome
        // keeps the late path so the app hears about pending recovery.
        let use_early = !self.cfg.opts.wait_for_outcome
            && (self.cfg.opts.ack_mode == tpc_common::AckMode::Early
                || self.cfg.opts.long_locks
                || matches!(
                    self.cfg.protocol,
                    ProtocolKind::PresumedAbort | ProtocolKind::PresumedCommit
                )
                || (self.cfg.opts.vote_reliable && seat.subtree_reliable));
        if use_early {
            seat.notified = true;
            out.push(Action::NotifyOutcome {
                txn,
                outcome,
                report: seat.report.clone(),
                pending: false,
            });
        }
    }

    /// Central Phase 2 progress check.
    fn try_advance_deciding(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let Some(seat) = self.seats.get(&txn) else {
            return;
        };
        if seat.stage != Stage::Deciding {
            return;
        }
        if !seat.all_settled() || seat.awaiting_initiator_ack {
            return;
        }
        // PN: a handed-over (AckPending) child still owes its ack and
        // will never query for the outcome — the seat cannot retire (its
        // END would abandon the re-drive; see `retry_acks`), but
        // wait-for-outcome's contract still releases the application now
        // with the pending indication.
        if self.cfg.protocol == ProtocolKind::PresumedNothing && seat.any_ack_pending() {
            self.notify_pending_early(txn, out);
            return;
        }
        out.push(Action::CancelTimer {
            txn,
            kind: TimerKind::AckCollection,
        });
        self.notify_and_ack_if_done(txn, now, out);
    }

    /// Releases the root application with a "recovery in progress"
    /// completion while the seat stays alive to keep re-driving a
    /// handed-over child (PN wait-for-outcome).
    fn notify_pending_early(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("present");
        if !seat.is_root || seat.notified {
            return;
        }
        seat.notified = true;
        seat.outcome_pending = true;
        self.metrics.outcome_pending_completions += 1;
        out.push(Action::NotifyOutcome {
            txn,
            outcome: seat.outcome.expect("decided"),
            report: seat.report.clone(),
            pending: true,
        });
    }

    /// The subtree is settled: write END, notify/ack, retire the seat.
    fn notify_and_ack_if_done(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let seat = self.seats.get_mut(&txn).expect("present");
        let outcome = seat.outcome.expect("decided");
        let pending = seat.any_ack_pending();
        seat.outcome_pending = pending;

        // END record: written wherever we logged anything. A PA abort
        // wrote nothing and writes nothing now (the whole point).
        let pa_presumed_abort = outcome == Outcome::Abort && !self.cfg.protocol.abort_needs_acks();
        let read_only_participant = seat.sent_vote == Some(Vote::ReadOnly);
        if !pa_presumed_abort && !read_only_participant {
            out.push(Action::Log {
                record: LogRecord::End { txn },
                durability: Durability::NonForced,
            });
        }

        if seat.is_root {
            // Root: tell the application (late path).
            let notify = if seat.notified {
                None
            } else {
                seat.notified = true;
                Some((outcome, seat.report.clone(), pending))
            };
            // Implied acknowledgment to a last agent we delegated to: it
            // rides on the next transaction's first frame rather than
            // paying for its own (§4 Last Agent; Figure 6).
            let implied_ack_to = match (seat.delegate, seat.sent_vote) {
                (Some(d), Some(Vote::Yes(f))) if f.last_agent_delegation => Some(d),
                _ => None,
            };
            if let Some((outcome, report, pending)) = notify {
                if pending {
                    self.metrics.outcome_pending_completions += 1;
                }
                out.push(Action::NotifyOutcome {
                    txn,
                    outcome,
                    report,
                    pending,
                });
            }
            if let Some(d) = implied_ack_to {
                self.owed.push(OwedAck {
                    to: d,
                    msg: ProtocolMsg::Ack {
                        txn,
                        report: DamageReport::clean(),
                        pending: false,
                    },
                });
            }
        } else if let Some(upstream) = seat.upstream {
            if !seat.is_delegate {
                // Subordinate: acknowledge upstream (unless the protocol
                // says nobody is waiting, or an early ack already went).
                let needs_ack = match outcome {
                    Outcome::Commit => self.cfg.protocol.commit_needs_acks(),
                    Outcome::Abort => self.cfg.protocol.abort_needs_acks(),
                };
                let already_acked = seat.notified; // early-ack path reuses the flag
                if needs_ack && !already_acked {
                    // PN (and the baseline) propagate damage reports all
                    // the way up; PA and PC report one hop only — child
                    // reports are absorbed here (§3: "heuristic decisions
                    // ... were only reported to the immediate
                    // coordinator").
                    let full = seat.report.clone();
                    let forward = match self.cfg.protocol {
                        ProtocolKind::PresumedNothing | ProtocolKind::Basic => full.clone(),
                        ProtocolKind::PresumedAbort | ProtocolKind::PresumedCommit => {
                            let mine = self.cfg.node;
                            let absorbed = full
                                .damaged
                                .iter()
                                .chain(full.heuristic_no_damage.iter())
                                .filter(|n| **n != mine)
                                .count();
                            self.metrics.damage_reports_absorbed += absorbed as u64;
                            DamageReport {
                                heuristic_no_damage: full
                                    .heuristic_no_damage
                                    .iter()
                                    .copied()
                                    .filter(|n| *n == mine)
                                    .collect(),
                                damaged: full
                                    .damaged
                                    .iter()
                                    .copied()
                                    .filter(|n| *n == mine)
                                    .collect(),
                                outcome_pending: full.outcome_pending.clone(),
                            }
                        }
                    };
                    self.send_or_defer_ack(txn, upstream, forward, pending, out);
                }
            }
        }
        self.finish(txn, now, out);
    }

    /// Retires a seat into the completed set.
    fn finish(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let mut seat = self.seats.remove(&txn).expect("present");
        let outcome = seat.outcome.expect("decided");
        seat.stage = Stage::Done;
        seat.finished_at = Some(now);

        // Protected variable: leave-out eligibility updates only when the
        // transaction commits (§4 Leaving Inactive Partners Out).
        if outcome == Outcome::Commit {
            for (node, ok) in seat.leave_out_votes.clone() {
                if ok {
                    self.leave_out_ok.insert(node);
                } else {
                    self.leave_out_ok.remove(&node);
                }
            }
        }

        // PA's presumption: aborted transactions leave no trace.
        let pa_presumed_abort = outcome == Outcome::Abort && !self.cfg.protocol.abort_needs_acks();
        if !pa_presumed_abort {
            self.finished.insert(txn, outcome);
        }
        out.push(Action::TxnEnded { txn });
        self.completed.insert(txn, seat);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Conversation failure: abort everything still free to abort whose
    /// coordinator just became unreachable. Participants that already
    /// voted YES stay in doubt (recovery territory); roots are unaffected
    /// (their children's silence is handled by the vote timer).
    fn on_partner_failed(&mut self, peer: NodeId, now: SimTime, out: &mut Vec<Action>) {
        let doomed: Vec<TxnId> = self
            .seats
            .values()
            .filter(|s| {
                s.upstream == Some(peer)
                    && !s.is_root
                    && s.sent_vote.is_none()
                    && matches!(s.stage, Stage::Working | Stage::Voting)
            })
            .map(|s| s.txn)
            .collect();
        for txn in doomed {
            let seat = self.seats.get_mut(&txn).expect("listed");
            seat.outcome = Some(Outcome::Abort);
            seat.decided_at = Some(now);
            // We never voted, so nobody upstream is waiting on us; drive
            // our own subtree down.
            self.decide_abort(txn, now, out);
        }
    }

    fn on_timer(
        &mut self,
        txn: TxnId,
        kind: TimerKind,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        let Some(seat) = self.seats.get(&txn) else {
            return Ok(()); // stale timer
        };
        match kind {
            TimerKind::VoteCollection => {
                if seat.stage == Stage::Voting {
                    // Missing votes count as NO.
                    if seat.is_root || seat.is_delegate {
                        self.decide(txn, Outcome::Abort, now, out);
                    } else if !matches!(seat.local, LocalState::Preparing | LocalState::Unprepared)
                    {
                        self.subordinate_vote_no(txn, now, out);
                    }
                }
            }
            TimerKind::AckCollection => {
                if seat.stage == Stage::Deciding {
                    self.retry_acks(txn, now, out);
                }
            }
            TimerKind::InDoubtQuery => {
                if matches!(
                    seat.stage,
                    Stage::InDoubt | Stage::Delegated | Stage::Working
                ) {
                    let target = if seat.stage == Stage::Delegated {
                        seat.delegate.or(seat.upstream)
                    } else {
                        seat.upstream
                    };
                    if let Some(t) = target {
                        self.push_send(out, t, ProtocolMsg::Query { txn });
                    }
                    out.push(Action::SetTimer {
                        txn,
                        kind: TimerKind::InDoubtQuery,
                        delay: self.cfg.timeouts.in_doubt_query,
                    });
                }
            }
            TimerKind::HeuristicDeadline => {
                if seat.stage == Stage::InDoubt && seat.heuristic.is_none() {
                    self.take_heuristic_decision(txn, now, out);
                }
            }
        }
        Ok(())
    }

    /// Re-sends the decision to unacknowledged children; under
    /// wait-for-outcome, one retry is allowed before the participant
    /// completes with "recovery in progress" (§4 Wait For Outcome).
    fn retry_acks(&mut self, txn: TxnId, now: SimTime, out: &mut Vec<Action>) {
        let outcome = self.seats[&txn].outcome.expect("deciding");
        let wait_for_outcome = self.cfg.opts.wait_for_outcome;
        // PN participants never query, so a handed-over (AckPending)
        // child can never be abandoned: wait-for-outcome still releases
        // the application (see `try_advance_deciding`), but a PN
        // coordinator keeps re-driving the decision until the ack
        // actually arrives.
        let keep_driving = self.cfg.protocol == ProtocolKind::PresumedNothing;
        let lagging: Vec<(NodeId, u8)> = self.seats[&txn]
            .children
            .iter()
            .filter_map(|c| match c.state {
                ChildState::DecisionSent { retries } => Some((c.node, retries)),
                _ => None,
            })
            .collect();
        for (node, retries) in lagging {
            if wait_for_outcome && retries >= 1 {
                // Give up waiting: mark pending, record it in the report.
                let seat = self.seats.get_mut(&txn).expect("present");
                seat.child_mut(node).state = ChildState::AckPending;
                seat.report.outcome_pending.push(node);
            } else {
                let seat = self.seats.get_mut(&txn).expect("present");
                seat.child_mut(node).state = ChildState::DecisionSent {
                    retries: retries.saturating_add(1),
                };
                self.push_send(out, node, ProtocolMsg::Decision { txn, outcome });
            }
        }
        if keep_driving {
            let handed: Vec<NodeId> = self.seats[&txn]
                .children
                .iter()
                .filter(|c| c.state == ChildState::AckPending)
                .map(|c| c.node)
                .collect();
            for node in handed {
                self.push_send(out, node, ProtocolMsg::Decision { txn, outcome });
            }
        }
        // Re-arm if anything is still outstanding.
        let still_waiting = self.seats[&txn]
            .children
            .iter()
            .any(|c| matches!(c.state, ChildState::DecisionSent { .. }))
            || self.seats[&txn].awaiting_initiator_ack
            || (keep_driving && self.seats[&txn].any_ack_pending());
        if still_waiting {
            out.push(Action::SetTimer {
                txn,
                kind: TimerKind::AckCollection,
                delay: self.cfg.timeouts.ack_collection,
            });
        }
        self.try_advance_deciding(txn, now, out);
    }

    /// The in-doubt window closed without an answer: decide unilaterally
    /// per policy (§1 / §3 heuristic decisions).
    fn take_heuristic_decision(&mut self, txn: TxnId, _now: SimTime, out: &mut Vec<Action>) {
        let decision = match self.cfg.heuristic {
            HeuristicPolicy::Never => return,
            HeuristicPolicy::CommitAfter(_) => HeuristicOutcome::Commit,
            HeuristicPolicy::AbortAfter(_) => HeuristicOutcome::Abort,
        };
        self.metrics.heuristic_decisions += 1;
        match decision {
            HeuristicOutcome::Commit => self.metrics.heuristic_commits += 1,
            HeuristicOutcome::Abort | HeuristicOutcome::Mixed => self.metrics.heuristic_aborts += 1,
        }
        let seat = self.seats.get_mut(&txn).expect("present");
        seat.heuristic = Some(decision);
        out.push(Action::Log {
            record: LogRecord::Heuristic { txn, decision },
            durability: Durability::Forced,
        });
        match decision {
            HeuristicOutcome::Commit => {
                out.push(Action::CommitLocal {
                    txn,
                    rm_durability: Durability::Forced,
                });
                seat.local = LocalState::Committed;
            }
            HeuristicOutcome::Abort | HeuristicOutcome::Mixed => {
                out.push(Action::AbortLocal {
                    txn,
                    rm_durability: Durability::Forced,
                });
                seat.local = LocalState::Aborted;
            }
        }
        // The seat stays in doubt protocol-wise: the real outcome is still
        // owed to us, and the damage comparison happens when it arrives.
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Rebuilds engine state from the durable log after a crash and
    /// returns the actions that restart distributed resolution:
    ///
    /// * interrupted voting (PN commit-pending / PC collecting, no
    ///   outcome) → abort and drive the listed subordinates;
    /// * in doubt (prepared, no outcome) → query the coordinator (PA,
    ///   basic, PC) or await the coordinator's re-drive (PN);
    /// * decided but not ended → re-propagate the outcome, re-collect
    ///   acknowledgments;
    /// * ended → retained in the finished index for queries.
    pub fn recover(
        &mut self,
        durable: &[(Lsn, StreamId, LogRecord)],
        now: SimTime,
    ) -> Result<Vec<Action>> {
        self.seats.clear();
        self.finished.clear();
        self.owed.clear();
        // completed is volatile bookkeeping; a fresh process starts empty.
        self.completed.clear();

        let mut out = Vec::new();
        for (txn, summary) in summarize(durable) {
            if summary.end {
                if let Some(outcome) = summary.outcome() {
                    self.finished.insert(txn, outcome);
                }
                continue;
            }
            if let Some(outcome) = summary.outcome() {
                // Decided but not finished: re-propagate and re-collect.
                let subs = match outcome {
                    Outcome::Commit => summary.committed.clone().unwrap_or_default(),
                    Outcome::Abort => summary.aborted.clone().unwrap_or_default(),
                };
                let mut seat = Seat::new(txn);
                seat.is_root = summary.prepared.is_none();
                if let Some((coord, _)) = summary.prepared {
                    seat.upstream = Some(coord);
                    // Long locks survives the crash: replaying the WAL
                    // re-arms the deferred ack, so the recovery re-ack
                    // goes back into the owed queue (piggybacked or
                    // flushed later) instead of paying an eager frame
                    // the original execution would not have sent.
                    seat.long_locks_deferred_ack = self.cfg.opts.long_locks;
                }
                seat.outcome = Some(outcome);
                seat.stage = Stage::Deciding;
                seat.local = match outcome {
                    Outcome::Commit => LocalState::Committed,
                    Outcome::Abort => LocalState::Aborted,
                };
                seat.commit_started = Some(now);
                seat.decided_at = Some(now);
                let expects_acks = match outcome {
                    Outcome::Commit => self.cfg.protocol.commit_needs_acks(),
                    Outcome::Abort => self.cfg.protocol.abort_needs_acks(),
                };
                for sub in subs {
                    seat.child_mut(sub).state = if expects_acks {
                        ChildState::DecisionSent { retries: 0 }
                    } else {
                        ChildState::Acked
                    };
                }
                // Local RMs may have lost unforced records; re-drive them
                // idempotently.
                match outcome {
                    Outcome::Commit => out.push(Action::CommitLocal {
                        txn,
                        rm_durability: self.rm_commit_durability(),
                    }),
                    Outcome::Abort => out.push(Action::AbortLocal {
                        txn,
                        rm_durability: Durability::NonForced,
                    }),
                }
                let targets: Vec<NodeId> = seat
                    .children
                    .iter()
                    .filter(|c| matches!(c.state, ChildState::DecisionSent { .. }))
                    .map(|c| c.node)
                    .collect();
                self.seats.insert(txn, seat);
                for node in &targets {
                    self.push_send(&mut out, *node, ProtocolMsg::Decision { txn, outcome });
                }
                if !targets.is_empty() {
                    out.push(Action::SetTimer {
                        txn,
                        kind: TimerKind::AckCollection,
                        delay: self.cfg.timeouts.ack_collection,
                    });
                }
                self.try_advance_deciding(txn, now, &mut out);
                continue;
            }
            if summary.interrupted_voting() {
                // The commit operation died mid-voting: abort and drive
                // every subordinate we had enrolled.
                let subs = summary
                    .commit_pending
                    .clone()
                    .or(summary.collecting.clone())
                    .unwrap_or_default();
                let mut seat = Seat::new(txn);
                seat.is_root = true;
                seat.commit_started = Some(now);
                for sub in subs {
                    seat.child_mut(sub).state = ChildState::PrepareSent;
                }
                self.seats.insert(txn, seat);
                self.decide(txn, Outcome::Abort, now, &mut out);
                continue;
            }
            if let Some((coordinator, subs)) = summary.prepared.clone() {
                // In doubt.
                let mut seat = Seat::new(txn);
                seat.upstream = Some(coordinator);
                seat.stage = Stage::InDoubt;
                seat.commit_started = Some(now);
                seat.heuristic = summary.heuristic;
                seat.local = if let Some(h) = summary.heuristic {
                    match h {
                        HeuristicOutcome::Commit => LocalState::Committed,
                        _ => LocalState::Aborted,
                    }
                } else {
                    LocalState::Yes {
                        reliable: false,
                        suspendable: false,
                    }
                };
                seat.sent_vote = Some(Vote::Yes(VoteFlags::NONE));
                for sub in subs {
                    seat.child_mut(sub).state = ChildState::VotedYes(VoteFlags::NONE);
                }
                // Was this the initiator of a delegated (last-agent)
                // transaction? Then the "coordinator" is the delegate and
                // the stage is Delegated; querying it works identically.
                self.seats.insert(txn, seat);
                if self.cfg.protocol != ProtocolKind::PresumedNothing {
                    self.push_send(&mut out, coordinator, ProtocolMsg::Query { txn });
                    out.push(Action::SetTimer {
                        txn,
                        kind: TimerKind::InDoubtQuery,
                        delay: self.cfg.timeouts.in_doubt_query,
                    });
                }
                if let Some(deadline) = self.cfg.heuristic.timeout() {
                    if summary.heuristic.is_none() {
                        out.push(Action::SetTimer {
                            txn,
                            kind: TimerKind::HeuristicDeadline,
                            delay: deadline,
                        });
                    }
                }
                continue;
            }
            // Only a heuristic record with nothing else — ignore.
        }
        Ok(self.coalesce(out))
    }

    /// After [`TmEngine::recover`], classifies one of the local resource
    /// managers' in-doubt transactions against the recovered TM state.
    /// Both harnesses resolve RM recovery through this one rule, so the
    /// unilateral-abort presumption cannot be wired differently in sim
    /// and live.
    pub fn recovered_disposition(&self, txn: TxnId) -> InDoubtDisposition {
        let outcome = self
            .finished_outcome(txn)
            .or_else(|| self.seat(txn).and_then(|s| s.outcome));
        match outcome {
            Some(Outcome::Commit) => InDoubtDisposition::Commit,
            Some(Outcome::Abort) => InDoubtDisposition::Abort,
            // The TM has no seat and no outcome: it never voted, so the
            // RM's prepared data can be rolled back unilaterally.
            None if self.seat(txn).is_none() => InDoubtDisposition::Abort,
            None => InDoubtDisposition::AwaitOutcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_rejects_invalid_config() {
        let cfg = EngineConfig::new(NodeId(0), ProtocolKind::PresumedAbort).with_opts(
            OptimizationConfig::none()
                .with_vote_reliable(true)
                .with_ack_mode(tpc_common::AckMode::Early),
        );
        assert!(TmEngine::new(cfg).is_err());
    }

    #[test]
    fn session_partner_registration_is_idempotent() {
        let mut e = TmEngine::new(EngineConfig::new(NodeId(0), ProtocolKind::Basic)).unwrap();
        e.add_session_partner(NodeId(1));
        e.add_session_partner(NodeId(1));
        assert_eq!(e.session_partners.len(), 1);
    }
}
