//! Per-transaction state held by a node's transaction manager.
//!
//! One [`Seat`] tracks one transaction at one node, whatever the node's
//! role — root coordinator, cascaded coordinator, leaf subordinate, last
//! agent, or several of these at once (a cascaded coordinator is both a
//! subordinate of its upstream and a coordinator of its children).

use tpc_common::{DamageReport, HeuristicOutcome, NodeId, Outcome, SimTime, TxnId, VoteFlags};

/// Where the transaction stands at this node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Data flowing; partners being enrolled.
    Working,
    /// Phase 1 in progress: local prepare outstanding and/or prepares sent
    /// to children, votes being collected.
    Voting,
    /// Last-agent initiator: everything prepared, decision delegated,
    /// awaiting the delegate's Decision message.
    Delegated,
    /// Subordinate that voted YES and awaits the outcome. The window in
    /// which heuristic decisions happen.
    InDoubt,
    /// Outcome known; propagating it and collecting acknowledgments.
    Deciding,
    /// Commit processing complete at this node.
    Done,
}

/// State of this node's local resource managers for the transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalState {
    /// Not yet asked to prepare.
    Unprepared,
    /// [`crate::Action::PrepareLocal`] emitted, reply outstanding.
    Preparing,
    /// Local RMs prepared and voting YES.
    Yes {
        /// All local RMs reliable.
        reliable: bool,
        /// Local application suspendable (ok-to-leave-out eligible).
        suspendable: bool,
    },
    /// Local RMs performed no updates.
    ReadOnly,
    /// A local RM refused to prepare.
    Refused,
    /// Local effects committed.
    Committed,
    /// Local effects rolled back.
    Aborted,
}

/// State of one direct subordinate in the commit tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildState {
    /// Work exchanged; not yet contacted for commit.
    Enrolled,
    /// Prepare sent, vote outstanding.
    PrepareSent,
    /// Voted YES with these qualifiers.
    VotedYes(VoteFlags),
    /// Voted READ-ONLY: out of phase 2 entirely.
    VotedReadOnly,
    /// Voted NO: already aborting on its own.
    VotedNo,
    /// This child is the last agent we delegated the decision to.
    Delegate,
    /// Outcome sent, acknowledgment outstanding.
    DecisionSent {
        /// Retries performed so far (wait-for-outcome allows one).
        retries: u8,
    },
    /// Acknowledged; subtree complete.
    Acked,
    /// Replied "recovery in progress" (wait-for-outcome).
    AckPending,
}

impl ChildState {
    /// Has this child produced a vote?
    pub fn voted(&self) -> bool {
        matches!(
            self,
            ChildState::VotedYes(_) | ChildState::VotedReadOnly | ChildState::VotedNo
        )
    }

    /// Is this child's subtree finished from the coordinator's view
    /// (acked, pending-acked, or never owed anything)? A `Delegate` child
    /// counts: the initiator owes *it* the (implied) ack, not the other
    /// way around.
    pub fn settled(&self) -> bool {
        matches!(
            self,
            ChildState::Acked
                | ChildState::AckPending
                | ChildState::VotedReadOnly
                | ChildState::VotedNo
                | ChildState::Delegate
        )
    }
}

/// One direct subordinate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Child {
    /// The subordinate node.
    pub node: NodeId,
    /// Protocol state.
    pub state: ChildState,
    /// We sent this child `Work` in this transaction (as opposed to a
    /// standing partner enrolled without a conversation). Carried in the
    /// Prepare as `expect_work` so a subordinate that lost the work in a
    /// crash refuses to vote YES on an empty seat.
    pub worked: bool,
}

/// Per-transaction state at one node.
#[derive(Clone, Debug)]
pub struct Seat {
    /// The transaction.
    pub txn: TxnId,
    /// Upstream coordinator, if this node is a subordinate.
    pub upstream: Option<NodeId>,
    /// True once this node initiated commit (root of the commit tree).
    pub is_root: bool,
    /// Direct subordinates.
    pub children: Vec<Child>,
    /// Local RM state.
    pub local: LocalState,
    /// Protocol stage.
    pub stage: Stage,
    /// The decided / learned global outcome.
    pub outcome: Option<Outcome>,
    /// Damage information merged from local heuristics and children acks.
    pub report: DamageReport,
    /// Our upstream asked us to defer the commit Ack (long locks).
    pub long_locks_deferred_ack: bool,
    /// A heuristic decision taken locally while in doubt.
    pub heuristic: Option<HeuristicOutcome>,
    /// We volunteered an unsolicited vote.
    pub self_prepared: bool,
    /// The child we delegated the commit decision to (last agent).
    pub delegate: Option<NodeId>,
    /// This seat was delegated the decision by `upstream` (we are a last
    /// agent); the initiator's ack will be implied, not explicit.
    pub is_delegate: bool,
    /// Subordinates whose acks are "recovery in progress" (wait for
    /// outcome): the app was (or will be) notified with `pending = true`.
    pub outcome_pending: bool,
    /// The application has already been told the outcome.
    pub notified: bool,
    /// A protocol violation was detected (two coordinators, conflicting
    /// work senders); the seat will vote NO / abort.
    pub poisoned: bool,
    /// The vote we sent upstream, kept for idempotent re-delivery.
    pub sent_vote: Option<tpc_common::Vote>,
    /// (Delegate only) the delegating initiator force-wrote a prepared
    /// record, so it is included in the commit record and owes an
    /// (implied) acknowledgment. False when the initiator delegated with
    /// a READ-ONLY vote.
    pub initiator_prepared: bool,
    /// (Delegate only) still waiting for the initiator's implied ack.
    pub awaiting_initiator_ack: bool,
    /// `ok_to_leave_out` qualifiers captured at vote time, applied as a
    /// protected variable only if the transaction commits.
    pub leave_out_votes: Vec<(NodeId, bool)>,
    /// Snapshot of "every vote below this seat was reliable", taken the
    /// moment Phase 1 completes (child states mutate afterwards, so the
    /// live predicate cannot be re-evaluated later).
    pub subtree_reliable: bool,
    /// When commit processing started here (Prepare received or commit
    /// requested) — for elapsed/lock-time metrics.
    pub commit_started: Option<SimTime>,
    /// When the outcome became known here.
    pub decided_at: Option<SimTime>,
    /// When the seat finished.
    pub finished_at: Option<SimTime>,
}

impl Seat {
    /// A fresh seat for `txn`.
    pub fn new(txn: TxnId) -> Self {
        Seat {
            txn,
            upstream: None,
            is_root: false,
            children: Vec::new(),
            local: LocalState::Unprepared,
            stage: Stage::Working,
            outcome: None,
            report: DamageReport::clean(),
            long_locks_deferred_ack: false,
            heuristic: None,
            self_prepared: false,
            delegate: None,
            is_delegate: false,
            outcome_pending: false,
            notified: false,
            poisoned: false,
            sent_vote: None,
            initiator_prepared: false,
            awaiting_initiator_ack: false,
            leave_out_votes: Vec::new(),
            subtree_reliable: false,
            commit_started: None,
            decided_at: None,
            finished_at: None,
        }
    }

    /// Finds (or enrolls) the child entry for `node`.
    pub fn child_mut(&mut self, node: NodeId) -> &mut Child {
        if let Some(i) = self.children.iter().position(|c| c.node == node) {
            &mut self.children[i]
        } else {
            self.children.push(Child {
                node,
                state: ChildState::Enrolled,
                worked: false,
            });
            self.children.last_mut().expect("just pushed")
        }
    }

    /// The child entry for `node`, if enrolled.
    pub fn child(&self, node: NodeId) -> Option<&Child> {
        self.children.iter().find(|c| c.node == node)
    }

    /// True when every child has voted.
    pub fn all_votes_in(&self) -> bool {
        self.children.iter().all(|c| c.state.voted())
    }

    /// True if any child voted NO.
    pub fn any_vote_no(&self) -> bool {
        self.children.iter().any(|c| c.state == ChildState::VotedNo)
    }

    /// True when every child voted READ-ONLY.
    pub fn all_children_read_only(&self) -> bool {
        self.children
            .iter()
            .all(|c| c.state == ChildState::VotedReadOnly)
    }

    /// True when every YES-voting child also asserted `ok_to_leave_out`.
    pub fn all_yes_children_leave_out(&self) -> bool {
        self.children.iter().all(|c| match c.state {
            ChildState::VotedYes(f) => f.ok_to_leave_out,
            _ => true,
        })
    }

    /// True when every YES-voting child asserted `reliable`.
    pub fn all_yes_children_reliable(&self) -> bool {
        self.children.iter().all(|c| match c.state {
            ChildState::VotedYes(f) => f.reliable,
            _ => true,
        })
    }

    /// The children owed the decision (voted YES, not the delegate).
    pub fn decision_targets(&self) -> Vec<NodeId> {
        self.children
            .iter()
            .filter(|c| matches!(c.state, ChildState::VotedYes(_)))
            .map(|c| c.node)
            .collect()
    }

    /// True when every child subtree is settled (acked / pending / never
    /// owed the decision).
    pub fn all_settled(&self) -> bool {
        self.children.iter().all(|c| c.state.settled())
    }

    /// True if some child reported "recovery in progress".
    pub fn any_ack_pending(&self) -> bool {
        self.children
            .iter()
            .any(|c| c.state == ChildState::AckPending)
    }

    /// Local state counts as a YES for voting purposes?
    pub fn local_yes(&self) -> bool {
        matches!(self.local, LocalState::Yes { .. })
    }

    /// Local reliable flag (false unless prepared-yes).
    pub fn local_reliable(&self) -> bool {
        matches!(self.local, LocalState::Yes { reliable: true, .. })
    }

    /// Local suspendable flag.
    pub fn local_suspendable(&self) -> bool {
        matches!(
            self.local,
            LocalState::Yes {
                suspendable: true,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    fn seat() -> Seat {
        Seat::new(TxnId::new(NodeId(0), 1))
    }

    #[test]
    fn child_mut_enrolls_once() {
        let mut s = seat();
        s.child_mut(NodeId(1)).state = ChildState::PrepareSent;
        s.child_mut(NodeId(1));
        assert_eq!(s.children.len(), 1);
        assert_eq!(s.children[0].state, ChildState::PrepareSent);
        s.child_mut(NodeId(2));
        assert_eq!(s.children.len(), 2);
    }

    #[test]
    fn vote_aggregation_predicates() {
        let mut s = seat();
        s.child_mut(NodeId(1)).state = ChildState::VotedYes(VoteFlags::NONE);
        s.child_mut(NodeId(2)).state = ChildState::PrepareSent;
        assert!(!s.all_votes_in());
        s.child_mut(NodeId(2)).state = ChildState::VotedReadOnly;
        assert!(s.all_votes_in());
        assert!(!s.any_vote_no());
        assert!(!s.all_children_read_only());
        s.child_mut(NodeId(1)).state = ChildState::VotedNo;
        assert!(s.any_vote_no());
    }

    #[test]
    fn decision_targets_skip_read_only_and_no() {
        let mut s = seat();
        s.child_mut(NodeId(1)).state = ChildState::VotedYes(VoteFlags::NONE);
        s.child_mut(NodeId(2)).state = ChildState::VotedReadOnly;
        s.child_mut(NodeId(3)).state = ChildState::VotedNo;
        assert_eq!(s.decision_targets(), vec![NodeId(1)]);
    }

    #[test]
    fn settled_logic() {
        let mut s = seat();
        s.child_mut(NodeId(1)).state = ChildState::Acked;
        s.child_mut(NodeId(2)).state = ChildState::VotedReadOnly;
        assert!(s.all_settled());
        s.child_mut(NodeId(3)).state = ChildState::DecisionSent { retries: 0 };
        assert!(!s.all_settled());
        s.child_mut(NodeId(3)).state = ChildState::AckPending;
        assert!(s.all_settled());
        assert!(s.any_ack_pending());
    }

    #[test]
    fn flag_aggregation() {
        let mut s = seat();
        let leave_out = VoteFlags {
            ok_to_leave_out: true,
            reliable: true,
            ..VoteFlags::NONE
        };
        s.child_mut(NodeId(1)).state = ChildState::VotedYes(leave_out);
        s.child_mut(NodeId(2)).state = ChildState::VotedReadOnly;
        assert!(s.all_yes_children_leave_out());
        assert!(s.all_yes_children_reliable());
        s.child_mut(NodeId(3)).state = ChildState::VotedYes(VoteFlags::NONE);
        assert!(!s.all_yes_children_leave_out());
        assert!(!s.all_yes_children_reliable());
    }

    #[test]
    fn local_state_helpers() {
        let mut s = seat();
        assert!(!s.local_yes());
        s.local = LocalState::Yes {
            reliable: true,
            suspendable: false,
        };
        assert!(s.local_yes());
        assert!(s.local_reliable());
        assert!(!s.local_suspendable());
    }
}
