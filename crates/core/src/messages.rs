//! Protocol messages and their wire encoding.
//!
//! Messages travel in **bundles**: one network frame may carry several
//! protocol messages to the same destination. Bundling is what makes the
//! long-locks and implied-acknowledgment optimizations free on the wire —
//! a buffered `Ack` rides along with the first message of the next
//! transaction instead of paying for its own frame (§4 *Long Locks*,
//! *Last Agent*). The simulator and the live transport both count one
//! *flow* per frame, which is exactly the paper's message-count metric.

use tpc_common::wire::{Decode, Decoder, Encode, Encoder};
use tpc_common::{DamageReport, Error, Outcome, Result, TraceCtx, TxnId, Vote};

/// One protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolMsg {
    /// Application data for `txn`. Sending work enrolls the receiver as a
    /// subordinate of the sender in the transaction's commit tree;
    /// receiving it records the sender as the upstream coordinator. The
    /// payload is opaque to the engine (the simulator encodes key-value
    /// operations in it). A `Work` frame also serves as the *implied
    /// acknowledgment* of a previous last-agent commit (§4).
    Work {
        /// Transaction the work belongs to.
        txn: TxnId,
        /// Opaque application payload.
        payload: Vec<u8>,
    },
    /// Phase 1 request: prepare to commit. `long_locks` asks the
    /// subordinate to buffer its eventual commit Ack and piggyback it on
    /// the next transaction (§4 *Long Locks*; Figure 7's "you be in send
    /// state / long locks" indication).
    Prepare {
        /// Transaction being prepared.
        txn: TxnId,
        /// Coordinator requests the long-locks ack deferral.
        long_locks: bool,
        /// The coordinator conversed with this subordinate (sent it
        /// `Work`) during the transaction. A receiver with no trace of
        /// the transaction must then vote NO: its state was lost in a
        /// crash, or the work never arrived — either way a YES would
        /// commit a transaction whose effects at this node are gone. A
        /// standing partner enrolled without work sees `false` and may
        /// vote READ-ONLY as usual.
        expect_work: bool,
    },
    /// A vote (Phase 1 response, or volunteered). The `Vote` carries the
    /// optimization qualifiers: `ok_to_leave_out`, `reliable`,
    /// `unsolicited`, and `last_agent_delegation` (which turns a YES vote
    /// into a delegation of the commit decision — §4 *Last Agent*).
    VoteMsg {
        /// Transaction being voted on.
        txn: TxnId,
        /// The vote itself.
        vote: Vote,
    },
    /// Phase 2: the outcome, propagated down the tree (and, for a last
    /// agent, up to the delegating initiator).
    Decision {
        /// Transaction being decided.
        txn: TxnId,
        /// The global outcome.
        outcome: Outcome,
    },
    /// Acknowledgment that the outcome has been processed. `report`
    /// carries heuristic-damage information upstream (reliably to the root
    /// under PN's late acks; one hop only under PA). `pending` is the
    /// wait-for-outcome indication: "recovery is in progress" — some part
    /// of the subtree has not confirmed yet (§4 *Wait For Outcome*).
    Ack {
        /// Transaction being acknowledged.
        txn: TxnId,
        /// Heuristic-damage report for the acknowledged subtree.
        report: DamageReport,
        /// True if some subtree member's outcome is still unknown.
        pending: bool,
    },
    /// Recovery: an in-doubt participant asks its coordinator for the
    /// outcome (subordinate-driven recovery, the PA/basic style).
    Query {
        /// Transaction in doubt.
        txn: TxnId,
    },
    /// Recovery: the coordinator genuinely does not know (only possible
    /// under the baseline protocol after information loss; PA answers
    /// Abort, PC answers Commit by presumption). The subordinate stays
    /// blocked — heuristic pressure territory.
    OutcomeUnknown {
        /// Transaction queried.
        txn: TxnId,
    },
}

impl ProtocolMsg {
    /// The transaction this message concerns.
    pub fn txn(&self) -> TxnId {
        match self {
            ProtocolMsg::Work { txn, .. }
            | ProtocolMsg::Prepare { txn, .. }
            | ProtocolMsg::VoteMsg { txn, .. }
            | ProtocolMsg::Decision { txn, .. }
            | ProtocolMsg::Ack { txn, .. }
            | ProtocolMsg::Query { txn }
            | ProtocolMsg::OutcomeUnknown { txn } => *txn,
        }
    }

    /// Short tag for traces (the arrows of the paper's figures).
    pub fn kind_name(&self) -> &'static str {
        match self {
            ProtocolMsg::Work { .. } => "Work",
            ProtocolMsg::Prepare { .. } => "Prepare",
            ProtocolMsg::VoteMsg { vote, .. } => match vote {
                Vote::Yes(f) if f.last_agent_delegation => "VoteYes(last-agent)",
                Vote::Yes(f) if f.unsolicited => "VoteYes(unsolicited)",
                Vote::Yes(_) => "VoteYes",
                Vote::No => "VoteNo",
                Vote::ReadOnly => "VoteReadOnly",
            },
            ProtocolMsg::Decision {
                outcome: Outcome::Commit,
                ..
            } => "Commit",
            ProtocolMsg::Decision {
                outcome: Outcome::Abort,
                ..
            } => "Abort",
            ProtocolMsg::Ack { pending: false, .. } => "Ack",
            ProtocolMsg::Ack { pending: true, .. } => "Ack(pending)",
            ProtocolMsg::Query { .. } => "Query",
            ProtocolMsg::OutcomeUnknown { .. } => "OutcomeUnknown",
        }
    }
}

const TAG_WORK: u8 = 1;
const TAG_PREPARE: u8 = 2;
const TAG_VOTE: u8 = 3;
const TAG_DECISION: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_QUERY: u8 = 6;
const TAG_UNKNOWN: u8 = 7;

impl Encode for ProtocolMsg {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ProtocolMsg::Work { txn, payload } => {
                e.put_u8(TAG_WORK);
                txn.encode(e);
                e.put_bytes(payload);
            }
            ProtocolMsg::Prepare {
                txn,
                long_locks,
                expect_work,
            } => {
                e.put_u8(TAG_PREPARE);
                txn.encode(e);
                e.put_bool(*long_locks);
                e.put_bool(*expect_work);
            }
            ProtocolMsg::VoteMsg { txn, vote } => {
                e.put_u8(TAG_VOTE);
                txn.encode(e);
                vote.encode(e);
            }
            ProtocolMsg::Decision { txn, outcome } => {
                e.put_u8(TAG_DECISION);
                txn.encode(e);
                outcome.encode(e);
            }
            ProtocolMsg::Ack {
                txn,
                report,
                pending,
            } => {
                e.put_u8(TAG_ACK);
                txn.encode(e);
                report.encode(e);
                e.put_bool(*pending);
            }
            ProtocolMsg::Query { txn } => {
                e.put_u8(TAG_QUERY);
                txn.encode(e);
            }
            ProtocolMsg::OutcomeUnknown { txn } => {
                e.put_u8(TAG_UNKNOWN);
                txn.encode(e);
            }
        }
    }
}

impl Decode for ProtocolMsg {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(match d.get_u8()? {
            TAG_WORK => ProtocolMsg::Work {
                txn: TxnId::decode(d)?,
                payload: d.get_bytes()?,
            },
            TAG_PREPARE => ProtocolMsg::Prepare {
                txn: TxnId::decode(d)?,
                long_locks: d.get_bool()?,
                expect_work: d.get_bool()?,
            },
            TAG_VOTE => ProtocolMsg::VoteMsg {
                txn: TxnId::decode(d)?,
                vote: Vote::decode(d)?,
            },
            TAG_DECISION => ProtocolMsg::Decision {
                txn: TxnId::decode(d)?,
                outcome: Outcome::decode(d)?,
            },
            TAG_ACK => ProtocolMsg::Ack {
                txn: TxnId::decode(d)?,
                report: DamageReport::decode(d)?,
                pending: d.get_bool()?,
            },
            TAG_QUERY => ProtocolMsg::Query {
                txn: TxnId::decode(d)?,
            },
            TAG_UNKNOWN => ProtocolMsg::OutcomeUnknown {
                txn: TxnId::decode(d)?,
            },
            t => return Err(Error::Codec(format!("invalid message tag {t}"))),
        })
    }
}

/// A network frame: one or more messages to the same destination. Counts
/// as **one flow** in the paper's metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bundle(pub Vec<ProtocolMsg>);

impl Encode for Bundle {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.0.len() as u32);
        for m in &self.0 {
            m.encode(e);
        }
    }
}

impl Decode for Bundle {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let n = d.get_u32()? as usize;
        if n > d.remaining() {
            return Err(Error::Codec(format!("bundle claims {n} messages")));
        }
        let mut msgs = Vec::with_capacity(n);
        for _ in 0..n {
            msgs.push(ProtocolMsg::decode(d)?);
        }
        Ok(Bundle(msgs))
    }
}

/// What actually travels in one transport frame: an optional trace
/// context (one flag byte when absent — tracing off costs almost
/// nothing on the wire) followed by the message bundle. The context is
/// consumed by the receiving *driver*, never the engine, so protocol
/// behaviour is identical with and without it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Trace context stamped by the sending driver when tracing is on.
    pub ctx: Option<TraceCtx>,
    /// The protocol messages (one flow in the paper's metric).
    pub bundle: Bundle,
}

impl Encode for Frame {
    fn encode(&self, e: &mut Encoder) {
        e.put_option(&self.ctx);
        self.bundle.encode(e);
    }
}

impl Decode for Frame {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(Frame {
            ctx: d.get_option()?,
            bundle: Bundle::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{NodeId, VoteFlags};

    fn t() -> TxnId {
        TxnId::new(NodeId(1), 7)
    }

    fn samples() -> Vec<ProtocolMsg> {
        vec![
            ProtocolMsg::Work {
                txn: t(),
                payload: b"put a 1".to_vec(),
            },
            ProtocolMsg::Prepare {
                txn: t(),
                long_locks: true,
                expect_work: true,
            },
            ProtocolMsg::VoteMsg {
                txn: t(),
                vote: Vote::Yes(VoteFlags {
                    ok_to_leave_out: true,
                    reliable: true,
                    unsolicited: false,
                    last_agent_delegation: true,
                    expect_work: true,
                }),
            },
            ProtocolMsg::VoteMsg {
                txn: t(),
                vote: Vote::ReadOnly,
            },
            ProtocolMsg::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
            ProtocolMsg::Ack {
                txn: t(),
                report: DamageReport {
                    heuristic_no_damage: vec![NodeId(5)],
                    damaged: vec![NodeId(6)],
                    outcome_pending: vec![],
                },
                pending: true,
            },
            ProtocolMsg::Query { txn: t() },
            ProtocolMsg::OutcomeUnknown { txn: t() },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for m in samples() {
            let b = m.encode_to_bytes();
            assert_eq!(ProtocolMsg::decode_all(&b).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn bundle_roundtrips() {
        let bundle = Bundle(samples());
        let b = bundle.encode_to_bytes();
        assert_eq!(Bundle::decode_all(&b).unwrap(), bundle);
    }

    #[test]
    fn txn_accessor() {
        for m in samples() {
            assert_eq!(m.txn(), t());
        }
    }

    #[test]
    fn kind_names_distinguish_vote_flavours() {
        let la = ProtocolMsg::VoteMsg {
            txn: t(),
            vote: Vote::Yes(VoteFlags {
                last_agent_delegation: true,
                ..VoteFlags::NONE
            }),
        };
        assert_eq!(la.kind_name(), "VoteYes(last-agent)");
        let un = ProtocolMsg::VoteMsg {
            txn: t(),
            vote: Vote::Yes(VoteFlags {
                unsolicited: true,
                ..VoteFlags::NONE
            }),
        };
        assert_eq!(un.kind_name(), "VoteYes(unsolicited)");
        let ro = ProtocolMsg::VoteMsg {
            txn: t(),
            vote: Vote::ReadOnly,
        };
        assert_eq!(ro.kind_name(), "VoteReadOnly");
    }

    #[test]
    fn frame_roundtrips_with_and_without_ctx() {
        use tpc_common::SimTime;
        let plain = Frame {
            ctx: None,
            bundle: Bundle(samples()),
        };
        let b = plain.encode_to_bytes();
        assert_eq!(Frame::decode_all(&b).unwrap(), plain);
        // Exactly one flag byte of overhead versus the bare bundle.
        assert_eq!(b.len(), plain.bundle.encode_to_bytes().len() + 1);

        let traced = Frame {
            ctx: Some(TraceCtx {
                txn: t(),
                parent_seat: 77,
                sent_at: SimTime(1234),
            }),
            bundle: Bundle(samples()),
        };
        let b = traced.encode_to_bytes();
        assert_eq!(Frame::decode_all(&b).unwrap(), traced);
    }

    #[test]
    fn corrupt_bundle_rejected() {
        let mut e = Encoder::new();
        e.put_u32(1000);
        assert!(Bundle::decode_all(&e.finish()).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(ProtocolMsg::decode_all(&[0xAA]).is_err());
    }
}
