//! The node driver: the single interpreter of engine [`Action`]s.
//!
//! The engine is sans-IO — [`crate::TmEngine::handle`] returns a list of
//! [`Action`]s and performs none of them. Every harness therefore needs
//! an interpreter that turns actions into effects: frames on a wire, log
//! appends, resource-manager round-trips, timers, application
//! notifications. The paper's methodology is *exact counting* of those
//! effects (message flows and forced log writes per protocol variant,
//! Tables 2–4), so the reproduction lives or dies on every harness
//! interpreting the stream identically.
//!
//! This module owns that interpreter once. [`Driver::apply`] walks the
//! action stream and calls out through five small traits — [`Wire`],
//! [`LogHost`], [`RmHost`], [`TimerHost`], [`AppSink`] — that isolate
//! exactly the seams where the simulator (virtual time, scheduler,
//! in-memory network) and the live runtime (wall clock, threads, real
//! transports) legitimately differ. Everything environment-independent —
//! timer generations for stale-timer invalidation, flow and forced-write
//! counters, damage-report accounting, the recursion order of local
//! prepare votes, group-commit suspension — lives here and cannot drift
//! between harnesses.
//!
//! A harness embeds a [`Driver`] per node and feeds it events:
//!
//! ```text
//! driver.handle(&mut host, now, event)?      // engine + interpret
//! driver.timer_is_current(txn, kind, gen)    // before firing a timer
//! driver.stats(), driver.engine().metrics()  // uniform observability
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use tpc_common::{DamageReport, NodeId, Outcome, Result, SimDuration, SimTime, TraceCtx, TxnId};
use tpc_obs::{Obs, Phase, Span};
use tpc_wal::{Durability, LogManager, LogRecord};

use crate::engine::{EngineConfig, TmEngine};
use crate::event::{Action, Event, LocalVote, TimerKind};
use crate::messages::ProtocolMsg;
use crate::metrics::EngineMetrics;

/// Picks the log a resource manager writes to: its own, or (under the
/// shared-log optimization, §4 *Sharing the Log*) the TM's, whose forces
/// then cover the RM records.
///
/// Both harnesses route through this one function, so the optimization
/// cannot be wired differently in sim and live.
pub fn rm_log_of<'a>(
    rm_log: Option<&'a mut (dyn LogManager + 'a)>,
    tm_log: &'a mut (dyn LogManager + 'a),
) -> &'a mut (dyn LogManager + 'a) {
    match rm_log {
        Some(own) => own,
        None => tm_log,
    }
}

/// [`rm_log_of`] for the common `Option<ConcreteLog>` (or boxed trait
/// object) storage shape.
pub fn rm_log_slot<'a, L: LogManager + 'a>(
    rm_log: Option<&'a mut L>,
    tm_log: &'a mut (dyn LogManager + 'a),
) -> &'a mut (dyn LogManager + 'a) {
    rm_log_of(rm_log.map(|l| l as &mut dyn LogManager), tm_log)
}

/// What the host did with a TM log append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogControl {
    /// The record is appended (and flushed if forced); keep going.
    Done,
    /// The record joined a group-commit batch that is still filling. The
    /// driver hands the *rest* of the action stream to
    /// [`LogHost::suspend_rest`] and stops; the host resumes it when the
    /// batch flushes.
    Suspend,
}

/// What the host did with a local-prepare request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrepareControl {
    /// The local vote is known now; the driver feeds
    /// [`Event::LocalPrepared`] straight back to the engine and splices
    /// the resulting actions in front of the remaining stream (the same
    /// order direct recursion would produce).
    Vote(LocalVote),
    /// The vote will arrive later as an [`Event::LocalPrepared`] the
    /// host delivers itself (deferred voting, or a harness that models
    /// prepare latency by scheduling the reply).
    Async,
}

/// Frame egress.
pub trait Wire {
    /// Sends one frame (one *flow* in the paper's counting) to `to`.
    /// `ctx` is the trace context to propagate (present only when the
    /// sending driver has tracing enabled); hosts put it on the wire so
    /// the receiving driver can stitch cross-node span trees.
    fn send(&mut self, now: SimTime, to: NodeId, ctx: Option<TraceCtx>, msgs: Vec<ProtocolMsg>);
}

/// TM log appends (the forced/non-forced distinction the paper counts).
pub trait LogHost {
    /// Appends `record` to the TM stream. `now` is a cursor: a host that
    /// models flush latency advances it so later effects of the same
    /// action batch happen after the force completes.
    fn append_tm(
        &mut self,
        now: &mut SimTime,
        record: LogRecord,
        durability: Durability,
    ) -> LogControl;

    /// Receives the remainder of the action stream after `append_tm`
    /// returned [`LogControl::Suspend`]. Hosts that never suspend keep
    /// the default.
    fn suspend_rest(&mut self, rest: Vec<Action>) {
        debug_assert!(
            rest.is_empty(),
            "host returned LogControl::Suspend but does not store suspended actions"
        );
    }
}

/// Local resource-manager round-trips.
pub trait RmHost {
    /// Prepares all local RMs for `txn` and reports how the vote will be
    /// delivered. `now` is the same advancing cursor as in
    /// [`LogHost::append_tm`].
    fn prepare_local(
        &mut self,
        now: &mut SimTime,
        txn: TxnId,
        rm_durability: Durability,
    ) -> PrepareControl;

    /// Commits all local RMs (fire-and-forget).
    fn commit_local(&mut self, now: &mut SimTime, txn: TxnId, rm_durability: Durability);

    /// Aborts all local RMs (fire-and-forget).
    fn abort_local(&mut self, now: &mut SimTime, txn: TxnId, rm_durability: Durability);

    /// Releases a read-only transaction's local resources without
    /// logging.
    fn forget_local(&mut self, now: SimTime, txn: TxnId);

    /// Commit processing finished at this node; per-transaction harness
    /// state can be dropped.
    fn txn_ended(&mut self, txn: TxnId);
}

/// Timer arm/cancel.
///
/// The driver assigns a generation to every armed timer and owns the
/// staleness bookkeeping; the host only has to remember `(txn, kind,
/// gen)` alongside its deadline representation and ask
/// [`Driver::timer_is_current`] before firing.
pub trait TimerHost {
    /// Arms (or re-arms) a timer `delay` from `now`.
    fn set_timer(
        &mut self,
        now: SimTime,
        txn: TxnId,
        kind: TimerKind,
        delay: SimDuration,
        gen: u64,
    );

    /// Cancels a timer. The driver already invalidated the generation,
    /// so lazily-cancelling hosts (heap + generation check) keep the
    /// default no-op.
    fn cancel_timer(&mut self, _txn: TxnId, _kind: TimerKind) {}
}

/// Outcome delivery to the application.
pub trait AppSink {
    /// Reports the transaction outcome (with damage report and the
    /// wait-for-outcome `pending` indication).
    fn notify_outcome(
        &mut self,
        now: SimTime,
        txn: TxnId,
        outcome: Outcome,
        report: DamageReport,
        pending: bool,
    );
}

/// The full set of environment seams a harness provides.
pub trait NodeHost: Wire + LogHost + RmHost + TimerHost + AppSink {}

impl<T: Wire + LogHost + RmHost + TimerHost + AppSink> NodeHost for T {}

/// Effect counters maintained by the driver, identically for every
/// harness. Previously the simulator kept (some of) these privately; the
/// live runtime now reports them too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Frames handed to the wire (paper *flows*, including Work frames).
    pub flows_sent: u64,
    /// TM log appends.
    pub log_writes: u64,
    /// TM log appends that were forced.
    pub forced_writes: u64,
    /// Outcomes delivered to the application.
    pub outcomes: u64,
    /// Outcomes whose damage report recorded conflicting heuristic
    /// decisions.
    pub damaged_outcomes: u64,
    /// Outcomes delivered with "recovery in progress" pending.
    pub pending_outcomes: u64,
}

impl DriverStats {
    /// Folds another driver's counters into this one (per-lane drivers on
    /// a multi-lane node roll up to node totals).
    pub fn merge(&mut self, other: &DriverStats) {
        self.flows_sent += other.flows_sent;
        self.log_writes += other.log_writes;
        self.forced_writes += other.forced_writes;
        self.outcomes += other.outcomes;
        self.damaged_outcomes += other.damaged_outcomes;
        self.pending_outcomes += other.pending_outcomes;
    }
}

/// Milestone timestamps for one in-flight transaction seat, from which
/// the phase intervals are derived when the seat ends.
#[derive(Clone, Copy, Debug)]
struct TxnMarks {
    /// First event that touched the seat.
    begin: SimTime,
    /// Commit requested locally / Prepare received / self-prepare.
    commit_start: Option<SimTime>,
    /// Decision record (Committed/Aborted) appended to the TM stream.
    decided: Option<SimTime>,
    /// Outcome delivered to the application.
    outcome_at: Option<SimTime>,
    /// Globally-unique id for this node's participation in the
    /// transaction (node id in the high bits); stamped on every span the
    /// seat emits and propagated on the wire as the parent of downstream
    /// seats.
    seat: u64,
    /// Seat id of the upstream sender that enrolled this node, from the
    /// first wire [`TraceCtx`] seen for the transaction. `None` at the
    /// transaction's root.
    parent: Option<u64>,
}

/// Driver-side phase observation: milestone capture feeding an [`Obs`]
/// recorder. Attached with [`Driver::set_obs`]; absent (the default) the
/// driver pays a single `Option` check per event.
struct ObsState {
    obs: Arc<Obs>,
    node: NodeId,
    marks: HashMap<TxnId, TxnMarks>,
    /// Monotonic per-driver seat counter (low bits of the seat id).
    next_seat: u64,
    /// Wire trace contexts received before the seat's first event
    /// created its marks entry: txn → parent seat id.
    remote: HashMap<TxnId, u64>,
}

impl ObsState {
    /// Record milestones implied by an incoming event, before the engine
    /// sees it.
    fn observe_event(&mut self, now: SimTime, event: &Event) {
        let txn = match event {
            Event::SendWork { txn, .. }
            | Event::CommitRequested { txn }
            | Event::AbortRequested { txn }
            | Event::SelfPrepare { txn }
            | Event::LocalPrepared { txn, .. }
            | Event::TimerFired { txn, .. } => *txn,
            Event::MsgReceived { msg, .. } => msg.txn(),
            Event::PartnerFailed { .. } => return,
        };
        if let std::collections::hash_map::Entry::Vacant(v) = self.marks.entry(txn) {
            self.next_seat += 1;
            v.insert(TxnMarks {
                begin: now,
                commit_start: None,
                decided: None,
                outcome_at: None,
                seat: ((u64::from(self.node.0) + 1) << 40) | self.next_seat,
                parent: self.remote.get(&txn).copied(),
            });
        }
        let marks = self.marks.get_mut(&txn).expect("just inserted");
        let voting_starts = matches!(
            event,
            Event::CommitRequested { .. }
                | Event::AbortRequested { .. }
                | Event::SelfPrepare { .. }
                | Event::MsgReceived {
                    msg: ProtocolMsg::Prepare { .. },
                    ..
                }
        );
        if voting_starts && marks.commit_start.is_none() {
            marks.commit_start = Some(now);
        }
    }

    /// A wire frame carried a trace context. The *first* context seen for
    /// a transaction this node has no seat for yet names the enrolling
    /// sender: it becomes the seat's parent. Later contexts (votes and
    /// acks flowing back up, decision re-drives) are ignored so the tree
    /// stays acyclic with the edge pointing at the true enroller.
    fn note_remote(&mut self, ctx: &TraceCtx) {
        if self.marks.contains_key(&ctx.txn) {
            return;
        }
        self.remote.entry(ctx.txn).or_insert(ctx.parent_seat);
    }

    /// The trace context to stamp on an outgoing frame: this node's seat
    /// for the first message's transaction.
    fn send_ctx(&self, now: SimTime, msgs: &[ProtocolMsg]) -> Option<TraceCtx> {
        if !self.obs.tracing() {
            return None;
        }
        let txn = msgs.first()?.txn();
        let marks = self.marks.get(&txn)?;
        Some(TraceCtx {
            txn,
            parent_seat: marks.seat,
            sent_at: now,
        })
    }

    /// A decision record hit the TM stream.
    fn observe_decided(&mut self, now: SimTime, txn: TxnId) {
        if let Some(marks) = self.marks.get_mut(&txn) {
            marks.decided.get_or_insert(now);
        }
    }

    /// The outcome reached the local application.
    fn observe_outcome(&mut self, now: SimTime, txn: TxnId) {
        if let Some(marks) = self.marks.get_mut(&txn) {
            marks.outcome_at.get_or_insert(now);
        }
    }

    /// The seat ended: derive the phase intervals that have both
    /// endpoints and emit them. Seats that skip milestones (read-only
    /// participants never log a decision; PC subordinates send no ack)
    /// simply contribute fewer phases.
    fn observe_end(&mut self, node: NodeId, end: SimTime, txn: TxnId) {
        self.remote.remove(&txn);
        let Some(marks) = self.marks.remove(&txn) else {
            return;
        };
        let emit = |phase: Phase, start: SimTime, stop: SimTime| {
            self.obs.record_span(Span {
                txn,
                node,
                phase,
                start,
                end: stop,
                seat: marks.seat,
                parent: marks.parent,
            });
        };
        let work_end = marks.commit_start.unwrap_or(end);
        emit(Phase::Work, marks.begin, work_end);
        if let Some(commit_start) = marks.commit_start {
            // Without a decision record (read-only seat) the voting phase
            // runs until the outcome arrived, or the seat ended.
            let prepare_end = marks.decided.or(marks.outcome_at).unwrap_or(end);
            emit(Phase::Prepare, commit_start, prepare_end);
        }
        if let (Some(decided), Some(outcome_at)) = (marks.decided, marks.outcome_at) {
            emit(Phase::Decision, decided, outcome_at);
        }
        if let Some(outcome_at) = marks.outcome_at {
            emit(Phase::Ack, outcome_at, end);
        }
    }
}

/// Observability consequence of a TM log record, classified before the
/// append (which consumes the record) and applied after it.
#[derive(Clone, Copy)]
enum LogNote {
    /// `Prepared`: the in-doubt window opens.
    InDoubt,
    /// `Committed`/`Aborted`: decision milestone; window closes.
    Decision,
    /// `Heuristic`: the blocked seat decided unilaterally; the window
    /// closes (damage accounting is the engine's job).
    Heuristic,
}

/// What restart recovery found and did, for telemetry. Computed by
/// [`Driver::recover`] from the log summaries and the re-driven action
/// stream; hosts add the wall-clock WAL scan time via
/// [`Driver::note_wal_scan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Durable records replayed from the WAL (all streams).
    pub wal_records_scanned: u64,
    /// Time the host spent reading the durable log back, in microseconds
    /// (wall clock live, 0 in the simulator unless modelled).
    pub wal_scan_us: u64,
    /// In-doubt transactions found (prepared, no durable outcome).
    pub in_doubt_recovered: u64,
    /// Status `Query` frames sent to coordinators for in-doubt seats.
    pub queries_sent: u64,
    /// Decided-but-unacknowledged transactions whose outcome was
    /// re-driven to subordinates.
    pub redrives: u64,
    /// Transactions aborted because the crash interrupted voting
    /// (a pre-Phase-1 record with no outcome).
    pub interrupted_vote_aborts: u64,
    /// Log files whose recovery scan ended in an ordinary torn tail
    /// (partial last frame — the expected crash artifact).
    pub torn_tails: u64,
    /// Log files where the scan found corruption *before* the tail:
    /// a damaged frame with valid frames after it, meaning prefix
    /// truncation discarded once-durable data. Always worth alarming on.
    pub corruption_before_tail: u64,
}

impl RecoveryStats {
    /// Folds another lane's recovery telemetry into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.wal_records_scanned += other.wal_records_scanned;
        self.wal_scan_us += other.wal_scan_us;
        self.in_doubt_recovered += other.in_doubt_recovered;
        self.queries_sent += other.queries_sent;
        self.redrives += other.redrives;
        self.interrupted_vote_aborts += other.interrupted_vote_aborts;
        self.torn_tails += other.torn_tails;
        self.corruption_before_tail += other.corruption_before_tail;
    }
}

/// One node's engine plus the shared action interpreter.
pub struct Driver {
    engine: TmEngine,
    timer_gen: HashMap<(TxnId, TimerKind), u64>,
    next_gen: u64,
    stats: DriverStats,
    obs: Option<ObsState>,
    recovery: Option<RecoveryStats>,
}

impl Driver {
    /// Builds a driver around a fresh engine.
    pub fn new(config: EngineConfig) -> Result<Self> {
        Ok(Driver {
            engine: TmEngine::new(config)?,
            timer_gen: HashMap::new(),
            next_gen: 0,
            stats: DriverStats::default(),
            obs: None,
            recovery: None,
        })
    }

    /// Attaches an observability recorder: from now on the driver stamps
    /// phase milestones (work → prepare → decision → ack) per seat,
    /// tracks in-doubt windows, and feeds the recorder's
    /// histograms/spans. Without one (the default) the only cost is a
    /// `None` check per event.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(ObsState {
            obs,
            node: self.engine.node(),
            marks: HashMap::new(),
            next_seat: 0,
            remote: HashMap::new(),
        });
    }

    /// Feeds a trace context received on the wire to the observer.
    /// Hosts call this when a frame carries one, *before* handling the
    /// frame's messages, so the seat the messages create links to its
    /// enrolling sender.
    pub fn note_remote_ctx(&mut self, ctx: &TraceCtx) {
        if let Some(obs) = self.obs.as_mut() {
            obs.note_remote(ctx);
        }
    }

    /// Telemetry from the last [`Driver::recover`] call, if any.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// Records how long the host's durable-log read took (wall-clock
    /// microseconds), attributing it to the last recovery — or to a
    /// fresh [`RecoveryStats`] if the host timed the scan before calling
    /// [`Driver::recover`].
    pub fn note_wal_scan(&mut self, micros: u64) {
        self.recovery
            .get_or_insert_with(RecoveryStats::default)
            .wal_scan_us += micros;
    }

    /// Records what the host's recovery scan found at the end of each log
    /// file: `torn` files ended in an ordinary partial frame,
    /// `corrupt` files had a damaged frame with valid frames after it
    /// (once-durable data discarded). Attributed like
    /// [`Driver::note_wal_scan`].
    pub fn note_log_damage(&mut self, torn: u64, corrupt: u64) {
        let rec = self.recovery.get_or_insert_with(RecoveryStats::default);
        rec.torn_tails += torn;
        rec.corruption_before_tail += corrupt;
    }

    /// The attached recorder, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref().map(|s| &s.obs)
    }

    /// Read access to the engine (metrics, seats, assertions).
    pub fn engine(&self) -> &TmEngine {
        &self.engine
    }

    /// Write access to the engine (partner declarations).
    pub fn engine_mut(&mut self) -> &mut TmEngine {
        &mut self.engine
    }

    /// The engine's protocol counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.engine.metrics()
    }

    /// The driver's effect counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Feeds one event to the engine and interprets the resulting
    /// actions against `host`.
    pub fn handle<H: NodeHost + ?Sized>(
        &mut self,
        host: &mut H,
        now: SimTime,
        event: Event,
    ) -> Result<()> {
        if let Some(obs) = self.obs.as_mut() {
            obs.observe_event(now, &event);
        }
        let actions = self.engine.handle(now, event)?;
        self.apply(host, now, actions)
    }

    /// Interprets an action stream against `host`, starting the time
    /// cursor at `start`.
    ///
    /// This is *the* interpreter: exactly one match over [`Action`]
    /// exists outside the engine's own unit-test pump, and this is it.
    pub fn apply<H: NodeHost + ?Sized>(
        &mut self,
        host: &mut H,
        start: SimTime,
        actions: Vec<Action>,
    ) -> Result<()> {
        let mut cursor = start;
        let mut queue: VecDeque<Action> = actions.into();
        while let Some(action) = queue.pop_front() {
            match action {
                Action::Send { to, msgs } => {
                    self.stats.flows_sent += 1;
                    let ctx = self.obs.as_ref().and_then(|o| o.send_ctx(cursor, &msgs));
                    host.send(cursor, to, ctx, msgs);
                }
                Action::Log { record, durability } => {
                    self.stats.log_writes += 1;
                    if durability.is_forced() {
                        self.stats.forced_writes += 1;
                    }
                    let note = if self.obs.is_some() {
                        match &record {
                            LogRecord::Prepared { txn, .. } => Some((*txn, LogNote::InDoubt)),
                            LogRecord::Committed { txn, .. } | LogRecord::Aborted { txn, .. } => {
                                Some((*txn, LogNote::Decision))
                            }
                            LogRecord::Heuristic { txn, .. } => Some((*txn, LogNote::Heuristic)),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let control = host.append_tm(&mut cursor, record, durability);
                    if let (Some(obs), Some((txn, note))) = (self.obs.as_mut(), note) {
                        // Stamped after the append so a host that models
                        // flush latency has advanced the cursor: the
                        // in-doubt window opens once the Prepared record
                        // is durable and closes when the outcome (or a
                        // heuristic decision) is.
                        match note {
                            LogNote::InDoubt => obs.obs.in_doubt_enter(txn, cursor),
                            LogNote::Decision => {
                                obs.observe_decided(cursor, txn);
                                obs.obs.in_doubt_resolve(txn, cursor);
                            }
                            LogNote::Heuristic => obs.obs.in_doubt_resolve(txn, cursor),
                        }
                    }
                    match control {
                        LogControl::Done => {}
                        LogControl::Suspend => {
                            host.suspend_rest(queue.drain(..).collect());
                            return Ok(());
                        }
                    }
                }
                Action::PrepareLocal { txn, rm_durability } => {
                    match host.prepare_local(&mut cursor, txn, rm_durability) {
                        PrepareControl::Vote(vote) => {
                            let nested = self
                                .engine
                                .handle(cursor, Event::LocalPrepared { txn, vote })?;
                            for a in nested.into_iter().rev() {
                                queue.push_front(a);
                            }
                        }
                        PrepareControl::Async => {}
                    }
                }
                Action::CommitLocal { txn, rm_durability } => {
                    host.commit_local(&mut cursor, txn, rm_durability);
                }
                Action::AbortLocal { txn, rm_durability } => {
                    host.abort_local(&mut cursor, txn, rm_durability);
                }
                Action::ForgetLocal { txn } => {
                    host.forget_local(cursor, txn);
                }
                Action::NotifyOutcome {
                    txn,
                    outcome,
                    report,
                    pending,
                } => {
                    self.stats.outcomes += 1;
                    if report.has_damage() {
                        self.stats.damaged_outcomes += 1;
                    }
                    if pending {
                        self.stats.pending_outcomes += 1;
                    }
                    if let Some(obs) = self.obs.as_mut() {
                        obs.observe_outcome(cursor, txn);
                    }
                    host.notify_outcome(cursor, txn, outcome, report, pending);
                }
                Action::SetTimer { txn, kind, delay } => {
                    self.next_gen += 1;
                    let gen = self.next_gen;
                    self.timer_gen.insert((txn, kind), gen);
                    host.set_timer(cursor, txn, kind, delay, gen);
                }
                Action::CancelTimer { txn, kind } => {
                    self.timer_gen.remove(&(txn, kind));
                    host.cancel_timer(txn, kind);
                }
                Action::TxnEnded { txn } => {
                    if let Some(obs) = self.obs.as_mut() {
                        // Safety net: a seat that ends while its window
                        // is still open (outcome learned without a local
                        // outcome record) closes it here. No-op when the
                        // window already closed at the decision append.
                        obs.obs.in_doubt_resolve(txn, cursor);
                        obs.observe_end(self.engine.node(), cursor, txn);
                    }
                    host.txn_ended(txn);
                }
            }
        }
        Ok(())
    }

    /// Is `(txn, kind, gen)` still the armed generation? Hosts call this
    /// when a stored deadline comes due; a `false` answer means the
    /// timer was cancelled or re-armed since.
    pub fn timer_is_current(&self, txn: TxnId, kind: TimerKind, gen: u64) -> bool {
        self.timer_gen.get(&(txn, kind)).copied() == Some(gen)
    }

    /// Invalidates every armed timer (crash handling). In-flight phase
    /// marks are dropped with them: a crashed seat's phases end with the
    /// crash and are not worth charging to the protocol.
    pub fn clear_timers(&mut self) {
        self.timer_gen.clear();
        if let Some(obs) = self.obs.as_mut() {
            obs.marks.clear();
            obs.remote.clear();
        }
    }

    /// Runs engine recovery from the durable log and returns the actions
    /// to re-drive. They are returned rather than applied because the
    /// harness must recover its resource managers first (so the re-driven
    /// `CommitLocal`/`AbortLocal` find consistent RM state), then call
    /// [`Driver::apply`].
    ///
    /// Also computes [`RecoveryStats`] from the log summaries and the
    /// re-driven stream, and — when an observer is attached — re-opens
    /// the in-doubt window of every prepared-undecided transaction *at
    /// the instant its `Prepared` record was stamped*, so the window
    /// eventually reported covers the whole outage, not just the
    /// post-restart tail.
    pub fn recover(
        &mut self,
        durable: &[(tpc_common::Lsn, tpc_wal::StreamId, LogRecord)],
        now: SimTime,
    ) -> Result<Vec<Action>> {
        let mut stats = self.recovery.take().unwrap_or_default();
        stats.wal_records_scanned += durable.len() as u64;
        for (txn, summary) in crate::recovery::summarize(durable) {
            if summary.end {
                continue;
            }
            if summary.in_doubt() {
                stats.in_doubt_recovered += 1;
                if let Some(obs) = self.obs.as_ref() {
                    obs.obs
                        .in_doubt_enter(txn, summary.prepared_at.unwrap_or(now));
                }
            } else if summary.outcome().is_some() {
                stats.redrives += 1;
            } else if summary.interrupted_voting() {
                stats.interrupted_vote_aborts += 1;
            }
        }
        let actions = self.engine.recover(durable, now)?;
        stats.queries_sent += actions
            .iter()
            .filter(|a| {
                matches!(a, Action::Send { msgs, .. }
                    if msgs.iter().any(|m| matches!(m, ProtocolMsg::Query { .. })))
            })
            .count() as u64;
        self.recovery = Some(stats);
        Ok(actions)
    }

    /// Flushes deferred (long-locks / implied) acknowledgments through
    /// the interpreter.
    pub fn flush_owed_acks<H: NodeHost + ?Sized>(
        &mut self,
        host: &mut H,
        now: SimTime,
    ) -> Result<()> {
        let actions = self.engine.flush_owed_acks();
        self.apply(host, now, actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::ProtocolKind;
    use tpc_wal::{MemLog, StreamId};

    #[test]
    fn rm_log_routing_prefers_private_log() {
        let mut tm = MemLog::new();
        let mut private = MemLog::new();

        // With a private RM log, records land there...
        rm_log_slot(Some(&mut private), &mut tm)
            .append(
                StreamId::Rm(0),
                LogRecord::End {
                    txn: TxnId::new(NodeId(0), 1),
                },
                Durability::NonForced,
            )
            .unwrap();
        assert_eq!(private.stats().writes, 1);
        assert_eq!(tm.stats().writes, 0);

        // ...without one (shared-log optimization), the TM log absorbs
        // them.
        rm_log_of(None, &mut tm)
            .append(
                StreamId::Rm(0),
                LogRecord::End {
                    txn: TxnId::new(NodeId(0), 1),
                },
                Durability::NonForced,
            )
            .unwrap();
        assert_eq!(private.stats().writes, 1);
        assert_eq!(tm.stats().writes, 1);
    }

    /// A trivial host recording effects, for driver unit tests.
    #[derive(Default)]
    struct RecordingHost {
        frames: Vec<(NodeId, usize)>,
        ctxs: Vec<Option<TraceCtx>>,
        logs: Vec<(String, bool)>,
        votes: Vec<TxnId>,
        outcomes: Vec<(TxnId, Outcome)>,
        timers: Vec<(TxnId, TimerKind, u64)>,
    }

    impl Wire for RecordingHost {
        fn send(
            &mut self,
            _now: SimTime,
            to: NodeId,
            ctx: Option<TraceCtx>,
            msgs: Vec<ProtocolMsg>,
        ) {
            self.frames.push((to, msgs.len()));
            self.ctxs.push(ctx);
        }
    }
    impl LogHost for RecordingHost {
        fn append_tm(
            &mut self,
            _now: &mut SimTime,
            record: LogRecord,
            durability: Durability,
        ) -> LogControl {
            self.logs
                .push((record.kind_name().to_string(), durability.is_forced()));
            LogControl::Done
        }
    }
    impl RmHost for RecordingHost {
        fn prepare_local(
            &mut self,
            _now: &mut SimTime,
            txn: TxnId,
            _rm_durability: Durability,
        ) -> PrepareControl {
            self.votes.push(txn);
            PrepareControl::Vote(LocalVote::yes())
        }
        fn commit_local(&mut self, _now: &mut SimTime, _txn: TxnId, _d: Durability) {}
        fn abort_local(&mut self, _now: &mut SimTime, _txn: TxnId, _d: Durability) {}
        fn forget_local(&mut self, _now: SimTime, _txn: TxnId) {}
        fn txn_ended(&mut self, _txn: TxnId) {}
    }
    impl TimerHost for RecordingHost {
        fn set_timer(
            &mut self,
            _now: SimTime,
            txn: TxnId,
            kind: TimerKind,
            _delay: SimDuration,
            gen: u64,
        ) {
            self.timers.push((txn, kind, gen));
        }
    }
    impl AppSink for RecordingHost {
        fn notify_outcome(
            &mut self,
            _now: SimTime,
            txn: TxnId,
            outcome: Outcome,
            _report: DamageReport,
            _pending: bool,
        ) {
            self.outcomes.push((txn, outcome));
        }
    }

    #[test]
    fn driver_counts_and_timer_generations() {
        let mut host = RecordingHost::default();
        let mut driver =
            Driver::new(EngineConfig::new(NodeId(0), ProtocolKind::PresumedAbort)).unwrap();
        let txn = TxnId::new(NodeId(0), 1);
        let now = SimTime(1);

        driver
            .handle(
                &mut host,
                now,
                Event::SendWork {
                    txn,
                    to: NodeId(1),
                    payload: vec![],
                },
            )
            .unwrap();
        driver
            .handle(&mut host, now, Event::CommitRequested { txn })
            .unwrap();

        // Work frame + Prepare frame left the wire; the vote round-trip
        // happened through the host.
        assert_eq!(driver.stats().flows_sent, 2);
        assert_eq!(host.votes, vec![txn]);
        // A vote-collection timer is armed and current.
        let &(t, k, gen) = host.timers.first().expect("timer armed");
        assert!(driver.timer_is_current(t, k, gen));
        driver.clear_timers();
        assert!(!driver.timer_is_current(t, k, gen));
    }

    #[test]
    fn local_commit_produces_phase_spans() {
        let mut host = RecordingHost::default();
        let mut driver =
            Driver::new(EngineConfig::new(NodeId(0), ProtocolKind::PresumedAbort)).unwrap();
        let obs = Arc::new(Obs::new());
        obs.set_tracing(true);
        driver.set_obs(Arc::clone(&obs));

        // A purely local transaction: work at t=10, commit at t=50.
        let txn = TxnId::new(NodeId(0), 1);
        driver
            .handle(
                &mut host,
                SimTime(10),
                Event::SendWork {
                    txn,
                    to: NodeId(1),
                    payload: vec![],
                },
            )
            .unwrap();
        driver
            .handle(&mut host, SimTime(50), Event::CommitRequested { txn })
            .unwrap();
        // Deliver the subordinate's vote and ack so the seat completes.
        driver
            .handle(
                &mut host,
                SimTime(60),
                Event::MsgReceived {
                    from: NodeId(1),
                    msg: ProtocolMsg::VoteMsg {
                        txn,
                        vote: tpc_common::Vote::Yes(tpc_common::VoteFlags::NONE),
                    },
                },
            )
            .unwrap();
        driver
            .handle(
                &mut host,
                SimTime(80),
                Event::MsgReceived {
                    from: NodeId(1),
                    msg: ProtocolMsg::Ack {
                        txn,
                        report: DamageReport::default(),
                        pending: false,
                    },
                },
            )
            .unwrap();
        assert_eq!(host.outcomes, vec![(txn, Outcome::Commit)]);

        let snap = obs.snapshot();
        // Work phase = 10..50 = 40µs.
        let work = snap.phase(Phase::Work).expect("work recorded");
        assert_eq!((work.count, work.sum), (1, 40));
        // Prepare starts at commit request, ends at the decision record.
        let prepare = snap.phase(Phase::Prepare).expect("prepare recorded");
        assert_eq!(prepare.count, 1);
        assert!(prepare.sum >= 10, "prepare covers the vote wait");
        // Decision and ack phases both recorded for a coordinator that
        // waits for acks.
        assert!(snap.phase(Phase::Decision).is_some());
        assert!(snap.phase(Phase::Ack).is_some());
        // Span tree: every span belongs to the txn and node 0, and the
        // work span starts first.
        let spans = snap.txn_spans(txn);
        assert!(spans.len() >= 3, "spans: {spans:?}");
        assert!(spans.iter().all(|s| s.node == NodeId(0)));
        assert_eq!(spans[0].phase, Phase::Work);
        assert_eq!(spans[0].start, SimTime(10));
    }

    #[test]
    fn outgoing_frames_carry_trace_ctx_when_tracing() {
        let mut host = RecordingHost::default();
        let mut driver =
            Driver::new(EngineConfig::new(NodeId(0), ProtocolKind::PresumedAbort)).unwrap();
        let obs = Arc::new(Obs::new());
        obs.set_tracing(true);
        driver.set_obs(Arc::clone(&obs));

        let txn = TxnId::new(NodeId(0), 1);
        driver
            .handle(
                &mut host,
                SimTime(5),
                Event::SendWork {
                    txn,
                    to: NodeId(1),
                    payload: vec![],
                },
            )
            .unwrap();
        let ctx = host.ctxs[0].expect("work frame stamped with trace ctx");
        assert_eq!(ctx.txn, txn);
        assert_eq!(ctx.sent_at, SimTime(5));
        // Seat ids embed the node in the high bits, so they are globally
        // unique without coordination.
        assert_eq!(ctx.parent_seat >> 40, u64::from(NodeId(0).0) + 1);
    }

    #[test]
    fn remote_ctx_becomes_span_parent_on_first_contact_only() {
        let mut host = RecordingHost::default();
        let mut driver =
            Driver::new(EngineConfig::new(NodeId(2), ProtocolKind::PresumedAbort)).unwrap();
        let obs = Arc::new(Obs::new());
        obs.set_tracing(true);
        driver.set_obs(Arc::clone(&obs));

        // Root node 0 enrolls this node: its Work frame carries its seat.
        let txn = TxnId::new(NodeId(0), 9);
        let root_seat = (1u64 << 40) | 7;
        driver.note_remote_ctx(&TraceCtx {
            txn,
            parent_seat: root_seat,
            sent_at: SimTime(1),
        });
        // A later frame (e.g. the decision) must not replace the parent.
        driver.note_remote_ctx(&TraceCtx {
            txn,
            parent_seat: (5u64 << 40) | 99,
            sent_at: SimTime(2),
        });
        driver
            .handle(
                &mut host,
                SimTime(3),
                Event::MsgReceived {
                    from: NodeId(0),
                    msg: ProtocolMsg::Work {
                        txn,
                        payload: vec![],
                    },
                },
            )
            .unwrap();
        // An abort decision ends the seat and flushes its spans.
        driver
            .handle(
                &mut host,
                SimTime(4),
                Event::MsgReceived {
                    from: NodeId(0),
                    msg: ProtocolMsg::Decision {
                        txn,
                        outcome: Outcome::Abort,
                    },
                },
            )
            .unwrap();
        let spans = obs.snapshot().txn_spans(txn);
        assert!(!spans.is_empty(), "seat emitted spans");
        assert!(spans.iter().all(|s| s.parent == Some(root_seat)));
        assert!(spans.iter().all(|s| s.seat >> 40 == 3));
    }

    #[test]
    fn prepared_log_opens_in_doubt_window_and_recover_reopens_it() {
        // A subordinate that logs Prepared enters the in-doubt window;
        // recovery from the same log re-opens it at the stamped instant.
        let mut host = RecordingHost::default();
        let mut driver =
            Driver::new(EngineConfig::new(NodeId(1), ProtocolKind::PresumedAbort)).unwrap();
        let obs = Arc::new(Obs::new());
        driver.set_obs(Arc::clone(&obs));

        let txn = TxnId::new(NodeId(0), 4);
        driver
            .handle(
                &mut host,
                SimTime(10),
                Event::MsgReceived {
                    from: NodeId(0),
                    msg: ProtocolMsg::Work {
                        txn,
                        payload: vec![],
                    },
                },
            )
            .unwrap();
        driver
            .handle(
                &mut host,
                SimTime(100),
                Event::MsgReceived {
                    from: NodeId(0),
                    msg: ProtocolMsg::Prepare {
                        txn,
                        long_locks: false,
                        expect_work: true,
                    },
                },
            )
            .unwrap();
        let snap = obs.snapshot_at(SimTime(250));
        assert_eq!(snap.in_doubt_current, 1);
        assert_eq!(snap.in_doubt_oldest_age_us, 150);

        // The commit decision arrives: the window closes at its true width.
        driver
            .handle(
                &mut host,
                SimTime(300),
                Event::MsgReceived {
                    from: NodeId(0),
                    msg: ProtocolMsg::Decision {
                        txn,
                        outcome: Outcome::Commit,
                    },
                },
            )
            .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.in_doubt_current, 0);
        assert_eq!((snap.in_doubt.count, snap.in_doubt.sum), (1, 200));

        // Crash/recover from a log holding just the Prepared record: the
        // window re-opens at prepared_at, and the stats say why.
        let mut driver2 =
            Driver::new(EngineConfig::new(NodeId(1), ProtocolKind::PresumedAbort)).unwrap();
        let obs2 = Arc::new(Obs::new());
        driver2.set_obs(Arc::clone(&obs2));
        let mut log = MemLog::new();
        log.append(
            StreamId::Tm,
            LogRecord::Prepared {
                txn,
                coordinator: NodeId(0),
                subordinates: vec![],
                prepared_at: SimTime(100),
            },
            Durability::Forced,
        )
        .unwrap();
        let actions = driver2
            .recover(&log.durable_records(), SimTime(5_000))
            .unwrap();
        driver2.apply(&mut host, SimTime(5_000), actions).unwrap();
        let stats = driver2.recovery_stats().expect("recovery ran");
        assert_eq!(stats.in_doubt_recovered, 1);
        assert_eq!(stats.queries_sent, 1, "PA queries the coordinator");
        assert_eq!(stats.wal_records_scanned, 1);
        let snap = obs2.snapshot_at(SimTime(5_100));
        assert_eq!(snap.in_doubt_current, 1);
        assert_eq!(
            snap.in_doubt_oldest_age_us, 5_000,
            "window re-opened at prepared_at, covering the outage"
        );
    }

    #[test]
    fn without_obs_no_marks_accumulate() {
        let mut host = RecordingHost::default();
        let mut driver = Driver::new(EngineConfig::new(NodeId(0), ProtocolKind::Basic)).unwrap();
        let txn = TxnId::new(NodeId(0), 7);
        driver
            .handle(&mut host, SimTime(0), Event::CommitRequested { txn })
            .unwrap();
        assert!(driver.obs().is_none());
    }
}
