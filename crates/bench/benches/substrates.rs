//! Microbenchmarks for the substrates the protocol engine sits on: wire
//! codec, WAL, group committer, lock manager, and raw engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpc_common::wire::{Decode, Encode};
use tpc_common::{DamageReport, NodeId, Outcome, ProtocolKind, SimTime, TxnId, Vote, VoteFlags};
use tpc_core::{EngineConfig, Event, LocalVote, ProtocolMsg, TmEngine};
use tpc_locks::{LockManager, LockMode};
use tpc_wal::{Durability, GroupCommitter, LogManager, LogRecord, MemLog, StreamId};

fn codec(c: &mut Criterion) {
    let msg = ProtocolMsg::VoteMsg {
        txn: TxnId::new(NodeId(3), 42),
        vote: Vote::Yes(VoteFlags {
            ok_to_leave_out: true,
            reliable: true,
            unsolicited: false,
            last_agent_delegation: false,
            expect_work: false,
        }),
    };
    let encoded = msg.encode_to_bytes();
    let mut g = c.benchmark_group("wire_codec");
    g.bench_function("encode_vote", |b| b.iter(|| msg.encode_to_bytes()));
    g.bench_function("decode_vote", |b| {
        b.iter(|| ProtocolMsg::decode_all(&encoded).expect("valid"))
    });
    let ack = ProtocolMsg::Ack {
        txn: TxnId::new(NodeId(3), 42),
        report: DamageReport {
            heuristic_no_damage: vec![NodeId(1)],
            damaged: vec![NodeId(2), NodeId(3)],
            outcome_pending: vec![],
        },
        pending: false,
    };
    let ack_bytes = ack.encode_to_bytes();
    g.bench_function("decode_ack_with_report", |b| {
        b.iter(|| ProtocolMsg::decode_all(&ack_bytes).expect("valid"))
    });
    g.finish();
}

fn wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_memlog");
    g.bench_function("append_nonforced", |b| {
        let mut log = MemLog::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            log.append(
                StreamId::Tm,
                LogRecord::End {
                    txn: TxnId::new(NodeId(0), seq),
                },
                Durability::NonForced,
            )
            .expect("append")
        })
    });
    g.bench_function("append_forced", |b| {
        let mut log = MemLog::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            log.append(
                StreamId::Tm,
                LogRecord::Committed {
                    txn: TxnId::new(NodeId(0), seq),
                    subordinates: vec![NodeId(1), NodeId(2)],
                },
                Durability::Forced,
            )
            .expect("append")
        })
    });
    g.bench_function("group_committer_request", |b| {
        let mut gc: GroupCommitter<u64> =
            GroupCommitter::new(tpc_common::config::GroupCommitConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            gc.request(SimTime(t), t)
        })
    });
    g.finish();
}

fn locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    g.bench_function("acquire_release_x", |b| {
        let mut lm = LockManager::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let txn = TxnId::new(NodeId(0), seq);
            lm.acquire(txn, b"key", LockMode::Exclusive, SimTime(seq));
            lm.release_all(txn, SimTime(seq + 1))
        })
    });
    for holders in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("shared_acquire", holders),
            &holders,
            |b, &holders| {
                b.iter(|| {
                    let mut lm = LockManager::new();
                    for i in 0..holders as u64 {
                        lm.acquire(
                            TxnId::new(NodeId(0), i),
                            b"key",
                            LockMode::Shared,
                            SimTime(i),
                        );
                    }
                    for i in 0..holders as u64 {
                        lm.release_all(TxnId::new(NodeId(0), i), SimTime(100 + i));
                    }
                })
            },
        );
    }
    g.finish();
}

/// Raw engine throughput: a full 2-participant commit driven by hand
/// (no simulator), measuring pure state-machine cost.
fn engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_raw");
    for protocol in [ProtocolKind::PresumedAbort, ProtocolKind::PresumedNothing] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.short_name()),
            &protocol,
            |b, &p| {
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1;
                    let mut coord = TmEngine::new(EngineConfig::new(NodeId(0), p)).expect("cfg");
                    let mut sub = TmEngine::new(EngineConfig::new(NodeId(1), p)).expect("cfg");
                    let txn = TxnId::new(NodeId(0), seq);
                    let t = SimTime(1);
                    // Work enrolls the subordinate.
                    let acts = coord
                        .handle(
                            t,
                            Event::SendWork {
                                txn,
                                to: NodeId(1),
                                payload: vec![],
                            },
                        )
                        .expect("work");
                    pump(&mut coord, &mut sub, acts, t);
                    let acts = coord
                        .handle(t, Event::CommitRequested { txn })
                        .expect("commit");
                    pump(&mut coord, &mut sub, acts, t);
                    assert_eq!(coord.finished_outcome(txn), Some(Outcome::Commit));
                })
            },
        );
    }
    g.finish();
}

/// Minimal two-node action pump for the raw-engine bench.
fn pump(coord: &mut TmEngine, sub: &mut TmEngine, actions: Vec<tpc_core::Action>, t: SimTime) {
    let mut queue: Vec<(bool, tpc_core::Action)> = actions.into_iter().map(|a| (true, a)).collect();
    while let Some((at_coord, action)) = queue.pop() {
        match action {
            tpc_core::Action::Send { to, msgs } => {
                let (target, from) = if to == NodeId(0) {
                    (&mut *coord, NodeId(1))
                } else {
                    (&mut *sub, NodeId(0))
                };
                for msg in msgs {
                    let acts = target
                        .handle(t, Event::MsgReceived { from, msg })
                        .expect("deliver");
                    let flag = to == NodeId(0);
                    queue.extend(acts.into_iter().map(|a| (flag, a)));
                }
            }
            tpc_core::Action::PrepareLocal { txn, .. } => {
                let target = if at_coord { &mut *coord } else { &mut *sub };
                let acts = target
                    .handle(
                        t,
                        Event::LocalPrepared {
                            txn,
                            vote: LocalVote::yes(),
                        },
                    )
                    .expect("prepared");
                queue.extend(acts.into_iter().map(|a| (at_coord, a)));
            }
            _ => {}
        }
    }
}

criterion_group!(benches, codec, wal, locks, engine);
criterion_main!(benches);
