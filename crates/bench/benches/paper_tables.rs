//! Criterion benches, one group per paper table: each measures the
//! wall-clock cost of simulating the table's scenarios end to end
//! (protocol engine + WAL + lock manager + discrete-event harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpc_bench::rows::{run_contended, run_group_commit, run_pair, run_sequence, run_star};
use tpc_common::{OptimizationConfig, ProtocolKind};
use tpc_sim::TxnSpec;

fn table2_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_pair_commit");
    for protocol in ProtocolKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.short_name()),
            &protocol,
            |b, &p| b.iter(|| run_pair(p, OptimizationConfig::none(), Some(true), false, false)),
        );
    }
    g.bench_function("PA+read-only", |b| {
        b.iter(|| {
            run_pair(
                ProtocolKind::PresumedAbort,
                OptimizationConfig::none().with_read_only(true),
                Some(false),
                false,
                false,
            )
        })
    });
    g.bench_function("PA+last-agent", |b| {
        b.iter(|| {
            run_pair(
                ProtocolKind::PresumedAbort,
                OptimizationConfig::none().with_last_agent(true),
                Some(true),
                false,
                false,
            )
        })
    });
    g.bench_function("PA+abort", |b| {
        b.iter(|| {
            run_pair(
                ProtocolKind::PresumedAbort,
                OptimizationConfig::none(),
                Some(true),
                true,
                false,
            )
        })
    });
    g.finish();
}

fn table3_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_star_n11");
    g.bench_function("basic", |b| {
        b.iter(|| {
            run_star(
                11,
                |_| tpc_sim::NodeConfig::new(ProtocolKind::Basic),
                |root, subs| TxnSpec::star_update(root, subs, "t"),
            )
        })
    });
    g.bench_function("pa_read_only_m4", |b| {
        b.iter(|| {
            run_star(
                11,
                |_| {
                    tpc_sim::NodeConfig::new(ProtocolKind::PresumedAbort)
                        .with_opts(OptimizationConfig::none().with_read_only(true))
                },
                |root, subs| TxnSpec::star_mixed(root, &subs[..6], &subs[6..], "t"),
            )
        })
    });
    // Tree width sweep: how simulation cost scales with participants.
    for n in [3usize, 7, 11, 21, 41] {
        g.bench_with_input(BenchmarkId::new("pa_width", n), &n, |b, &n| {
            b.iter(|| {
                run_star(
                    n,
                    |_| tpc_sim::NodeConfig::new(ProtocolKind::PresumedAbort),
                    |root, subs| TxnSpec::star_update(root, subs, "t"),
                )
            })
        });
    }
    g.finish();
}

fn table4_long_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_sequences_r12");
    g.bench_function("basic_4r", |b| {
        b.iter(|| run_sequence(12, ProtocolKind::Basic, OptimizationConfig::none(), false))
    });
    g.bench_function("pa_long_locks_3r", |b| {
        b.iter(|| {
            run_sequence(
                12,
                ProtocolKind::PresumedAbort,
                OptimizationConfig::none().with_long_locks(true),
                false,
            )
        })
    });
    g.bench_function("pa_ll_last_agent", |b| {
        b.iter(|| {
            run_sequence(
                12,
                ProtocolKind::PresumedAbort,
                OptimizationConfig::none()
                    .with_long_locks(true)
                    .with_last_agent(true),
                true,
            )
        })
    });
    g.finish();
}

fn group_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_commit_20txn");
    for batch in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| run_group_commit(20, if batch == 1 { None } else { Some(batch) }))
        });
    }
    g.finish();
}

fn contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_hot_key");
    g.bench_function("pa_baseline", |b| {
        b.iter(|| run_contended(OptimizationConfig::none(), false))
    });
    g.bench_function("pa_last_agent_server", |b| {
        b.iter(|| run_contended(OptimizationConfig::none().with_last_agent(true), false))
    });
    g.finish();
}

criterion_group!(
    benches,
    table2_costs,
    table3_scaling,
    table4_long_locks,
    group_commit,
    contention
);
criterion_main!(benches);
