//! Scenario runners that produce one table row each.

use tpc_common::config::GroupCommitConfig;
use tpc_common::{NodeId, OptimizationConfig, Outcome, ProtocolKind, SimDuration, SimTime};
use tpc_sim::{NodeConfig, RunReport, Sim, SimConfig, TxnSpec, WorkEdge};

/// Per-participant cost triple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostRow {
    /// Frames sent by this participant (2PC traffic only).
    pub flows: u64,
    /// TM-stream log writes.
    pub writes: u64,
    /// ... of which forced.
    pub forced: u64,
}

/// Coordinator/subordinate costs of a 2-participant transaction
/// (Table 2's shape).
#[derive(Clone, Copy, Debug, Default)]
pub struct PairCosts {
    /// Coordinator-side costs.
    pub coordinator: CostRow,
    /// Subordinate-side costs.
    pub subordinate: CostRow,
    /// Total 2PC flows.
    pub total_flows: u64,
    /// The decided outcome.
    pub outcome: Option<Outcome>,
}

fn node_costs(report: &RunReport, node: usize) -> CostRow {
    let n = &report.per_node[node];
    CostRow {
        flows: n.engine.frames_sent - n.engine.work_frames,
        writes: n.tm_writes,
        forced: n.tm_forced,
    }
}

/// Runs one 2-participant transaction and reports both sides' costs.
///
/// `sub_work`: `Some(true)` = updating work, `Some(false)` = read-only
/// work, `None` = no work at all. `sub_votes_no` scripts an abort.
pub fn run_pair(
    protocol: ProtocolKind,
    opts: OptimizationConfig,
    sub_work: Option<bool>,
    sub_votes_no: bool,
    sub_unsolicited: bool,
) -> PairCosts {
    let mut sim = Sim::new(SimConfig::default());
    let cfg = NodeConfig::new(protocol).with_opts(opts);
    let n0 = sim.add_node(cfg.clone());
    let sub_cfg = {
        let mut c = cfg;
        if sub_votes_no {
            c = c.vote_no_on(1);
        }
        if sub_unsolicited {
            c = c.unsolicited();
        }
        c
    };
    let n1 = sim.add_node(sub_cfg);
    sim.declare_partner(n0, n1);
    let spec = match sub_work {
        Some(true) => TxnSpec::star_update(n0, &[n1], "t"),
        Some(false) => {
            let mut s = TxnSpec::star_mixed(n0, &[], &[n1], "t");
            s.root_ops = vec![];
            s
        }
        None => TxnSpec::star_update(n0, &[], "t"),
    };
    sim.push_txn(spec);
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    PairCosts {
        coordinator: node_costs(&report, 0),
        subordinate: node_costs(&report, 1),
        total_flows: report.protocol_flows(),
        outcome: report.outcomes.first().map(|o| o.outcome),
    }
}

/// Cluster-wide costs of an n-participant star (Table 3's shape), with a
/// per-node configurator and a spec builder.
pub fn run_star(
    n: usize,
    cfg_fn: impl Fn(usize) -> NodeConfig,
    spec_fn: impl Fn(NodeId, &[NodeId]) -> TxnSpec,
) -> RunReport {
    let mut sim = Sim::new(SimConfig::default());
    let ids: Vec<NodeId> = (0..n).map(|i| sim.add_node(cfg_fn(i))).collect();
    for s in &ids[1..] {
        sim.declare_partner(ids[0], *s);
    }
    sim.push_txn(spec_fn(ids[0], &ids[1..]));
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    report
}

/// Runs `r` sequential 2-member transactions (Table 4's shape).
pub fn run_sequence(
    r: u64,
    protocol: ProtocolKind,
    opts: OptimizationConfig,
    alternate_roots_with_last_agent: bool,
) -> RunReport {
    let mut sim = Sim::new(SimConfig::default());
    let cfg = NodeConfig::new(protocol).with_opts(opts);
    let n0 = sim.add_node(cfg.clone());
    let n1 = sim.add_node(cfg);
    sim.declare_partner(n0, n1);
    if alternate_roots_with_last_agent {
        sim.declare_partner(n1, n0);
    }
    for i in 0..r {
        let root = if alternate_roots_with_last_agent && i % 2 == 1 {
            n1
        } else {
            n0
        };
        let other = if root == n0 { n1 } else { n0 };
        sim.push_txn(TxnSpec::star_update(root, &[other], &format!("t{i}")));
    }
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    report
}

/// Group-commit sweep: `txns` concurrent single-sub transactions against
/// one server whose log batches with `batch`. Returns (logical forces at
/// the server, physical flushes at the server).
pub fn run_group_commit(txns: usize, batch: Option<usize>) -> (u64, u64) {
    let mut sim = Sim::new(SimConfig::default().real());
    let opts = match batch {
        Some(b) => OptimizationConfig::none().with_group_commit(Some(GroupCommitConfig {
            batch_size: b,
            max_wait: SimDuration::from_millis(2),
            adaptive: false,
        })),
        None => OptimizationConfig::none(),
    };
    // Share the log so all forces funnel through the batched TM log.
    let opts = opts.with_shared_log(true);
    let server = sim.add_node(NodeConfig::new(ProtocolKind::PresumedAbort).with_opts(opts));
    for i in 0..txns {
        let root = sim.add_node(NodeConfig::new(ProtocolKind::PresumedAbort));
        sim.declare_partner(root, server);
        sim.push_txn_at(
            TxnSpec {
                root,
                root_ops: vec![],
                edges: vec![WorkEdge::update(root, server, &format!("k{i}"), "v")],
                late_edges: vec![],
                commit: true,
            },
            SimTime(i as u64 * 150),
        );
    }
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let s = report
        .per_node
        .iter()
        .find(|n| n.node == NodeId(0))
        .expect("server");
    (s.tm_forced + s.rm_forced, s.physical_flushes)
}

/// Eight concurrent roots contend on one hot key at a shared server
/// (§1's lock-time motivation). Returns (makespan, total lock wait at
/// the server).
pub fn run_contended(
    root_opts: OptimizationConfig,
    server_unsolicited: bool,
) -> (SimDuration, SimDuration) {
    const ROOTS: usize = 8;
    let mut sim = Sim::new(SimConfig::default().real());
    let server_cfg = {
        let c = NodeConfig::new(ProtocolKind::PresumedAbort);
        if server_unsolicited {
            c.unsolicited()
        } else {
            c
        }
    };
    let server = sim.add_node(server_cfg);
    for i in 0..ROOTS {
        let root =
            sim.add_node(NodeConfig::new(ProtocolKind::PresumedAbort).with_opts(root_opts.clone()));
        sim.declare_partner(root, server);
        sim.push_txn_at(
            TxnSpec {
                root,
                root_ops: vec![],
                edges: vec![WorkEdge::update(root, server, "hot", &format!("r{i}"))],
                late_edges: vec![],
                commit: true,
            },
            SimTime(i as u64 * 200),
        );
    }
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let makespan = report
        .outcomes
        .iter()
        .map(|o| o.notified_at)
        .max()
        .expect("outcomes")
        .since(SimTime::ZERO);
    let wait = SimDuration::from_micros(
        report
            .per_node
            .iter()
            .find(|n| n.node == server)
            .expect("server")
            .locks
            .total_wait_micros,
    );
    (makespan, wait)
}

/// The elapsed time the root application waits, for ack-timing
/// comparisons, over a slow far link.
pub fn run_latency_chain(
    protocol: ProtocolKind,
    opts: OptimizationConfig,
    reliable: bool,
) -> SimDuration {
    let mut sim = Sim::new(SimConfig::default());
    let base = NodeConfig::new(protocol).with_opts(opts);
    let n0 = sim.add_node(base.clone());
    let n1 = sim.add_node(if reliable {
        base.clone().reliable()
    } else {
        base.clone()
    });
    let n2 = sim.add_node(if reliable { base.reliable() } else { base });
    sim.declare_partner(n0, n1);
    sim.declare_partner(n1, n2);
    sim.set_link(
        n1,
        n2,
        tpc_simnet::LatencyModel::Fixed(SimDuration::from_millis(40)),
    );
    sim.set_link(
        n2,
        n1,
        tpc_simnet::LatencyModel::Fixed(SimDuration::from_millis(40)),
    );
    sim.push_txn(
        TxnSpec::local_update(n0, "r", "1")
            .with_edge(WorkEdge::update(n0, n1, "m", "1"))
            .with_edge(WorkEdge::update(n1, n2, "l", "1")),
    );
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    report.single().elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_runner_matches_paper_baseline() {
        let c = run_pair(
            ProtocolKind::Basic,
            OptimizationConfig::none(),
            Some(true),
            false,
            false,
        );
        assert_eq!(c.total_flows, 4);
        assert_eq!((c.coordinator.writes, c.coordinator.forced), (2, 1));
        assert_eq!((c.subordinate.writes, c.subordinate.forced), (3, 2));
        assert_eq!(c.outcome, Some(Outcome::Commit));
    }

    #[test]
    fn group_commit_runner_reduces_flushes() {
        let (forces, unbatched) = run_group_commit(8, None);
        let (forces2, batched) = run_group_commit(8, Some(4));
        assert_eq!(forces, forces2);
        assert!(batched < unbatched, "{batched} < {unbatched}");
    }
}
