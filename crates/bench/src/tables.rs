//! Printable reproductions of the paper's Tables 1–4 (plus the group
//! commit and heuristic-reporting analyses).

use tpc_common::{
    AckMode, HeuristicPolicy, NodeId, OptimizationConfig, ProtocolKind, SimDuration, SimTime,
};
use tpc_sim::{NodeConfig, Sim, SimConfig, TxnSpec, WorkEdge};

use crate::rows::{
    run_contended, run_group_commit, run_latency_chain, run_pair, run_sequence, run_star,
};

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Table 2: logging and network traffic of a 2-participant transaction,
/// per protocol variant and optimization.
pub fn table2() -> String {
    let mut out = header("Table 2: logging and network traffic (2 participants)");
    out.push_str(&format!(
        "{:<28} {:>6} {:>14} {:>6} {:>14}\n",
        "2PC variant", "C.flow", "C.logs(w,f)", "S.flow", "S.logs(w,f)"
    ));
    let mut row = |name: &str,
                   protocol: ProtocolKind,
                   opts: OptimizationConfig,
                   sub_work: Option<bool>,
                   no: bool,
                   unsolicited: bool| {
        let c = run_pair(protocol, opts, sub_work, no, unsolicited);
        out.push_str(&format!(
            "{:<28} {:>6} {:>9},{:>4} {:>6} {:>9},{:>4}\n",
            name,
            c.coordinator.flows,
            c.coordinator.writes,
            c.coordinator.forced,
            c.subordinate.flows,
            c.subordinate.writes,
            c.subordinate.forced,
        ));
    };
    let none = OptimizationConfig::none;
    row(
        "Basic 2PC",
        ProtocolKind::Basic,
        none(),
        Some(true),
        false,
        false,
    );
    row(
        "PN",
        ProtocolKind::PresumedNothing,
        none(),
        Some(true),
        false,
        false,
    );
    row(
        "PA, commit case",
        ProtocolKind::PresumedAbort,
        none(),
        Some(true),
        false,
        false,
    );
    row(
        "PA, abort case",
        ProtocolKind::PresumedAbort,
        none(),
        Some(true),
        true,
        false,
    );
    row(
        "PA, read-only case",
        ProtocolKind::PresumedAbort,
        none().with_read_only(true),
        Some(false),
        false,
        false,
    );
    row(
        "PA & last agent",
        ProtocolKind::PresumedAbort,
        none().with_last_agent(true),
        Some(true),
        false,
        false,
    );
    row(
        "PA & unsolicited vote",
        ProtocolKind::PresumedAbort,
        none(),
        Some(true),
        false,
        true,
    );
    row(
        "PA & long locks",
        ProtocolKind::PresumedAbort,
        none().with_long_locks(true),
        Some(true),
        false,
        false,
    );
    row(
        "PC (extension)",
        ProtocolKind::PresumedCommit,
        none(),
        Some(true),
        false,
        false,
    );
    out
}

/// Table 3: n = 11 participants, m = 4 following each optimization.
pub fn table3() -> String {
    const N: usize = 11;
    let mut out = header("Table 3: costs for n=11 participants, m=4 optimized");
    out.push_str(&format!(
        "{:<28} {:>6} {:>7} {:>7}   {}\n",
        "2PC variant", "flows", "writes", "forced", "paper formula (flows)"
    ));
    fn push(out: &mut String, name: &str, report: &tpc_sim::RunReport, formula: &str) {
        out.push_str(&format!(
            "{:<28} {:>6} {:>7} {:>7}   {}\n",
            name,
            report.protocol_flows(),
            report.tm_writes(),
            report.tm_forced(),
            formula,
        ));
    }

    let basic = run_star(
        N,
        |_| NodeConfig::new(ProtocolKind::Basic),
        |root, subs| TxnSpec::star_update(root, subs, "t"),
    );
    push(&mut out, "Basic 2PC", &basic, "4(n-1) = 40");

    let ro = run_star(
        N,
        |_| {
            NodeConfig::new(ProtocolKind::PresumedAbort)
                .with_opts(OptimizationConfig::none().with_read_only(true))
        },
        |root, subs| TxnSpec::star_mixed(root, &subs[..6], &subs[6..], "t"),
    );
    push(&mut out, "PA & read-only (m=4)", &ro, "4(n-1) - 2m = 32");

    let unsolicited = run_star(
        N,
        |i| {
            let c = NodeConfig::new(ProtocolKind::PresumedAbort);
            if i >= 7 {
                c.unsolicited()
            } else {
                c
            }
        },
        |root, subs| TxnSpec::star_update(root, subs, "t"),
    );
    push(
        &mut out,
        "PA & unsolicited (m=4)",
        &unsolicited,
        "4(n-1) - m = 36",
    );

    let last_agent = run_star(
        N,
        |i| {
            let c = NodeConfig::new(ProtocolKind::PresumedAbort);
            if i == 0 {
                c.with_opts(OptimizationConfig::none().with_last_agent(true))
            } else {
                c
            }
        },
        |root, subs| TxnSpec::star_update(root, subs, "t"),
    );
    push(
        &mut out,
        "PA & last agent (m=1)",
        &last_agent,
        "4(n-1) - 2m = 38",
    );

    // Leave-out needs a priming transaction; isolate the second txn.
    let leave_out_delta = {
        let mk = || {
            NodeConfig::new(ProtocolKind::PresumedAbort)
                .with_opts(OptimizationConfig::none().with_leave_out(true))
                .suspendable()
        };
        let run2 = {
            let mut sim = Sim::new(SimConfig::default());
            let ids: Vec<NodeId> = (0..N).map(|_| sim.add_node(mk())).collect();
            for s in &ids[1..] {
                sim.declare_partner(ids[0], *s);
            }
            sim.push_txn(TxnSpec::star_update(ids[0], &ids[1..], "prime"));
            sim.push_txn(TxnSpec::star_update(ids[0], &ids[1..7], "t"));
            sim.run()
        };
        let run1 = {
            let mut sim = Sim::new(SimConfig::default());
            let ids: Vec<NodeId> = (0..N).map(|_| sim.add_node(mk())).collect();
            for s in &ids[1..] {
                sim.declare_partner(ids[0], *s);
            }
            sim.push_txn(TxnSpec::star_update(ids[0], &ids[1..], "prime"));
            sim.run()
        };
        (
            run2.protocol_flows() - run1.protocol_flows(),
            run2.tm_writes() - run1.tm_writes(),
            run2.tm_forced() - run1.tm_forced(),
        )
    };
    out.push_str(&format!(
        "{:<28} {:>6} {:>7} {:>7}   {}\n",
        "PA & leave-out (m=4)",
        leave_out_delta.0,
        leave_out_delta.1,
        leave_out_delta.2,
        "4(n-1) - 4m = 24"
    ));

    let long_locks = run_star(
        N,
        |i| {
            let c = NodeConfig::new(ProtocolKind::PresumedAbort);
            if (7..=10).contains(&i) {
                c.with_opts(OptimizationConfig::none().with_long_locks(true))
            } else {
                c
            }
        },
        |root, subs| TxnSpec::star_update(root, subs, "t"),
    );
    push(
        &mut out,
        "PA & long locks (m=4)",
        &long_locks,
        "4(n-1) - m = 36 (steady state)",
    );
    out
}

/// Table 4: long locks over r = 12 consecutive 2-member transactions.
pub fn table4() -> String {
    const R: u64 = 12;
    let mut out = header("Table 4: long locks over r=12 transactions (2 members)");
    out.push_str(&format!(
        "{:<36} {:>6} {:>7} {:>7}   {}\n",
        "2PC variant", "flows", "writes", "forced", "paper"
    ));
    fn push4(out: &mut String, name: &str, report: &tpc_sim::RunReport, paper: &str) {
        out.push_str(&format!(
            "{:<36} {:>6} {:>7} {:>7}   {}\n",
            name,
            report.protocol_flows(),
            report.tm_writes(),
            report.tm_forced(),
            paper,
        ));
    }
    let basic = run_sequence(R, ProtocolKind::Basic, OptimizationConfig::none(), false);
    push4(&mut out, "Basic 2PC", &basic, "4r = 48");
    let ll = run_sequence(
        R,
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none().with_long_locks(true),
        false,
    );
    push4(&mut out, "PA & long locks (not last agent)", &ll, "3r = 36");
    let ll_la = run_sequence(
        R,
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none()
            .with_long_locks(true)
            .with_last_agent(true),
        true,
    );
    push4(
        &mut out,
        "PA & long locks & last agent",
        &ll_la,
        "3r/2 = 18 (see EXPERIMENTS.md)",
    );
    out
}

/// Table 1, quantified: each optimization's measured advantage and its
/// measured cost, from the scenarios of §4.
pub fn table1() -> String {
    let mut out = header("Table 1 (quantified): advantages and tradeoffs");
    let baseline = run_pair(
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none(),
        Some(true),
        false,
        false,
    );
    out.push_str(&format!(
        "baseline (PA, 2 participants): {} flows, {} writes ({} forced)\n\n",
        baseline.total_flows,
        baseline.coordinator.writes + baseline.subordinate.writes,
        baseline.coordinator.forced + baseline.subordinate.forced,
    ));

    // Read-only.
    let ro = run_pair(
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none().with_read_only(true),
        Some(false),
        false,
        false,
    );
    out.push_str(&format!(
        "read-only        : {} flows, {} log writes — but the read-only partner \
         never learns the outcome\n",
        ro.total_flows,
        ro.coordinator.writes + ro.subordinate.writes,
    ));

    // Last agent.
    let la = run_pair(
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none().with_last_agent(true),
        Some(true),
        false,
        false,
    );
    out.push_str(&format!(
        "last agent       : {} flows (initiator pays an extra forced prepared record: \
         coordinator forces {} vs baseline {})\n",
        la.total_flows, la.coordinator.forced, baseline.coordinator.forced,
    ));

    // Unsolicited vote.
    let uv = run_pair(
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none(),
        Some(true),
        false,
        true,
    );
    out.push_str(&format!(
        "unsolicited vote : {} flows — application must know when it is done\n",
        uv.total_flows,
    ));

    // Vote reliable / ack timing (latency over a 40 ms far hop).
    let late = run_latency_chain(
        ProtocolKind::PresumedNothing,
        OptimizationConfig::none(),
        true,
    );
    let vr = run_latency_chain(
        ProtocolKind::PresumedNothing,
        OptimizationConfig::none().with_vote_reliable(true),
        true,
    );
    let early = run_latency_chain(
        ProtocolKind::PresumedNothing,
        OptimizationConfig::none().with_ack_mode(AckMode::Early),
        true,
    );
    out.push_str(&format!(
        "vote reliable    : root completion {} vs late-ack {} (early-ack {}) — \
         damage reporting lost if a 'reliable' resource does decide heuristically\n",
        vr, late, early,
    ));

    // Long locks.
    let ll = run_sequence(
        12,
        ProtocolKind::PresumedAbort,
        OptimizationConfig::none().with_long_locks(true),
        false,
    );
    out.push_str(&format!(
        "long locks       : {} flows for 12 txns (baseline 48) — subordinate \
         bookkeeping held to the next transaction\n",
        ll.protocol_flows(),
    ));

    // Group commit.
    let (forces, flushes) = run_group_commit(10, Some(4));
    out.push_str(&format!(
        "group commit     : {forces} logical forces served by {flushes} physical \
         flushes — individual commits wait for their batch\n",
    ));
    out
}

/// Group-commit sweep: physical flushes vs batch size.
pub fn group_commit_sweep() -> String {
    let mut out = header("Group commit: flushes vs batch size (20 concurrent txns)");
    out.push_str(&format!(
        "{:>10} {:>10} {:>10}\n",
        "batch", "forces", "flushes"
    ));
    let (forces, flushes) = run_group_commit(20, None);
    out.push_str(&format!("{:>10} {forces:>10} {flushes:>10}\n", "off"));
    for batch in [2usize, 4, 8, 16] {
        let (forces, flushes) = run_group_commit(20, Some(batch));
        out.push_str(&format!("{batch:>10} {forces:>10} {flushes:>10}\n"));
    }
    out
}

/// The paper's closing teaser, measured: "better performance can be
/// achieved by combining the different optimizations". A staircase of
/// optimization stacks over the same workload (PN, 1 root + 4 partners,
/// 2 of them read-only, 6 consecutive transactions touching half the
/// partners).
pub fn ablation() -> String {
    let mut out = header("Combined optimizations: the §5 staircase (PN, 5 nodes, 6 txns)");
    out.push_str(&format!(
        "{:<44} {:>6} {:>7} {:>7}
",
        "stack", "flows", "writes", "forced"
    ));
    let stacks: Vec<(&str, OptimizationConfig)> = vec![
        ("bare PN", OptimizationConfig::none()),
        (
            "+ read-only",
            OptimizationConfig::none().with_read_only(true),
        ),
        (
            "+ leave-out",
            OptimizationConfig::none()
                .with_read_only(true)
                .with_leave_out(true),
        ),
        (
            "+ last agent",
            OptimizationConfig::none()
                .with_read_only(true)
                .with_leave_out(true)
                .with_last_agent(true),
        ),
        (
            "+ long locks",
            OptimizationConfig::none()
                .with_read_only(true)
                .with_leave_out(true)
                .with_last_agent(true)
                .with_long_locks(true),
        ),
        ("+ vote reliable (all)", OptimizationConfig::all()),
    ];
    for (name, opts) in stacks {
        let report = run_ablation_stack(opts);
        out.push_str(&format!(
            "{:<44} {:>6} {:>7} {:>7}
",
            name,
            report.protocol_flows(),
            report.tm_writes(),
            report.tm_forced(),
        ));
    }
    out
}

/// One ablation workload run.
pub fn run_ablation_stack(opts: OptimizationConfig) -> tpc_sim::RunReport {
    let mut sim = Sim::new(SimConfig::default());
    let cfg = NodeConfig::new(ProtocolKind::PresumedNothing)
        .with_opts(opts)
        .reliable()
        .suspendable();
    let root = sim.add_node(cfg.clone());
    let partners: Vec<NodeId> = (0..4).map(|_| sim.add_node(cfg.clone())).collect();
    for p in &partners {
        sim.declare_partner(root, *p);
    }
    // A priming transaction touches every partner with updates so their
    // ok-to-leave-out qualifiers can take effect (the qualifier rides the
    // YES vote; read-only voters never convey it).
    sim.push_txn(TxnSpec::star_update(root, &partners, "prime"));
    for i in 0..6 {
        // Each transaction reads partner 1, then updates partner 0 — the
        // updater is touched LAST, so the last-agent stack delegates to
        // it ("it is left to application design to determine which
        // process should be the commit coordinator", §3). Partners 2 and
        // 3 stay untouched (leave-out candidates after the prime).
        let tag = format!("a{i}");
        sim.push_txn(TxnSpec {
            root,
            root_ops: vec![tpc_common::Op::put(&format!("{tag}/root"), &tag)],
            edges: vec![
                tpc_sim::WorkEdge::read(root, partners[1], &format!("{tag}/r")),
                tpc_sim::WorkEdge::update(root, partners[0], &format!("{tag}/u"), &tag),
            ],
            late_edges: vec![],
            commit: true,
        });
    }
    let report = sim.run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    report
}

/// §1's throughput motivation, measured: lock contention on one hot key
/// under the variants that release the server's lock sooner.
pub fn contention() -> String {
    let mut out = header("Lock contention: 8 roots serializing on one hot key");
    out.push_str(&format!(
        "{:<28} {:>12} {:>16}
",
        "variant", "makespan", "server lock wait"
    ));
    let (m, w) = run_contended(OptimizationConfig::none(), false);
    out.push_str(&format!(
        "{:<28} {m:>12} {w:>16}
",
        "PA baseline"
    ));
    let (m, w) = run_contended(OptimizationConfig::none(), true);
    out.push_str(&format!(
        "{:<28} {m:>12} {w:>16}
",
        "PA + unsolicited server"
    ));
    let (m, w) = run_contended(OptimizationConfig::none().with_last_agent(true), false);
    out.push_str(&format!(
        "{:<28} {m:>12} {w:>16}
",
        "PA + server as last agent"
    ));
    out
}

/// Heuristic-damage reporting fidelity: PN vs PA (the §3 comparison).
pub fn heuristic_reporting() -> String {
    let mut out = header("Heuristic damage reporting: PN late-ack vs PA one-hop");
    for protocol in [ProtocolKind::PresumedNothing, ProtocolKind::PresumedAbort] {
        let mut sim = Sim::new(SimConfig::default().with_horizon(SimDuration::from_secs(30)));
        let timeouts = tpc_core::Timeouts {
            vote_collection: SimDuration::from_secs(5),
            ack_collection: SimDuration::from_millis(200),
            in_doubt_query: SimDuration::from_secs(2),
        };
        let cfg = NodeConfig::new(protocol).with_timeouts(timeouts);
        let n0 = sim.add_node(cfg.clone());
        let n1 = sim.add_node(cfg.clone());
        let n2 = sim.add_node(
            cfg.with_heuristic(HeuristicPolicy::AbortAfter(SimDuration::from_millis(100))),
        );
        sim.declare_partner(n0, n1);
        sim.declare_partner(n1, n2);
        sim.push_txn(
            TxnSpec::local_update(n0, "r", "1")
                .with_edge(WorkEdge::update(n0, n1, "m", "1"))
                .with_edge(WorkEdge::update(n1, n2, "l", "1")),
        );
        sim.partition(n1, n2, SimTime(25_000), Some(SimTime(500_000)));
        let report = sim.run();
        let result = &report.outcomes[0];
        let damage_at_root = result.report.damaged.contains(&n2);
        let absorbed: u64 = report
            .per_node
            .iter()
            .map(|n| n.engine.damage_reports_absorbed)
            .sum();
        out.push_str(&format!(
            "{:<4} leaf heuristically aborted against a global commit: \
             root sees damage = {damage_at_root}, reports absorbed mid-tree = {absorbed}\n",
            protocol.short_name(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        for t in [table2(), table3(), table4()] {
            assert!(t.lines().count() > 3, "{t}");
        }
    }

    #[test]
    fn ablation_staircase_is_monotone() {
        use tpc_common::OptimizationConfig;
        let bare = run_ablation_stack(OptimizationConfig::none());
        let ro = run_ablation_stack(OptimizationConfig::none().with_read_only(true));
        let lo = run_ablation_stack(
            OptimizationConfig::none()
                .with_read_only(true)
                .with_leave_out(true),
        );
        let la = run_ablation_stack(
            OptimizationConfig::none()
                .with_read_only(true)
                .with_leave_out(true)
                .with_last_agent(true),
        );
        let all = run_ablation_stack(OptimizationConfig::all());
        let flows = [
            bare.protocol_flows(),
            ro.protocol_flows(),
            lo.protocol_flows(),
            la.protocol_flows(),
            all.protocol_flows(),
        ];
        assert!(
            flows.windows(2).all(|w| w[1] <= w[0]),
            "each added optimization must not regress flows: {flows:?}"
        );
        assert!(
            all.protocol_flows() * 2 < bare.protocol_flows(),
            "{flows:?}"
        );
        // PN + last agent adds no forced writes (the commit-pending force
        // already covers the delegation) and the delegate skips its
        // prepared force.
        assert!(la.tm_forced() <= lo.tm_forced());
    }

    #[test]
    fn heuristic_table_shows_the_pn_pa_contrast() {
        let t = heuristic_reporting();
        assert!(t.contains("PN   leaf") || t.contains("PN "), "{t}");
        assert!(t.contains("root sees damage = true"), "{t}");
        assert!(t.contains("root sees damage = false"), "{t}");
    }
}
