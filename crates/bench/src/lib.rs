//! # tpc-bench
//!
//! Table and figure generators plus Criterion benchmarks reproducing the
//! paper's evaluation section.
//!
//! * `cargo run -p tpc-bench --bin gen_tables` prints Tables 1–4 (and the
//!   group-commit / heuristic-reporting analyses) from live simulation
//!   runs, next to the paper's analytic formulas.
//! * `cargo run -p tpc-bench --bin gen_figures` prints the Figure 1–8
//!   protocol traces.
//! * `cargo bench -p tpc-bench` measures the same scenarios under
//!   Criterion (wall-time of the simulated protocol runs plus substrate
//!   microbenchmarks).
//!
//! The row-building code lives here so the binaries, the benches and the
//! documentation all report the same numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rows;
pub mod tables;

pub use rows::{CostRow, PairCosts};
