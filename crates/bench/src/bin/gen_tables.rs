//! Prints the paper's Tables 1–4 (plus the group-commit and heuristic
//! analyses) from live simulation runs.
//!
//! ```text
//! cargo run -p tpc-bench --bin gen_tables            # everything
//! cargo run -p tpc-bench --bin gen_tables table2     # one table
//! ```

use tpc_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        print!("{}", tables::table1());
    }
    if want("table2") {
        print!("{}", tables::table2());
    }
    if want("table3") {
        print!("{}", tables::table3());
    }
    if want("table4") {
        print!("{}", tables::table4());
    }
    if want("group_commit") {
        print!("{}", tables::group_commit_sweep());
    }
    if want("heuristics") {
        print!("{}", tables::heuristic_reporting());
    }
    if want("contention") {
        print!("{}", tables::contention());
    }
    if want("ablation") {
        print!("{}", tables::ablation());
    }
}
