//! Live-runtime throughput bench: txn/s and commit-latency percentiles
//! for the concurrent closed-loop workload, across
//! {Basic, PresumedAbort, PresumedNothing} × {group commit off, on} ×
//! {mem, file} logs × {channel, tcp} transports.
//!
//! ```text
//! cargo run --release -p tpc-bench --bin bench_throughput            # full run
//! cargo run --release -p tpc-bench --bin bench_throughput -- --quick
//! cargo run --release -p tpc-bench --bin bench_throughput -- --out /tmp/t.json
//! ```
//!
//! Results are written as machine-readable JSON (default:
//! `BENCH_throughput.json` at the repo root) so successive PRs have a
//! throughput trajectory to compare against. The workload is
//! deterministic in structure (fixed concurrency, fixed per-slot keys);
//! wall-clock numbers of course vary with the host.
//!
//! The interesting comparison is `file` × group commit off/on: with the
//! file backend every forced record costs a real `sync_data()`, and
//! group commit (§4 *Group Commits*) amortizes those across concurrent
//! transactions — `physical_flushes` drops well below `log_forces` and
//! txn/s rises.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tpc_common::config::GroupCommitConfig;
use tpc_common::{ProtocolKind, SimDuration};
use tpc_obs::{ObsSnapshot, Phase};
use tpc_runtime::tcp::TcpCluster;
use tpc_runtime::{LiveCluster, LiveNodeConfig, NodeSummary, WorkloadReport, WorkloadSpec};

/// One cell of the bench matrix.
struct Case {
    protocol: ProtocolKind,
    group_commit: bool,
    file_log: bool,
    tcp: bool,
}

/// One finished measurement: the workload report plus the cluster's
/// aggregated log/group counters.
struct Measurement {
    case: Case,
    report: WorkloadReport,
    /// Σ forced TM-log appends across nodes.
    log_forces: u64,
    /// Σ physical TM-log flushes across nodes.
    physical_flushes: u64,
    /// Σ group-committer force requests across nodes.
    group_requests: u64,
    /// Σ group-committer flushes across nodes.
    group_flushes: u64,
    /// Cluster-merged per-phase latency histograms.
    obs: ObsSnapshot,
}

const NODES: usize = 3; // two roots + one server

fn main() {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("usage: bench_throughput [--quick] [--out PATH]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    // Default: the repo root, two levels above this crate's manifest.
    let out = out.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
    });
    let spec = if quick {
        WorkloadSpec::new(8, 64)
    } else {
        WorkloadSpec::new(16, 400)
    };

    let mut measurements = Vec::new();
    for protocol in [
        ProtocolKind::Basic,
        ProtocolKind::PresumedAbort,
        ProtocolKind::PresumedNothing,
    ] {
        for tcp in [false, true] {
            for file_log in [false, true] {
                for group_commit in [false, true] {
                    let case = Case {
                        protocol,
                        group_commit,
                        file_log,
                        tcp,
                    };
                    eprintln!(
                        "running {protocol:?} transport={} log={} group_commit={} …",
                        if tcp { "tcp" } else { "channel" },
                        if file_log { "file" } else { "mem" },
                        group_commit
                    );
                    measurements.push(run_case(case, &spec));
                }
            }
        }
    }

    let json = render_json(quick, &spec, &measurements);
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    eprintln!("wrote {}", out.display());
}

fn run_case(case: Case, spec: &WorkloadSpec) -> Measurement {
    let gc = case.group_commit.then(|| GroupCommitConfig {
        batch_size: spec.concurrency.max(2),
        max_wait: SimDuration::from_millis(2),
    });
    let mut cfg = LiveNodeConfig::new(case.protocol)
        .with_group_commit(gc)
        .with_observability();
    // Log files go under target/ so fsync hits the real filesystem the
    // build uses, not a tmpfs that would flatter the numbers.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!(
        "../../target/bench-throughput-{}",
        std::process::id()
    ));
    if case.file_log {
        let _ = std::fs::remove_dir_all(&dir);
        cfg = cfg.with_file_log(&dir);
    }
    let configs = vec![cfg; NODES];
    let (report, summaries) = if case.tcp {
        let c = TcpCluster::start(configs).expect("bind loopback");
        let report = c.run_workload(spec);
        assert!(c.quiesce(Duration::from_secs(30)), "cluster must quiesce");
        (report, c.shutdown())
    } else {
        let c = LiveCluster::start(configs);
        let report = c.run_workload(spec);
        assert!(c.quiesce(Duration::from_secs(30)), "cluster must quiesce");
        (report, c.shutdown())
    };
    if case.file_log {
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(report.failed, 0, "throughput run must not drop requests");
    let agg = |f: fn(&NodeSummary) -> u64| summaries.iter().map(f).sum();
    let obs = ObsSnapshot::merged(summaries.iter().filter_map(|s| s.obs.as_ref()));
    Measurement {
        case,
        report,
        log_forces: agg(|s| s.log.forced_writes),
        physical_flushes: agg(|s| s.log.physical_flushes),
        group_requests: agg(|s| s.group.requests),
        group_flushes: agg(|s| s.group.flushes),
        obs,
    }
}

/// Renders one phase's histogram as a JSON object. Phases with no
/// samples (e.g. `group_flush` with group commit off) render with a
/// zero count so every config carries the same columns.
fn phase_json(obs: &ObsSnapshot, phase: Phase) -> String {
    match obs.phase(phase) {
        Some(h) => format!(
            "{{ \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }}",
            h.count,
            h.p50(),
            h.p99(),
            h.max
        ),
        None => "{ \"count\": 0, \"p50\": 0, \"p99\": 0, \"max\": 0 }".to_string(),
    }
}

fn render_json(quick: bool, spec: &WorkloadSpec, measurements: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"throughput\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(
        s,
        "  \"spec\": {{ \"nodes\": {NODES}, \"concurrency\": {}, \"txns\": {} }},",
        spec.concurrency, spec.txns
    );
    s.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let c = &m.case;
        let l = &m.report.latency;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"protocol\": \"{:?}\",", c.protocol);
        let _ = writeln!(
            s,
            "      \"transport\": \"{}\",",
            if c.tcp { "tcp" } else { "channel" }
        );
        let _ = writeln!(
            s,
            "      \"log\": \"{}\",",
            if c.file_log { "file" } else { "mem" }
        );
        let _ = writeln!(s, "      \"group_commit\": {},", c.group_commit);
        let _ = writeln!(s, "      \"committed\": {},", m.report.committed);
        let _ = writeln!(s, "      \"aborted\": {},", m.report.aborted);
        let _ = writeln!(s, "      \"failed\": {},", m.report.failed);
        let _ = writeln!(
            s,
            "      \"elapsed_ms\": {:.3},",
            m.report.elapsed.as_secs_f64() * 1e3
        );
        let _ = writeln!(s, "      \"txns_per_sec\": {:.1},", m.report.txns_per_sec());
        let _ = writeln!(
            s,
            "      \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},",
            l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
        let _ = writeln!(s, "      \"phase_latency_us\": {{");
        let phases = [
            Phase::Work,
            Phase::Prepare,
            Phase::Decision,
            Phase::Ack,
            Phase::Fsync,
            Phase::GroupFlush,
        ];
        for (j, p) in phases.iter().enumerate() {
            let _ = writeln!(
                s,
                "        \"{p}\": {}{}",
                phase_json(&m.obs, *p),
                if j + 1 < phases.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"log_forces\": {},", m.log_forces);
        let _ = writeln!(s, "      \"physical_flushes\": {},", m.physical_flushes);
        let _ = writeln!(s, "      \"group_requests\": {},", m.group_requests);
        let _ = writeln!(s, "      \"group_flushes\": {}", m.group_flushes);
        s.push_str(if i + 1 < measurements.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
