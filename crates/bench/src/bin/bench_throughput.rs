//! Live-runtime throughput bench: txn/s and commit-latency percentiles
//! for the concurrent closed-loop workload, across
//! {Basic, PresumedAbort, PresumedNothing} × {group commit off, on} ×
//! {mem, file, segmented} WAL backends × {channel, tcp} transports,
//! plus an `optimizations` axis: the §4 subsets
//! {last_agent, early_ack, piggyback} each measured on the mem and
//! segmented backends (Presumed Abort, channel transport) against the
//! matching baseline rows.
//!
//! ```text
//! cargo run --release -p tpc-bench --bin bench_throughput            # full run
//! cargo run --release -p tpc-bench --bin bench_throughput -- --quick
//! cargo run --release -p tpc-bench --bin bench_throughput -- --out /tmp/t.json
//! ```
//!
//! Results are written as machine-readable JSON (default:
//! `BENCH_throughput.json` at the repo root) so successive PRs have a
//! throughput trajectory to compare against. The workload is
//! deterministic in structure (fixed concurrency, fixed per-slot keys);
//! wall-clock numbers of course vary with the host.
//!
//! The interesting comparisons are `file` × group commit off/on — with a
//! durable backend every forced record costs a real `sync_data()`, and
//! group commit (§4 *Group Commits*) amortizes those across concurrent
//! transactions (`physical_flushes` drops well below `log_forces` and
//! txn/s rises) — and `file` vs `segmented` at equal durability: the
//! segmented chain appends into preallocated, zero-filled capacity, so
//! its `sync_data()` never has file metadata to flush.
//!
//! A separate `failure_path` section measures what the throughput matrix
//! cannot: for each protocol (tcp + file log), a subordinate is killed
//! in its in-doubt window under load and restarted, and the run reports
//! the in-doubt window distribution, the restart's recovery counters and
//! the wall-clock restart-to-recovered time.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tpc_common::config::GroupCommitConfig;
use tpc_common::{ProtocolKind, SimDuration};
use tpc_obs::{ObsSnapshot, Phase, TimelineCounter, TimelineGauge, TimelineHist};
use tpc_runtime::tcp::TcpCluster;
use tpc_runtime::{
    LiveCluster, LiveNodeConfig, NodeSummary, OpenLoopReport, OpenLoopSpec, WorkloadReport,
    WorkloadSpec,
};

/// The WAL backend axis of the bench matrix.
#[derive(Clone, Copy, PartialEq)]
enum WalBackend {
    Mem,
    File,
    Segmented,
}

impl WalBackend {
    fn name(self) -> &'static str {
        match self {
            WalBackend::Mem => "mem",
            WalBackend::File => "file",
            WalBackend::Segmented => "segmented",
        }
    }

    fn durable(self) -> bool {
        !matches!(self, WalBackend::Mem)
    }
}

/// One cell of the bench matrix.
struct Case {
    protocol: ProtocolKind,
    group_commit: bool,
    wal_backend: WalBackend,
    tcp: bool,
    /// Which §4 optimization subset the cluster runs: `baseline`,
    /// `last_agent`, `early_ack` or `piggyback` (long-locks ack
    /// deferral). The optimization rows run Presumed Abort on the
    /// channel transport so the delta against the matching baseline row
    /// isolates the optimization itself.
    optimizations: &'static str,
}

impl Case {
    fn opts(&self) -> tpc_common::OptimizationConfig {
        use tpc_common::{AckMode, OptimizationConfig};
        match self.optimizations {
            "last_agent" => OptimizationConfig::none().with_last_agent(true),
            "early_ack" => OptimizationConfig::none().with_ack_mode(AckMode::Early),
            "piggyback" => OptimizationConfig::none().with_long_locks(true),
            _ => OptimizationConfig::none(),
        }
    }
}

/// One finished measurement: the workload report plus the cluster's
/// aggregated log/group counters.
struct Measurement {
    case: Case,
    report: WorkloadReport,
    /// Σ forced TM-log appends across nodes.
    log_forces: u64,
    /// Σ physical TM-log flushes across nodes.
    physical_flushes: u64,
    /// Σ group-committer force requests across nodes.
    group_requests: u64,
    /// Σ group-committer flushes across nodes.
    group_flushes: u64,
    /// Cluster-merged per-phase latency histograms.
    obs: ObsSnapshot,
}

/// One point on the shard scale curve: an open-loop run against a
/// multi-lane cluster on the mem backend.
struct ScalePoint {
    lanes: usize,
    stripes: usize,
    in_flight: usize,
    offered_rate: f64,
    /// Marks the admission-control row (tight caps, expects rejections).
    saturation: bool,
    report: OpenLoopReport,
}

/// One finished kill/restart measurement on the failure path.
struct FailureMeasurement {
    protocol: ProtocolKind,
    /// Lanes per node on the victim: 1 is the classic single-lane node;
    /// more means sharded — the crash kills every lane and recovery
    /// replays the one shared WAL, repartitioning transactions to lanes.
    lanes: usize,
    /// `tcp` for the single-lane cell, `channel` for the sharded ones
    /// (the TCP harness runs one lane per node).
    transport: &'static str,
    outage: Duration,
    /// Victim's closed in-doubt window distribution, µs.
    in_doubt: tpc_obs::HistogramSnapshot,
    /// Victim's restart-recovery counters.
    recovery: tpc_core::RecoveryStats,
    /// Wall-clock from calling restart to the blocked commit resolving.
    restart_to_recovered: Duration,
}

const NODES: usize = 3; // two roots + one server

fn main() {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("usage: bench_throughput [--quick] [--out PATH]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    // Default: the repo root, two levels above this crate's manifest.
    let out = out.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
    });
    let spec = if quick {
        WorkloadSpec::new(8, 64)
    } else {
        WorkloadSpec::new(16, 400)
    };

    let mut measurements = Vec::new();
    for protocol in [
        ProtocolKind::Basic,
        ProtocolKind::PresumedAbort,
        ProtocolKind::PresumedNothing,
    ] {
        for tcp in [false, true] {
            for wal_backend in [WalBackend::Mem, WalBackend::File, WalBackend::Segmented] {
                for group_commit in [false, true] {
                    let case = Case {
                        protocol,
                        group_commit,
                        wal_backend,
                        tcp,
                        optimizations: "baseline",
                    };
                    eprintln!(
                        "running {protocol:?} transport={} wal={} group_commit={} …",
                        if tcp { "tcp" } else { "channel" },
                        wal_backend.name(),
                        group_commit
                    );
                    measurements.push(run_case(case, &spec));
                }
            }
        }
    }

    // The optimization axis (§4 on the live path): Presumed Abort over
    // channels, no group commit, each optimization against the cheapest
    // and the most durable backend. Compare against the matching
    // PresumedAbort/channel/…/gc=off baseline rows.
    for optimizations in ["last_agent", "early_ack", "piggyback"] {
        for wal_backend in [WalBackend::Mem, WalBackend::Segmented] {
            let case = Case {
                protocol: ProtocolKind::PresumedAbort,
                group_commit: false,
                wal_backend,
                tcp: false,
                optimizations,
            };
            eprintln!(
                "running PresumedAbort wal={} optimizations={optimizations} …",
                wal_backend.name()
            );
            measurements.push(run_case(case, &spec));
        }
    }

    let scale = run_scale_curve(quick);

    let mut failures = Vec::new();
    for protocol in [
        ProtocolKind::Basic,
        ProtocolKind::PresumedAbort,
        ProtocolKind::PresumedNothing,
    ] {
        for lanes in [1usize, 4] {
            eprintln!("running {protocol:?} failure path (kill/restart, lanes={lanes}) …");
            failures.push(run_failure_case(protocol, lanes, quick));
        }
    }

    let json = render_json(quick, &spec, &measurements, &scale, &failures);
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    eprintln!("wrote {}", out.display());
}

/// Open-loop scale sweep: lanes × in-flight on the mem backend, offered
/// load far above capacity so completion rate measures the node's
/// multi-lane throughput ceiling, plus (full mode) one ≥10k-in-flight
/// deep cell and one tight-cap saturation cell demonstrating bounded
/// queueing + explicit rejections. Lane scaling tracks available cores:
/// on a single-core host the curve is expected to be flat-to-noisy, and
/// the `cpus` field records the context.
fn run_scale_curve(quick: bool) -> Vec<ScalePoint> {
    let lanes_axis: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let in_flight_axis: &[usize] = if quick { &[64] } else { &[64, 1024] };
    let mut points = Vec::new();
    for &lanes in lanes_axis {
        for &in_flight in in_flight_axis {
            let txns = if quick { 300 } else { 2_000 };
            eprintln!("running scale lanes={lanes} in_flight={in_flight} …");
            points.push(run_scale_case(lanes, in_flight, txns, false));
        }
    }
    if !quick {
        // The deep cell: ≥10k transactions concurrently in flight.
        eprintln!("running scale deep cell lanes=8 in_flight=10000 …");
        points.push(run_scale_case(8, 10_000, 12_000, false));
    }
    // Saturation: offered load with tight admission control must reject,
    // not collapse. Long enough (full mode) to spread across several
    // timeline windows, so the per-window section shows a curve.
    eprintln!("running scale saturation cell …");
    points.push(run_scale_case(
        if quick { 2 } else { 8 },
        32,
        if quick { 2_000 } else { 6_000 },
        true,
    ));
    points
}

fn run_scale_case(lanes: usize, in_flight: usize, txns: usize, saturation: bool) -> ScalePoint {
    let cfg = LiveNodeConfig::new(ProtocolKind::PresumedAbort).with_lanes(lanes);
    let stripes = cfg.effective_stripes();
    let c = LiveCluster::start(vec![cfg; NODES]);
    let spec = OpenLoopSpec {
        arrival_rate: 100_000.0,
        txns,
        max_in_flight: in_flight,
        queue_cap: if saturation { 64 } else { txns },
        zipf_theta: 0.99,
        tenants: 8,
        keys_per_tenant: 1_000,
        reply_timeout: Duration::from_secs(60),
        key_prefix: format!("sc{lanes}x{in_flight}"),
        seed: 42,
    };
    let report = c.run_open_loop(&spec);
    assert!(c.quiesce(Duration::from_secs(30)), "cluster must quiesce");
    c.shutdown();
    if saturation {
        assert!(
            report.rejected > 0,
            "saturation cell must show explicit rejections"
        );
        assert!(report.max_queue_depth <= spec.queue_cap);
    } else {
        assert_eq!(report.rejected, 0, "scale cells size the queue to fit");
    }
    ScalePoint {
        lanes,
        stripes,
        in_flight,
        offered_rate: spec.arrival_rate,
        saturation,
        report,
    }
}

/// Kills a subordinate in its in-doubt window (right after its forced
/// Prepared record, frame 2) under a real file-WAL configuration, holds
/// the outage, restarts it, and reads the failure-path telemetry back
/// from the victim's summary. The single-lane cell runs over TCP; the
/// sharded cells run over channels (the TCP harness is one lane per
/// node) and exercise the shared-WAL replay that repartitions recovered
/// transactions to their owning lanes.
fn run_failure_case(protocol: ProtocolKind, lanes: usize, quick: bool) -> FailureMeasurement {
    use tpc_common::{NodeId, Op};
    let outage = Duration::from_millis(if quick { 30 } else { 100 });
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!(
        "../../target/bench-failure-{}-{protocol:?}-{lanes}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let timeouts = tpc_core::Timeouts {
        vote_collection: SimDuration::from_millis(500),
        ack_collection: SimDuration::from_millis(150),
        in_doubt_query: SimDuration::from_millis(200),
    };
    let cfg = || {
        LiveNodeConfig::new(protocol)
            .with_observability()
            .with_file_log(&dir)
            .with_lanes(lanes)
            .with_timeouts(timeouts)
    };
    let root = NodeId(0);
    let victim = NodeId(1);

    let (s, restart_to_recovered) = if lanes == 1 {
        let mut c = TcpCluster::start(vec![cfg(), cfg().kill_after_frames(2), cfg()])
            .expect("bind loopback")
            .with_reply_timeout(Duration::from_secs(30));
        let t = c.begin(root);
        t.work(victim, vec![Op::put("fp/a", "1")]);
        t.work(NodeId(2), vec![Op::put("fp/b", "2")]);
        let wait = t.commit_async();
        c.await_death(victim, Duration::from_secs(10))
            .expect("victim dies after voting");
        std::thread::sleep(outage);
        let restarted = std::time::Instant::now();
        c.restart(victim).expect("restart from WAL");
        wait.wait_with(Duration::from_secs(30))
            .expect("root answers");
        assert!(c.quiesce(Duration::from_secs(30)), "must quiesce");
        let elapsed = restarted.elapsed();
        let s = c.summary(victim).expect("victim summary");
        c.shutdown();
        (s, elapsed)
    } else {
        let mut c = LiveCluster::start(vec![cfg(), cfg().kill_after_frames(2), cfg()])
            .with_reply_timeout(Duration::from_secs(30));
        let t = c.begin(root);
        t.work(victim, vec![Op::put("fp/a", "1")]);
        t.work(NodeId(2), vec![Op::put("fp/b", "2")]);
        let wait = t.commit_async();
        c.await_death(victim, Duration::from_secs(10))
            .expect("victim dies after voting");
        std::thread::sleep(outage);
        let restarted = std::time::Instant::now();
        c.restart(victim).expect("restart from the shared WAL");
        wait.wait(Duration::from_secs(30)).expect("root answers");
        assert!(c.quiesce(Duration::from_secs(30)), "must quiesce");
        let elapsed = restarted.elapsed();
        let s = c.summary(victim).expect("victim summary");
        c.shutdown();
        (s, elapsed)
    };

    let obs = s.obs.expect("observability was on");
    let recovery = s.recovery.expect("restart recorded recovery stats");
    let _ = std::fs::remove_dir_all(&dir);
    FailureMeasurement {
        protocol,
        lanes,
        transport: if lanes == 1 { "tcp" } else { "channel" },
        outage,
        in_doubt: obs.in_doubt,
        recovery,
        restart_to_recovered,
    }
}

fn run_case(case: Case, spec: &WorkloadSpec) -> Measurement {
    let gc = case.group_commit.then(|| GroupCommitConfig {
        batch_size: spec.concurrency.max(2),
        max_wait: SimDuration::from_millis(2),
        adaptive: false,
    });
    let mut cfg = LiveNodeConfig::new(case.protocol)
        .with_group_commit(gc)
        .with_opts(case.opts())
        .with_observability();
    // Log files go under target/ so fsync hits the real filesystem the
    // build uses, not a tmpfs that would flatter the numbers.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!(
        "../../target/bench-throughput-{}",
        std::process::id()
    ));
    if case.wal_backend.durable() {
        let _ = std::fs::remove_dir_all(&dir);
        cfg = match case.wal_backend {
            WalBackend::File => cfg.with_file_log(&dir),
            WalBackend::Segmented => cfg.with_segmented_log(&dir),
            WalBackend::Mem => unreachable!(),
        };
    }
    let configs = vec![cfg; NODES];
    let (report, summaries) = if case.tcp {
        let c = TcpCluster::start(configs).expect("bind loopback");
        let report = c.run_workload(spec);
        assert!(c.quiesce(Duration::from_secs(30)), "cluster must quiesce");
        (report, c.shutdown())
    } else {
        let c = LiveCluster::start(configs);
        let report = c.run_workload(spec);
        assert!(c.quiesce(Duration::from_secs(30)), "cluster must quiesce");
        (report, c.shutdown())
    };
    if case.wal_backend.durable() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(report.failed, 0, "throughput run must not drop requests");
    let agg = |f: fn(&NodeSummary) -> u64| summaries.iter().map(f).sum();
    let obs = ObsSnapshot::merged(summaries.iter().filter_map(|s| s.obs.as_ref()));
    Measurement {
        case,
        report,
        log_forces: agg(|s| s.log.forced_writes),
        physical_flushes: agg(|s| s.log.physical_flushes),
        group_requests: agg(|s| s.group.requests),
        group_flushes: agg(|s| s.group.flushes),
        obs,
    }
}

/// Renders one phase's histogram as a JSON object. Phases with no
/// samples (e.g. `group_flush` with group commit off) render with a
/// zero count so every config carries the same columns.
fn phase_json(obs: &ObsSnapshot, phase: Phase) -> String {
    match obs.phase(phase) {
        Some(h) => format!(
            "{{ \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }}",
            h.count,
            h.p50(),
            h.p99(),
            h.max
        ),
        None => "{ \"count\": 0, \"p50\": 0, \"p99\": 0, \"max\": 0 }".to_string(),
    }
}

fn render_json(
    quick: bool,
    spec: &WorkloadSpec,
    measurements: &[Measurement],
    scale: &[ScalePoint],
    failures: &[FailureMeasurement],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"throughput\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(
        s,
        "  \"spec\": {{ \"nodes\": {NODES}, \"concurrency\": {}, \"txns\": {} }},",
        spec.concurrency, spec.txns
    );
    s.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let c = &m.case;
        let l = &m.report.latency;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"protocol\": \"{:?}\",", c.protocol);
        let _ = writeln!(
            s,
            "      \"transport\": \"{}\",",
            if c.tcp { "tcp" } else { "channel" }
        );
        // `log` repeats `wal_backend` for readers of the old schema.
        let _ = writeln!(s, "      \"log\": \"{}\",", c.wal_backend.name());
        let _ = writeln!(s, "      \"wal_backend\": \"{}\",", c.wal_backend.name());
        let _ = writeln!(s, "      \"group_commit\": {},", c.group_commit);
        let _ = writeln!(s, "      \"optimizations\": \"{}\",", c.optimizations);
        let _ = writeln!(s, "      \"committed\": {},", m.report.committed);
        let _ = writeln!(s, "      \"aborted\": {},", m.report.aborted);
        let _ = writeln!(s, "      \"failed\": {},", m.report.failed);
        let _ = writeln!(
            s,
            "      \"elapsed_ms\": {:.3},",
            m.report.elapsed.as_secs_f64() * 1e3
        );
        let _ = writeln!(s, "      \"txns_per_sec\": {:.1},", m.report.txns_per_sec());
        let _ = writeln!(
            s,
            "      \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},",
            l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
        let _ = writeln!(s, "      \"phase_latency_us\": {{");
        let phases = [
            Phase::Work,
            Phase::Prepare,
            Phase::Decision,
            Phase::Ack,
            Phase::Fsync,
            Phase::GroupFlush,
        ];
        for (j, p) in phases.iter().enumerate() {
            let _ = writeln!(
                s,
                "        \"{p}\": {}{}",
                phase_json(&m.obs, *p),
                if j + 1 < phases.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"log_forces\": {},", m.log_forces);
        let _ = writeln!(s, "      \"physical_flushes\": {},", m.physical_flushes);
        let _ = writeln!(s, "      \"group_requests\": {},", m.group_requests);
        let _ = writeln!(s, "      \"group_flushes\": {}", m.group_flushes);
        s.push_str(if i + 1 < measurements.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("  \"scale_curve\": [\n");
    for (i, p) in scale.iter().enumerate() {
        let r = &p.report;
        let l = &r.latency;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"lanes\": {},", p.lanes);
        let _ = writeln!(s, "      \"stripes\": {},", p.stripes);
        let _ = writeln!(s, "      \"in_flight\": {},", p.in_flight);
        let _ = writeln!(s, "      \"cpus\": {cpus},");
        let _ = writeln!(s, "      \"saturation\": {},", p.saturation);
        let _ = writeln!(s, "      \"offered_rate\": {:.1},", p.offered_rate);
        let _ = writeln!(s, "      \"committed\": {},", r.committed);
        let _ = writeln!(s, "      \"aborted\": {},", r.aborted);
        let _ = writeln!(s, "      \"failed\": {},", r.failed);
        let _ = writeln!(s, "      \"rejected\": {},", r.rejected);
        let _ = writeln!(s, "      \"max_queue_depth\": {},", r.max_queue_depth);
        let _ = writeln!(s, "      \"max_in_flight_seen\": {},", r.max_in_flight_seen);
        let _ = writeln!(
            s,
            "      \"elapsed_ms\": {:.3},",
            r.elapsed.as_secs_f64() * 1e3
        );
        let _ = writeln!(s, "      \"txns_per_sec\": {:.1},", r.txns_per_sec());
        let _ = writeln!(
            s,
            "      \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }}",
            l.mean_us, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
        s.push_str(if i + 1 < scale.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    // The driver-side timeline of the saturation cell: per-window
    // throughput, tail latency and queue depths — the time axis the
    // aggregate saturation row flattens away. Windows with no activity
    // are skipped.
    if let Some(sat) = scale.iter().find(|p| p.saturation) {
        let t = &sat.report.timeline;
        s.push_str("  \"timeline\": {\n");
        let _ = writeln!(s, "    \"cell\": \"saturation\",");
        let _ = writeln!(s, "    \"window_us\": {},", t.window_us);
        let _ = writeln!(s, "    \"late_drops\": {},", t.late_drops);
        s.push_str("    \"windows\": [\n");
        let window_sec = t.window_us as f64 / 1e6;
        let active: Vec<_> = t
            .windows
            .iter()
            .filter(|w| w.counters.iter().any(|&c| c > 0) || w.gauges.iter().any(|g| g.count > 0))
            .collect();
        for (i, w) in active.iter().enumerate() {
            let committed = w.counter(TimelineCounter::Committed);
            let _ = writeln!(
                s,
                "      {{ \"start_us\": {}, \"committed\": {}, \"aborted\": {}, \"rejected\": {}, \
                 \"tps\": {:.1}, \"commit_p99_us\": {}, \"admit_queue_max\": {}, \"in_flight_max\": {} }}{}",
                w.start_us,
                committed,
                w.counter(TimelineCounter::Aborted),
                w.counter(TimelineCounter::Rejected),
                committed as f64 / window_sec,
                w.hist(TimelineHist::Commit).p99(),
                w.gauge(TimelineGauge::AdmitQueue).max,
                w.gauge(TimelineGauge::InFlight).max,
                if i + 1 < active.len() { "," } else { "" }
            );
        }
        s.push_str("    ]\n");
        s.push_str("  },\n");
    }
    s.push_str("  \"failure_path\": [\n");
    for (i, f) in failures.iter().enumerate() {
        let r = &f.recovery;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"protocol\": \"{:?}\",", f.protocol);
        let _ = writeln!(s, "      \"lanes\": {},", f.lanes);
        let _ = writeln!(s, "      \"transport\": \"{}\",", f.transport);
        let _ = writeln!(s, "      \"log\": \"file\",");
        let _ = writeln!(s, "      \"outage_ms\": {},", f.outage.as_millis());
        let _ = writeln!(
            s,
            "      \"in_doubt_us\": {{ \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }},",
            f.in_doubt.count,
            f.in_doubt.p50(),
            f.in_doubt.p99(),
            f.in_doubt.max
        );
        let _ = writeln!(
            s,
            "      \"recovery\": {{ \"wal_records\": {}, \"wal_scan_us\": {}, \"in_doubt\": {}, \"queries_sent\": {}, \"redrives\": {}, \"interrupted_vote_aborts\": {} }},",
            r.wal_records_scanned,
            r.wal_scan_us,
            r.in_doubt_recovered,
            r.queries_sent,
            r.redrives,
            r.interrupted_vote_aborts
        );
        let _ = writeln!(
            s,
            "      \"restart_to_recovered_ms\": {:.3}",
            f.restart_to_recovered.as_secs_f64() * 1e3
        );
        s.push_str(if i + 1 < failures.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
