//! Prints the paper's protocol figures (time-sequence traces) from live
//! simulation runs.
//!
//! ```text
//! cargo run -p tpc-bench --bin gen_figures           # all figures
//! cargo run -p tpc-bench --bin gen_figures fig3 fig6 # a selection
//! ```

use tpc_sim::scenarios::*;
use tpc_sim::{protocol_only, render_trace, Sim};

fn print_figure(title: &str, mut sim: Sim) {
    let report = sim.run();
    println!("\n=== {title} ===");
    print!("{}", render_trace(&protocol_only(&report.trace)));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("fig1") {
        print_figure(
            "Figure 1: simple two-phase commit (basic)",
            fig1_basic_pair(),
        );
    }
    if want("fig2") {
        print_figure(
            "Figure 2: basic 2PC with cascaded coordinator",
            fig2_basic_cascade(),
        );
    }
    if want("fig3") {
        print_figure(
            "Figure 3: Presumed Nothing with intermediate coordinator",
            fig3_pn_cascade(),
        );
    }
    if want("fig4") {
        print_figure("Figure 4: partial read-only", fig4_partial_read_only());
    }
    if want("fig5") {
        let (sim, _) = fig5_partitioned_tree();
        print_figure(
            "Figure 5: partitioned-tree hazard (engine aborts the broken tree)",
            sim,
        );
    }
    if want("fig6") {
        print_figure("Figure 6: last agent", fig6_last_agent());
    }
    if want("fig7") {
        print_figure(
            "Figure 7: long locks (two transactions, piggybacked ack)",
            fig7_long_locks(),
        );
    }
    if want("fig8") {
        print_figure(
            "Figure 8: vote reliable (early ack, late-ack semantics)",
            fig8_vote_reliable(),
        );
    }
}
