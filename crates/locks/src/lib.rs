//! # tpc-locks
//!
//! A strict two-phase-locking lock manager.
//!
//! The paper's second throughput lever is lock time: "a faster commit
//! protocol can improve transaction throughput ... by causing locks to be
//! released sooner, reducing the wait time of other transactions" (§1).
//! This crate provides the substrate that makes that effect measurable:
//!
//! * shared/exclusive row locks with upgrade ([`LockMode`]);
//! * FIFO wait queues and a waits-for-graph deadlock detector
//!   ([`LockManager`]);
//! * per-lock hold-time tracking so the simulator can report exactly how
//!   much earlier each optimization releases locks ([`LockStats`]).
//!
//! The manager is synchronous and sans-IO, like the rest of the engine: a
//! blocked request returns [`Acquired::Wait`] and the caller resumes the
//! waiter when a later [`LockManager::release_all`] grants it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod mode;
mod striped;

pub use manager::{Acquired, LockManager, LockStats, ReleaseGrant};
pub use mode::LockMode;
pub use striped::{stripe_hash, StripedLockManager};
