//! The lock table, wait queues and deadlock detector.

use std::collections::{HashMap, HashSet, VecDeque};

use tpc_common::{SimDuration, SimTime, TxnId};

use crate::mode::LockMode;

type Key = Vec<u8>;

/// Result of a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued behind incompatible holders; the caller will
    /// be resumed by a [`ReleaseGrant`] from a later `release_all`.
    Wait,
    /// Granting would create a waits-for cycle; the requester was chosen
    /// as the victim and must abort. The request was not queued.
    Deadlock,
}

/// A waiter granted as a consequence of a release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReleaseGrant {
    /// Transaction whose blocked request is now granted.
    pub txn: TxnId,
    /// Key the grant is for.
    pub key: Key,
    /// Mode granted.
    pub mode: LockMode,
    /// How long the request waited.
    pub waited: SimDuration,
}

/// Lock-manager counters, including the hold-time figures the paper's
/// "early release of locks" claims are evaluated with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests received (including re-entrant ones).
    pub requests: u64,
    /// Requests granted without waiting.
    pub immediate_grants: u64,
    /// Requests that had to queue.
    pub waits: u64,
    /// Requests refused as deadlock victims.
    pub deadlocks: u64,
    /// Waiters evicted by [`LockManager::expire_waiters`] — the timeout
    /// backstop that resolves cycles spanning detector instances (e.g.
    /// stripes), which no per-instance waits-for graph can see.
    pub timeouts: u64,
    /// Individual lock releases.
    pub releases: u64,
    /// Sum of (release time − acquisition time) over released locks, µs.
    pub total_hold_micros: u64,
    /// Longest single hold, µs.
    pub max_hold_micros: u64,
    /// Sum of waiter queue time over granted waiters, µs.
    pub total_wait_micros: u64,
}

impl LockStats {
    /// Mean lock hold time across released locks.
    pub fn mean_hold(&self) -> SimDuration {
        SimDuration::from_micros(
            self.total_hold_micros
                .checked_div(self.releases)
                .unwrap_or(0),
        )
    }

    /// Folds another instance's counters into this one (stripe rollup).
    pub fn merge(&mut self, other: &LockStats) {
        self.requests += other.requests;
        self.immediate_grants += other.immediate_grants;
        self.waits += other.waits;
        self.deadlocks += other.deadlocks;
        self.timeouts += other.timeouts;
        self.releases += other.releases;
        self.total_hold_micros += other.total_hold_micros;
        self.max_hold_micros = self.max_hold_micros.max(other.max_hold_micros);
        self.total_wait_micros += other.total_wait_micros;
    }
}

#[derive(Clone, Debug)]
struct Holder {
    txn: TxnId,
    mode: LockMode,
    since: SimTime,
}

#[derive(Clone, Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    since: SimTime,
    /// True when the waiter already holds the lock in a weaker mode and is
    /// upgrading; upgraders are granted ahead of fresh waiters.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct Entry {
    holders: Vec<Holder>,
    waiters: VecDeque<Waiter>,
}

/// A strict-2PL lock manager for one resource manager.
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<Key, Entry>,
    /// Keys each transaction holds (for `release_all`).
    held: HashMap<TxnId, HashSet<Key>>,
    /// Keys each transaction is waiting on (at most one in 2PL, but kept
    /// as a set for robustness).
    waiting: HashMap<TxnId, HashSet<Key>>,
    stats: LockStats,
}

impl LockManager {
    /// An empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Number of keys with at least one holder or waiter.
    pub fn active_keys(&self) -> usize {
        self.table.len()
    }

    /// The mode `txn` currently holds on `key`, if any.
    pub fn held_mode(&self, txn: TxnId, key: &[u8]) -> Option<LockMode> {
        self.table
            .get(key)?
            .holders
            .iter()
            .find(|h| h.txn == txn)
            .map(|h| h.mode)
    }

    /// True if `txn` holds any lock.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.held.get(&txn).is_some_and(|s| !s.is_empty())
    }

    /// Requests `key` in `mode` for `txn` at virtual time `now`.
    pub fn acquire(&mut self, txn: TxnId, key: &[u8], mode: LockMode, now: SimTime) -> Acquired {
        self.stats.requests += 1;
        let entry = self.table.entry(key.to_vec()).or_default();

        // Re-entrant: already held in a covering mode.
        if let Some(h) = entry.holders.iter().find(|h| h.txn == txn) {
            if h.mode.covers(mode) {
                self.stats.immediate_grants += 1;
                return Acquired::Granted;
            }
            // Upgrade path: sole holder upgrades in place.
            if entry.holders.len() == 1 {
                entry.holders[0].mode = entry.holders[0].mode.max(mode);
                self.stats.immediate_grants += 1;
                return Acquired::Granted;
            }
            // Upgrade must wait for the other holders to go away.
            entry.waiters.push_front(Waiter {
                txn,
                mode,
                since: now,
                upgrade: true,
            });
            return self.queue_or_deadlock(txn, key);
        }

        let compatible_with_holders = entry.holders.iter().all(|h| h.mode.compatible(mode));
        // FIFO fairness: a fresh request must also not overtake queued
        // waiters (otherwise writers starve behind a stream of readers).
        if compatible_with_holders && entry.waiters.is_empty() {
            entry.holders.push(Holder {
                txn,
                mode,
                since: now,
            });
            self.held.entry(txn).or_default().insert(key.to_vec());
            self.stats.immediate_grants += 1;
            return Acquired::Granted;
        }

        entry.waiters.push_back(Waiter {
            txn,
            mode,
            since: now,
            upgrade: false,
        });
        self.queue_or_deadlock(txn, key)
    }

    /// After enqueuing `txn` on `key`, either confirm the wait or detect a
    /// deadlock, removing the waiter and reporting the requester as victim.
    fn queue_or_deadlock(&mut self, txn: TxnId, key: &[u8]) -> Acquired {
        self.waiting.entry(txn).or_default().insert(key.to_vec());
        if self.creates_cycle(txn) {
            // Victim: the requester. Remove its fresh waiter entry.
            if let Some(entry) = self.table.get_mut(key) {
                entry.waiters.retain(|w| w.txn != txn);
            }
            if let Some(w) = self.waiting.get_mut(&txn) {
                w.remove(key);
            }
            self.stats.deadlocks += 1;
            Acquired::Deadlock
        } else {
            self.stats.waits += 1;
            Acquired::Wait
        }
    }

    /// Waits-for-graph cycle test starting from `from`.
    ///
    /// Edges: a waiter waits for every holder of the key it is queued on
    /// whose mode is incompatible with its request (for upgrades, the
    /// holder entry of the waiter itself is skipped).
    fn creates_cycle(&self, from: TxnId) -> bool {
        let mut visited: HashSet<TxnId> = HashSet::new();
        let mut stack = vec![from];
        let mut first = true;
        while let Some(t) = stack.pop() {
            if !first && t == from {
                return true;
            }
            first = false;
            if !visited.insert(t) {
                continue;
            }
            if let Some(keys) = self.waiting.get(&t) {
                for key in keys {
                    if let Some(entry) = self.table.get(key) {
                        let my_mode = entry
                            .waiters
                            .iter()
                            .find(|w| w.txn == t)
                            .map(|w| w.mode)
                            .unwrap_or(LockMode::Exclusive);
                        for h in &entry.holders {
                            if h.txn != t && !h.mode.compatible(my_mode) {
                                if h.txn == from {
                                    return true;
                                }
                                stack.push(h.txn);
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Releases every lock `txn` holds (strict 2PL: at commit/abort), and
    /// removes it from any wait queue. Returns the waiters granted as a
    /// result, so the caller can resume them.
    pub fn release_all(&mut self, txn: TxnId, now: SimTime) -> Vec<ReleaseGrant> {
        let keys = self.held.remove(&txn).unwrap_or_default();
        // Also clear any queued requests by this transaction (aborting
        // while blocked).
        if let Some(waits) = self.waiting.remove(&txn) {
            for key in waits {
                if let Some(entry) = self.table.get_mut(&key) {
                    entry.waiters.retain(|w| w.txn != txn);
                }
            }
        }

        let mut grants = Vec::new();
        for key in keys {
            let Some(entry) = self.table.get_mut(&key) else {
                continue;
            };
            if let Some(pos) = entry.holders.iter().position(|h| h.txn == txn) {
                let holder = entry.holders.remove(pos);
                let held_for = now.since(holder.since);
                self.stats.releases += 1;
                self.stats.total_hold_micros += held_for.as_micros();
                self.stats.max_hold_micros = self.stats.max_hold_micros.max(held_for.as_micros());
            }
            grants.extend(self.promote_waiters(&key, now));
            if let Some(e) = self.table.get(&key) {
                if e.holders.is_empty() && e.waiters.is_empty() {
                    self.table.remove(&key);
                }
            }
        }
        grants
    }

    /// Transactions currently queued on some key, in no particular order.
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        self.waiting
            .iter()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(txn, _)| *txn)
            .collect()
    }

    /// Evicts every waiter queued longer than `max_wait` and promotes
    /// whoever their departure unblocks. Returns the evicted transactions
    /// (the caller must abort them — they may hold locks elsewhere, which
    /// the abort's `release_all` then frees) plus any follow-on grants.
    ///
    /// This is the timeout backstop for deadlocks the per-instance cycle
    /// detector cannot see: cycles threading through multiple stripes or
    /// multiple nodes.
    pub fn expire_waiters(
        &mut self,
        now: SimTime,
        max_wait: SimDuration,
    ) -> (Vec<TxnId>, Vec<ReleaseGrant>) {
        let mut victims: Vec<TxnId> = Vec::new();
        let mut touched: Vec<Key> = Vec::new();
        for (key, entry) in self.table.iter_mut() {
            let before = entry.waiters.len();
            entry.waiters.retain(|w| {
                if now.since(w.since) > max_wait {
                    victims.push(w.txn);
                    false
                } else {
                    true
                }
            });
            if entry.waiters.len() != before {
                touched.push(key.clone());
            }
        }
        // Dedup: a txn waiting on several keys is one victim.
        victims.sort_unstable();
        victims.dedup();
        for txn in &victims {
            self.stats.timeouts += 1;
            if let Some(keys) = self.waiting.remove(txn) {
                for key in keys {
                    if let Some(entry) = self.table.get_mut(&key) {
                        entry.waiters.retain(|w| w.txn != *txn);
                    }
                }
            }
        }
        let mut grants = Vec::new();
        for key in touched {
            grants.extend(self.promote_waiters(&key, now));
            if let Some(e) = self.table.get(&key) {
                if e.holders.is_empty() && e.waiters.is_empty() {
                    self.table.remove(&key);
                }
            }
        }
        (victims, grants)
    }

    /// Grants queued waiters on `key` in FIFO order while compatible.
    fn promote_waiters(&mut self, key: &[u8], now: SimTime) -> Vec<ReleaseGrant> {
        let mut grants = Vec::new();
        let Some(entry) = self.table.get_mut(key) else {
            return grants;
        };
        while let Some(w) = entry.waiters.front() {
            let ok = if w.upgrade {
                // Upgrade proceeds when the waiter is the sole remaining
                // holder.
                entry.holders.iter().all(|h| h.txn == w.txn)
            } else {
                entry.holders.iter().all(|h| h.mode.compatible(w.mode))
            };
            if !ok {
                break;
            }
            let w = entry.waiters.pop_front().expect("front checked");
            let waited = now.since(w.since);
            self.stats.total_wait_micros += waited.as_micros();
            if w.upgrade {
                if let Some(h) = entry.holders.iter_mut().find(|h| h.txn == w.txn) {
                    h.mode = h.mode.max(w.mode);
                } else {
                    entry.holders.push(Holder {
                        txn: w.txn,
                        mode: w.mode,
                        since: now,
                    });
                }
            } else {
                entry.holders.push(Holder {
                    txn: w.txn,
                    mode: w.mode,
                    since: now,
                });
            }
            self.held.entry(w.txn).or_default().insert(key.to_vec());
            if let Some(ws) = self.waiting.get_mut(&w.txn) {
                ws.remove(key);
            }
            grants.push(ReleaseGrant {
                txn: w.txn,
                key: key.to_vec(),
                mode: w.mode,
                waited,
            });
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    const K: &[u8] = b"k";

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Shared, SimTime(0)),
            Acquired::Granted
        );
        assert_eq!(
            lm.acquire(t(2), K, LockMode::Shared, SimTime(0)),
            Acquired::Granted
        );
        assert_eq!(lm.stats().immediate_grants, 2);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Exclusive, SimTime(0)),
            Acquired::Granted
        );
        assert_eq!(
            lm.acquire(t(2), K, LockMode::Shared, SimTime(1)),
            Acquired::Wait
        );
        assert_eq!(
            lm.acquire(t(3), K, LockMode::Exclusive, SimTime(2)),
            Acquired::Wait
        );
    }

    #[test]
    fn release_grants_fifo_and_reports_wait_time() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), K, LockMode::Exclusive, SimTime(10));
        lm.acquire(t(3), K, LockMode::Shared, SimTime(20));
        let grants = lm.release_all(t(1), SimTime(100));
        // Only t2 is granted (X); t3 stays queued behind it.
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(2));
        assert_eq!(grants[0].waited, SimDuration(90));
        let grants = lm.release_all(t(2), SimTime(150));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(3));
    }

    #[test]
    fn batch_of_shared_waiters_granted_together() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), K, LockMode::Shared, SimTime(1));
        lm.acquire(t(3), K, LockMode::Shared, SimTime(2));
        let grants = lm.release_all(t(1), SimTime(10));
        assert_eq!(grants.len(), 2);
    }

    #[test]
    fn fresh_reader_does_not_overtake_queued_writer() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Shared, SimTime(0));
        assert_eq!(
            lm.acquire(t(2), K, LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        // t3's shared request is compatible with the holder but must queue
        // behind the writer.
        assert_eq!(
            lm.acquire(t(3), K, LockMode::Shared, SimTime(2)),
            Acquired::Wait
        );
    }

    #[test]
    fn reentrant_and_covering_grants() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Shared, SimTime(1)),
            Acquired::Granted
        );
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Exclusive, SimTime(2)),
            Acquired::Granted
        );
        assert_eq!(lm.held_mode(t(1), K), Some(LockMode::Exclusive));
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Shared, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Exclusive, SimTime(1)),
            Acquired::Granted
        );
        assert_eq!(lm.held_mode(t(1), K), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_proceeds() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Shared, SimTime(0));
        lm.acquire(t(2), K, LockMode::Shared, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        let grants = lm.release_all(t(2), SimTime(10));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(1));
        assert_eq!(lm.held_mode(t(1), K), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_upgrade_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Shared, SimTime(0));
        lm.acquire(t(2), K, LockMode::Shared, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), K, LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        // t2 upgrading too closes the cycle: t2 waits for t1's S hold,
        // t1 waits for t2's S hold.
        assert_eq!(
            lm.acquire(t(2), K, LockMode::Exclusive, SimTime(2)),
            Acquired::Deadlock
        );
        assert_eq!(lm.stats().deadlocks, 1);
    }

    #[test]
    fn two_key_cycle_detected() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), b"a", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), b"b", LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), b"b", LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        assert_eq!(
            lm.acquire(t(2), b"a", LockMode::Exclusive, SimTime(2)),
            Acquired::Deadlock
        );
    }

    #[test]
    fn three_txn_cycle_detected() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), b"a", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), b"b", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(3), b"c", LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), b"b", LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        assert_eq!(
            lm.acquire(t(2), b"c", LockMode::Exclusive, SimTime(2)),
            Acquired::Wait
        );
        assert_eq!(
            lm.acquire(t(3), b"a", LockMode::Exclusive, SimTime(3)),
            Acquired::Deadlock
        );
    }

    #[test]
    fn victim_request_is_not_left_queued() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), b"a", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), b"b", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(1), b"b", LockMode::Exclusive, SimTime(1));
        assert_eq!(
            lm.acquire(t(2), b"a", LockMode::Exclusive, SimTime(2)),
            Acquired::Deadlock
        );
        // t2 aborts, releasing b; t1 should be granted b.
        let grants = lm.release_all(t(2), SimTime(3));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(1));
        assert_eq!(grants[0].key, b"b".to_vec());
    }

    #[test]
    fn release_while_waiting_dequeues() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), K, LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), K, LockMode::Exclusive, SimTime(1));
        // t2 aborts while queued.
        let grants = lm.release_all(t(2), SimTime(2));
        assert!(grants.is_empty());
        // t1 releasing now grants nobody and empties the table.
        let grants = lm.release_all(t(1), SimTime(3));
        assert!(grants.is_empty());
        assert_eq!(lm.active_keys(), 0);
    }

    #[test]
    fn hold_time_statistics() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), b"a", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(1), b"b", LockMode::Shared, SimTime(0));
        lm.release_all(t(1), SimTime(250));
        let s = lm.stats();
        assert_eq!(s.releases, 2);
        assert_eq!(s.total_hold_micros, 500);
        assert_eq!(s.max_hold_micros, 250);
        assert_eq!(s.mean_hold(), SimDuration(250));
    }

    #[test]
    fn holds_any_tracks_lifecycle() {
        let mut lm = LockManager::new();
        assert!(!lm.holds_any(t(1)));
        lm.acquire(t(1), K, LockMode::Shared, SimTime(0));
        assert!(lm.holds_any(t(1)));
        lm.release_all(t(1), SimTime(1));
        assert!(!lm.holds_any(t(1)));
    }

    #[test]
    fn mean_hold_on_empty_stats_is_zero() {
        assert_eq!(LockStats::default().mean_hold(), SimDuration::ZERO);
    }
}
