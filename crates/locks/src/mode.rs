//! Lock modes and their compatibility matrix.

/// Row lock modes. Shared suffices for reads; exclusive is required for
/// updates. (The paper's LRMs are databases and file managers; S/X is the
/// minimal matrix that exhibits every locking effect the optimizations
/// trade on.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared — compatible with other shared locks.
    Shared,
    /// Exclusive — compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Can a lock in `self` mode coexist with one in `other` mode held by
    /// a *different* transaction?
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// The mode covering both — used for upgrades.
    #[inline]
    pub fn max(self, other: LockMode) -> LockMode {
        if self == LockMode::Exclusive || other == LockMode::Exclusive {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }

    /// True if holding `self` already satisfies a request for `req`.
    #[inline]
    pub fn covers(self, req: LockMode) -> bool {
        self.max(req) == self
    }
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LockMode::Shared => "S",
            LockMode::Exclusive => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn compatibility_is_symmetric() {
        use LockMode::*;
        for a in [Shared, Exclusive] {
            for b in [Shared, Exclusive] {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn max_and_covers() {
        use LockMode::*;
        assert_eq!(Shared.max(Exclusive), Exclusive);
        assert_eq!(Shared.max(Shared), Shared);
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
    }
}
