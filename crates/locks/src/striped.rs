//! A key-hash-striped lock manager for concurrent hosts.
//!
//! [`LockManager`] is single-threaded by design: the sim owns one per
//! node and calls it inline. A live node running many coordinator lanes
//! needs concurrent lock traffic, and a single `Mutex<LockManager>`
//! would serialize every lane on one global table. [`StripedLockManager`]
//! splits the key space into N independent stripes selected by key hash,
//! each a full `LockManager` behind its own lock — two lanes touching
//! different stripes never contend.
//!
//! Deadlock handling is two-tier: the per-stripe waits-for-graph detector
//! still catches every cycle whose keys hash to one stripe, and
//! [`StripedLockManager::expire_waiters`] provides the timeout backstop
//! for cycles threading across stripes (which no single stripe's graph
//! can see). With `stripes = 1` the behavior is exactly the single-table
//! manager's.

use std::collections::HashSet;
use std::sync::Mutex;

use tpc_common::{SimDuration, SimTime, TxnId};

use crate::manager::{Acquired, LockManager, LockStats, ReleaseGrant};
use crate::mode::LockMode;

/// Shards of the txn → touched-stripes index. Fixed; contention there is
/// brief (point insert/remove under the shard mutex).
const TOUCH_SHARDS: usize = 16;

/// FNV-1a over the key bytes. Stable across runs and cheap; the same
/// function must be used by every layer that co-partitions with the lock
/// table (the RM's striped stores).
#[inline]
pub fn stripe_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sharded [`LockManager`]: N stripes by key hash, safe to call from
/// many threads (`&self` API).
#[derive(Debug)]
pub struct StripedLockManager {
    stripes: Vec<Mutex<LockManager>>,
    /// Which stripes each txn has touched, sharded by txn hash so
    /// `release_all` visits only relevant stripes without a global map.
    touched: Vec<Mutex<std::collections::HashMap<TxnId, HashSet<usize>>>>,
}

impl StripedLockManager {
    /// A manager with `stripes` independent lock tables (min 1).
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1);
        StripedLockManager {
            stripes: (0..n).map(|_| Mutex::new(LockManager::new())).collect(),
            touched: (0..TOUCH_SHARDS)
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index `key` maps to.
    #[inline]
    pub fn stripe_of(&self, key: &[u8]) -> usize {
        (stripe_hash(key) % self.stripes.len() as u64) as usize
    }

    fn touch_shard(&self, txn: TxnId) -> &Mutex<std::collections::HashMap<TxnId, HashSet<usize>>> {
        let h = txn.origin.0 as u64 ^ txn.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.touched[(h % TOUCH_SHARDS as u64) as usize]
    }

    /// Requests `key` in `mode` for `txn`. Same contract as
    /// [`LockManager::acquire`]; per-stripe deadlock detection applies.
    pub fn acquire(&self, txn: TxnId, key: &[u8], mode: LockMode, now: SimTime) -> Acquired {
        let idx = self.stripe_of(key);
        let got = {
            let mut stripe = self.stripes[idx].lock().expect("stripe poisoned");
            stripe.acquire(txn, key, mode, now)
        };
        if got != Acquired::Deadlock {
            // Both grants and queued waits pin the stripe: release_all
            // must also clear queued requests of an aborting waiter.
            self.touch_shard(txn)
                .lock()
                .expect("touch shard poisoned")
                .entry(txn)
                .or_default()
                .insert(idx);
        }
        got
    }

    /// Releases everything `txn` holds or waits for, visiting only the
    /// stripes it touched. Returns the follow-on grants (which may belong
    /// to other lanes — the caller routes them).
    pub fn release_all(&self, txn: TxnId, now: SimTime) -> Vec<ReleaseGrant> {
        let stripes = self
            .touch_shard(txn)
            .lock()
            .expect("touch shard poisoned")
            .remove(&txn)
            .unwrap_or_default();
        let mut grants = Vec::new();
        for idx in stripes {
            let mut stripe = self.stripes[idx].lock().expect("stripe poisoned");
            grants.extend(stripe.release_all(txn, now));
        }
        grants
    }

    /// Evicts waiters queued longer than `max_wait` on every stripe — the
    /// cross-stripe deadlock backstop. Returns victims to abort plus the
    /// grants their departure unblocked.
    pub fn expire_waiters(
        &self,
        now: SimTime,
        max_wait: SimDuration,
    ) -> (Vec<TxnId>, Vec<ReleaseGrant>) {
        let mut victims = Vec::new();
        let mut grants = Vec::new();
        for stripe in &self.stripes {
            let (v, g) = stripe
                .lock()
                .expect("stripe poisoned")
                .expire_waiters(now, max_wait);
            victims.extend(v);
            grants.extend(g);
        }
        victims.sort_unstable();
        victims.dedup();
        (victims, grants)
    }

    /// The mode `txn` holds on `key`, if any.
    pub fn held_mode(&self, txn: TxnId, key: &[u8]) -> Option<LockMode> {
        self.stripes[self.stripe_of(key)]
            .lock()
            .expect("stripe poisoned")
            .held_mode(txn, key)
    }

    /// True if `txn` holds any lock on any stripe.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.touch_shard(txn)
            .lock()
            .expect("touch shard poisoned")
            .get(&txn)
            .is_some_and(|stripes| {
                stripes.iter().any(|&idx| {
                    self.stripes[idx]
                        .lock()
                        .expect("stripe poisoned")
                        .holds_any(txn)
                })
            })
    }

    /// Transactions queued on some stripe right now.
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .stripes
            .iter()
            .flat_map(|s| s.lock().expect("stripe poisoned").waiting_txns())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Keys with at least one holder or waiter, summed over stripes.
    pub fn active_keys(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").active_keys())
            .sum()
    }

    /// Counters summed over all stripes.
    pub fn stats(&self) -> LockStats {
        let mut total = LockStats::default();
        for stripe in &self.stripes {
            total.merge(&stripe.lock().expect("stripe poisoned").stats());
        }
        total
    }

    /// Per-stripe counters, in stripe-index order. Contention telemetry:
    /// an uneven `waits` / `total_wait_micros` distribution across stripes
    /// is a hot-key (or bad-hash) signature the merged view hides.
    pub fn per_stripe_stats(&self) -> Vec<LockStats> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").stats())
            .collect()
    }

    /// Transactions queued behind a lock right now, per stripe — the
    /// waits-for depth each stripe is carrying at this instant.
    pub fn per_stripe_waiters(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").waiting_txns().len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::NodeId;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn stripes_do_not_phantom_conflict() {
        // X locks on distinct keys never conflict, whatever stripe they
        // hash to.
        let lm = StripedLockManager::new(4);
        for i in 0..64u64 {
            let key = format!("k{i}");
            assert_eq!(
                lm.acquire(t(i), key.as_bytes(), LockMode::Exclusive, SimTime(0)),
                Acquired::Granted
            );
        }
        assert_eq!(lm.stats().immediate_grants, 64);
        assert_eq!(lm.stats().waits, 0);
    }

    #[test]
    fn conflict_and_release_grant_across_threads() {
        let lm = std::sync::Arc::new(StripedLockManager::new(8));
        assert_eq!(
            lm.acquire(t(1), b"hot", LockMode::Exclusive, SimTime(0)),
            Acquired::Granted
        );
        let lm2 = lm.clone();
        let waiter =
            std::thread::spawn(move || lm2.acquire(t(2), b"hot", LockMode::Exclusive, SimTime(1)));
        assert_eq!(waiter.join().unwrap(), Acquired::Wait);
        let grants = lm.release_all(t(1), SimTime(10));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(2));
        assert!(lm.holds_any(t(2)));
    }

    #[test]
    fn single_stripe_matches_single_table_deadlock() {
        // One stripe = the plain manager: the two-key cycle is caught by
        // the graph detector, not the timeout.
        let lm = StripedLockManager::new(1);
        lm.acquire(t(1), b"a", LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), b"b", LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), b"b", LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        assert_eq!(
            lm.acquire(t(2), b"a", LockMode::Exclusive, SimTime(2)),
            Acquired::Deadlock
        );
    }

    #[test]
    fn cross_stripe_cycle_resolved_by_timeout() {
        // Force keys into different stripes, build an a↔b cycle the
        // per-stripe detectors cannot see, then expire.
        let lm = StripedLockManager::new(8);
        let (a, b) = two_keys_on_distinct_stripes(&lm);
        lm.acquire(t(1), &a, LockMode::Exclusive, SimTime(0));
        lm.acquire(t(2), &b, LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(1), &b, LockMode::Exclusive, SimTime(1)),
            Acquired::Wait,
            "cross-stripe edge is invisible to the stripe detector"
        );
        assert_eq!(
            lm.acquire(t(2), &a, LockMode::Exclusive, SimTime(2)),
            Acquired::Wait
        );
        let (victims, _grants) = lm.expire_waiters(SimTime(10_000), SimDuration(1_000));
        assert!(!victims.is_empty(), "timeout must break the cycle");
        assert!(lm.stats().timeouts >= 1);
        // Aborting the victims unjams the survivors.
        let mut grants = Vec::new();
        for v in &victims {
            grants.extend(lm.release_all(*v, SimTime(10_001)));
        }
        let survivors: Vec<TxnId> = [t(1), t(2)]
            .into_iter()
            .filter(|x| !victims.contains(x))
            .collect();
        for s in survivors {
            assert!(grants.iter().any(|g| g.txn == s) || lm.holds_any(s));
        }
    }

    fn two_keys_on_distinct_stripes(lm: &StripedLockManager) -> (Vec<u8>, Vec<u8>) {
        let a = b"seed".to_vec();
        let sa = lm.stripe_of(&a);
        for i in 0..1024 {
            let b = format!("probe{i}").into_bytes();
            if lm.stripe_of(&b) != sa {
                return (a, b);
            }
        }
        panic!("no second stripe found");
    }

    #[test]
    fn release_of_queued_waiter_dequeues_everywhere() {
        let lm = StripedLockManager::new(4);
        lm.acquire(t(1), b"x", LockMode::Exclusive, SimTime(0));
        assert_eq!(
            lm.acquire(t(2), b"x", LockMode::Exclusive, SimTime(1)),
            Acquired::Wait
        );
        assert_eq!(lm.waiting_txns(), vec![t(2)]);
        // t2 aborts while queued: nothing granted, queue cleaned.
        assert!(lm.release_all(t(2), SimTime(2)).is_empty());
        assert!(lm.waiting_txns().is_empty());
        assert!(lm.release_all(t(1), SimTime(3)).is_empty());
        assert_eq!(lm.active_keys(), 0);
    }
}
