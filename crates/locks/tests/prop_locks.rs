//! Property tests for the lock manager: no conflicting grants, no lost
//! waiters, no leaked state — under arbitrary acquire/release schedules.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use tpc_common::{NodeId, SimDuration, SimTime, TxnId};
use tpc_locks::{Acquired, LockManager, LockMode, StripedLockManager};

#[derive(Clone, Debug)]
enum LockOp {
    Acquire { txn: u8, key: u8, exclusive: bool },
    ReleaseAll { txn: u8 },
}

fn arb_op(txns: u8, keys: u8) -> impl Strategy<Value = LockOp> {
    prop_oneof![
        3 => (0..txns, 0..keys, any::<bool>())
            .prop_map(|(txn, key, exclusive)| LockOp::Acquire { txn, key, exclusive }),
        1 => (0..txns).prop_map(|txn| LockOp::ReleaseAll { txn }),
    ]
}

fn t(n: u8) -> TxnId {
    TxnId::new(NodeId(0), n as u64)
}

/// Grant order within one release depends on map iteration order, which
/// is not part of the contract — compare grant batches as multisets.
fn canon(mut grants: Vec<tpc_locks::ReleaseGrant>) -> Vec<tpc_locks::ReleaseGrant> {
    grants.sort_by(|a, b| (a.txn, &a.key).cmp(&(b.txn, &b.key)));
    grants
}

/// A simple shadow model: who holds what, in which mode.
#[derive(Default)]
struct Shadow {
    holders: HashMap<u8, Vec<(u8, LockMode)>>, // key -> [(txn, mode)]
}

impl Shadow {
    fn grant(&mut self, key: u8, txn: u8, mode: LockMode) {
        let entry = self.holders.entry(key).or_default();
        if let Some(h) = entry.iter_mut().find(|(t, _)| *t == txn) {
            h.1 = h.1.max(mode);
        } else {
            entry.push((txn, mode));
        }
    }

    fn release(&mut self, txn: u8) {
        for entry in self.holders.values_mut() {
            entry.retain(|(t, _)| *t != txn);
        }
    }

    fn check_compatible(&self) -> Result<(), String> {
        for (key, holders) in &self.holders {
            for (i, (t1, m1)) in holders.iter().enumerate() {
                for (t2, m2) in holders.iter().skip(i + 1) {
                    if t1 != t2 && !m1.compatible(*m2) {
                        return Err(format!(
                            "key {key}: txn {t1} holds {m1} while txn {t2} holds {m2}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

proptest! {
    /// Two transactions never simultaneously hold incompatible modes on
    /// one key, and every queued waiter is eventually granted or cleared.
    #[test]
    fn no_conflicting_grants_ever(ops in prop::collection::vec(arb_op(6, 4), 1..120)) {
        let mut lm = LockManager::new();
        let mut shadow = Shadow::default();
        let mut blocked: HashSet<u8> = HashSet::new();
        let mut requested_mode: HashMap<(u8, u8), LockMode> = HashMap::new();
        let mut clock = 0u64;

        for op in ops {
            clock += 1;
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    if blocked.contains(&txn) {
                        continue; // a blocked txn cannot issue more requests
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match lm.acquire(t(txn), &[key], mode, SimTime(clock)) {
                        Acquired::Granted => {
                            shadow.grant(key, txn, mode);
                            shadow.check_compatible().map_err(TestCaseError::fail)?;
                        }
                        Acquired::Wait => {
                            blocked.insert(txn);
                            requested_mode.insert((txn, key), mode);
                        }
                        Acquired::Deadlock => {
                            // Victim aborts: release everything.
                            let grants = lm.release_all(t(txn), SimTime(clock));
                            shadow.release(txn);
                            for g in grants {
                                let gt = g.txn.seq as u8;
                                blocked.remove(&gt);
                                shadow.grant(g.key[0], gt, g.mode);
                            }
                            shadow.check_compatible().map_err(TestCaseError::fail)?;
                        }
                    }
                }
                LockOp::ReleaseAll { txn } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let grants = lm.release_all(t(txn), SimTime(clock));
                    shadow.release(txn);
                    for g in grants {
                        let gt = g.txn.seq as u8;
                        blocked.remove(&gt);
                        shadow.grant(g.key[0], gt, g.mode);
                    }
                    shadow.check_compatible().map_err(TestCaseError::fail)?;
                }
            }
        }

        // Drain: release every unblocked holder repeatedly; the table
        // must empty (no leaked locks, no stranded waiters).
        for _ in 0..16 {
            clock += 1;
            for txn in 0..6u8 {
                let grants = lm.release_all(t(txn), SimTime(clock));
                shadow.release(txn);
                for g in grants {
                    let gt = g.txn.seq as u8;
                    blocked.remove(&gt);
                    shadow.grant(g.key[0], gt, g.mode);
                }
            }
        }
        prop_assert_eq!(lm.active_keys(), 0, "lock table must drain");
    }

    /// Hold-time accounting is conserved: total hold time equals the sum
    /// of (release - acquire) for sequentially held locks.
    #[test]
    fn hold_time_accounting(holds in prop::collection::vec((1u64..100, 1u64..100), 1..20)) {
        let mut lm = LockManager::new();
        let mut clock = 0u64;
        let mut expected_total = 0u64;
        for (i, (start_gap, hold)) in holds.iter().enumerate() {
            clock += start_gap;
            let txn = t(i as u8);
            lm.acquire(txn, b"k", LockMode::Exclusive, SimTime(clock));
            clock += hold;
            lm.release_all(txn, SimTime(clock));
            expected_total += hold;
        }
        prop_assert_eq!(lm.stats().total_hold_micros, expected_total);
        prop_assert_eq!(lm.stats().releases, holds.len() as u64);
    }

    /// With one stripe, the striped manager is observationally identical
    /// to the plain single-table manager: same per-op outcome, same
    /// follow-on grants, same final counters.
    #[test]
    fn one_stripe_equals_single_table(ops in prop::collection::vec(arb_op(6, 4), 1..120)) {
        let flat = &mut LockManager::new();
        let striped = StripedLockManager::new(1);
        let mut blocked: HashSet<u8> = HashSet::new();
        let mut clock = 0u64;

        for op in ops {
            clock += 1;
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let a = flat.acquire(t(txn), &[key], mode, SimTime(clock));
                    let b = striped.acquire(t(txn), &[key], mode, SimTime(clock));
                    prop_assert_eq!(&a, &b, "acquire outcomes diverge");
                    match a {
                        Acquired::Wait => { blocked.insert(txn); }
                        Acquired::Deadlock => {
                            let ga = canon(flat.release_all(t(txn), SimTime(clock)));
                            let gb = canon(striped.release_all(t(txn), SimTime(clock)));
                            prop_assert_eq!(&ga, &gb, "victim-release grants diverge");
                            for g in ga {
                                blocked.remove(&(g.txn.seq as u8));
                            }
                        }
                        Acquired::Granted => {}
                    }
                }
                LockOp::ReleaseAll { txn } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let ga = canon(flat.release_all(t(txn), SimTime(clock)));
                    let gb = canon(striped.release_all(t(txn), SimTime(clock)));
                    prop_assert_eq!(&ga, &gb, "release grants diverge");
                    for g in ga {
                        blocked.remove(&(g.txn.seq as u8));
                    }
                }
            }
        }

        // Drain both and compare the endgame too.
        for _ in 0..16 {
            clock += 1;
            for txn in 0..6u8 {
                let ga = canon(flat.release_all(t(txn), SimTime(clock)));
                let gb = canon(striped.release_all(t(txn), SimTime(clock)));
                prop_assert_eq!(ga, gb);
            }
        }
        prop_assert_eq!(flat.active_keys(), striped.active_keys());
        prop_assert_eq!(flat.stats(), striped.stats());
    }

    /// Transactions whose key sets are disjoint never interact: every
    /// acquire is an immediate grant regardless of how keys hash across
    /// stripes (no phantom conflicts from stripe sharing).
    #[test]
    fn disjoint_keys_never_conflict(
        stripes in 1usize..9,
        picks in prop::collection::vec((0u8..8, 0u8..6), 1..100),
    ) {
        let lm = StripedLockManager::new(stripes);
        let mut clock = 0u64;
        for (txn, k) in picks {
            clock += 1;
            // Key space is partitioned per txn, so no two txns ever name
            // the same key even when they land on the same stripe.
            let key = format!("txn{txn}-key{k}");
            let got = lm.acquire(t(txn), key.as_bytes(), LockMode::Exclusive, SimTime(clock));
            prop_assert_eq!(got, Acquired::Granted, "phantom conflict on {}", key);
        }
        prop_assert_eq!(lm.stats().waits, 0);
        prop_assert_eq!(lm.stats().deadlocks, 0);
        for txn in 0..8u8 {
            prop_assert!(lm.release_all(t(txn), SimTime(clock + 1)).is_empty());
        }
        prop_assert_eq!(lm.active_keys(), 0);
    }

    /// No lost wakeups: under an arbitrary contended schedule on an
    /// arbitrary stripe count, once every transaction has released, no
    /// waiter is left queued and the table drains — every Wait was
    /// resolved by a grant, a deadlock abort, or a timeout eviction.
    #[test]
    fn waiters_are_never_lost(
        stripes in 1usize..9,
        ops in prop::collection::vec(arb_op(6, 4), 1..120),
    ) {
        let lm = StripedLockManager::new(stripes);
        let mut blocked: HashSet<u8> = HashSet::new();
        let mut clock = 0u64;

        let unblock = |grants: &[tpc_locks::ReleaseGrant], blocked: &mut HashSet<u8>| {
            for g in grants {
                blocked.remove(&(g.txn.seq as u8));
            }
        };

        for op in ops {
            clock += 1;
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match lm.acquire(t(txn), &[key], mode, SimTime(clock)) {
                        Acquired::Granted => {}
                        Acquired::Wait => { blocked.insert(txn); }
                        Acquired::Deadlock => {
                            let grants = lm.release_all(t(txn), SimTime(clock));
                            unblock(&grants, &mut blocked);
                        }
                    }
                }
                LockOp::ReleaseAll { txn } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let grants = lm.release_all(t(txn), SimTime(clock));
                    unblock(&grants, &mut blocked);
                }
            }
        }

        // Cross-stripe cycles are invisible to per-stripe detectors; the
        // timeout backstop must evict them. Then drain all survivors.
        clock += 1_000_000;
        let (victims, grants) = lm.expire_waiters(SimTime(clock), SimDuration(1));
        unblock(&grants, &mut blocked);
        for v in victims {
            blocked.remove(&(v.seq as u8));
            let grants = lm.release_all(v, SimTime(clock));
            unblock(&grants, &mut blocked);
        }
        for _ in 0..16 {
            clock += 1;
            for txn in 0..6u8 {
                if blocked.contains(&txn) {
                    continue;
                }
                let grants = lm.release_all(t(txn), SimTime(clock));
                unblock(&grants, &mut blocked);
            }
        }
        prop_assert!(blocked.is_empty(), "stranded waiters: {:?}", blocked);
        prop_assert!(lm.waiting_txns().is_empty());
        prop_assert_eq!(lm.active_keys(), 0, "lock table must drain");
    }
}
