//! Property tests for the lock manager: no conflicting grants, no lost
//! waiters, no leaked state — under arbitrary acquire/release schedules.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use tpc_common::{NodeId, SimTime, TxnId};
use tpc_locks::{Acquired, LockManager, LockMode};

#[derive(Clone, Debug)]
enum LockOp {
    Acquire { txn: u8, key: u8, exclusive: bool },
    ReleaseAll { txn: u8 },
}

fn arb_op(txns: u8, keys: u8) -> impl Strategy<Value = LockOp> {
    prop_oneof![
        3 => (0..txns, 0..keys, any::<bool>())
            .prop_map(|(txn, key, exclusive)| LockOp::Acquire { txn, key, exclusive }),
        1 => (0..txns).prop_map(|txn| LockOp::ReleaseAll { txn }),
    ]
}

fn t(n: u8) -> TxnId {
    TxnId::new(NodeId(0), n as u64)
}

/// A simple shadow model: who holds what, in which mode.
#[derive(Default)]
struct Shadow {
    holders: HashMap<u8, Vec<(u8, LockMode)>>, // key -> [(txn, mode)]
}

impl Shadow {
    fn grant(&mut self, key: u8, txn: u8, mode: LockMode) {
        let entry = self.holders.entry(key).or_default();
        if let Some(h) = entry.iter_mut().find(|(t, _)| *t == txn) {
            h.1 = h.1.max(mode);
        } else {
            entry.push((txn, mode));
        }
    }

    fn release(&mut self, txn: u8) {
        for entry in self.holders.values_mut() {
            entry.retain(|(t, _)| *t != txn);
        }
    }

    fn check_compatible(&self) -> Result<(), String> {
        for (key, holders) in &self.holders {
            for (i, (t1, m1)) in holders.iter().enumerate() {
                for (t2, m2) in holders.iter().skip(i + 1) {
                    if t1 != t2 && !m1.compatible(*m2) {
                        return Err(format!(
                            "key {key}: txn {t1} holds {m1} while txn {t2} holds {m2}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

proptest! {
    /// Two transactions never simultaneously hold incompatible modes on
    /// one key, and every queued waiter is eventually granted or cleared.
    #[test]
    fn no_conflicting_grants_ever(ops in prop::collection::vec(arb_op(6, 4), 1..120)) {
        let mut lm = LockManager::new();
        let mut shadow = Shadow::default();
        let mut blocked: HashSet<u8> = HashSet::new();
        let mut requested_mode: HashMap<(u8, u8), LockMode> = HashMap::new();
        let mut clock = 0u64;

        for op in ops {
            clock += 1;
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    if blocked.contains(&txn) {
                        continue; // a blocked txn cannot issue more requests
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match lm.acquire(t(txn), &[key], mode, SimTime(clock)) {
                        Acquired::Granted => {
                            shadow.grant(key, txn, mode);
                            shadow.check_compatible().map_err(TestCaseError::fail)?;
                        }
                        Acquired::Wait => {
                            blocked.insert(txn);
                            requested_mode.insert((txn, key), mode);
                        }
                        Acquired::Deadlock => {
                            // Victim aborts: release everything.
                            let grants = lm.release_all(t(txn), SimTime(clock));
                            shadow.release(txn);
                            for g in grants {
                                let gt = g.txn.seq as u8;
                                blocked.remove(&gt);
                                shadow.grant(g.key[0], gt, g.mode);
                            }
                            shadow.check_compatible().map_err(TestCaseError::fail)?;
                        }
                    }
                }
                LockOp::ReleaseAll { txn } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let grants = lm.release_all(t(txn), SimTime(clock));
                    shadow.release(txn);
                    for g in grants {
                        let gt = g.txn.seq as u8;
                        blocked.remove(&gt);
                        shadow.grant(g.key[0], gt, g.mode);
                    }
                    shadow.check_compatible().map_err(TestCaseError::fail)?;
                }
            }
        }

        // Drain: release every unblocked holder repeatedly; the table
        // must empty (no leaked locks, no stranded waiters).
        for _ in 0..16 {
            clock += 1;
            for txn in 0..6u8 {
                let grants = lm.release_all(t(txn), SimTime(clock));
                shadow.release(txn);
                for g in grants {
                    let gt = g.txn.seq as u8;
                    blocked.remove(&gt);
                    shadow.grant(g.key[0], gt, g.mode);
                }
            }
        }
        prop_assert_eq!(lm.active_keys(), 0, "lock table must drain");
    }

    /// Hold-time accounting is conserved: total hold time equals the sum
    /// of (release - acquire) for sequentially held locks.
    #[test]
    fn hold_time_accounting(holds in prop::collection::vec((1u64..100, 1u64..100), 1..20)) {
        let mut lm = LockManager::new();
        let mut clock = 0u64;
        let mut expected_total = 0u64;
        for (i, (start_gap, hold)) in holds.iter().enumerate() {
            clock += start_gap;
            let txn = t(i as u8);
            lm.acquire(txn, b"k", LockMode::Exclusive, SimTime(clock));
            clock += hold;
            lm.release_all(txn, SimTime(clock));
            expected_total += hold;
        }
        prop_assert_eq!(lm.stats().total_hold_micros, expected_total);
        prop_assert_eq!(lm.stats().releases, holds.len() as u64);
    }
}
