//! Virtual time for the deterministic simulator.
//!
//! The paper's lock-hold-time and elapsed-time comparisons depend only on
//! *relative* delays (network latency, log-force latency), so the simulator
//! runs on a virtual microsecond clock. The live runtime maps these to real
//! `std::time` values.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulated timeline, in microseconds since scenario start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Scenario start.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since scenario start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`. Saturates at zero rather than
    /// panicking if the arguments are swapped.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// The span in microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in (truncated) milliseconds.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds, for report output.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        assert_eq!((t + SimDuration::from_micros(5)).since(t).as_micros(), 5);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime(10);
        let late = SimTime(20);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late - early, SimDuration(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
