//! Votes cast during the first (voting) phase of two-phase commit.

use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::{Error, Result};

/// The vote a participant returns in response to `Prepare` (or volunteers,
/// under the unsolicited-vote optimization).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Vote {
    /// The participant guarantees it can commit or abort as directed,
    /// across failures. Carries the optimization flags of §4 of the paper.
    Yes(VoteFlags),
    /// The participant cannot prepare; the transaction must abort.
    No,
    /// The participant performed no updates: commit and abort are identical
    /// for it, it releases its locks now and skips phase two entirely.
    ReadOnly,
}

impl Vote {
    /// True for `Yes` with any flag combination.
    #[inline]
    pub fn is_yes(self) -> bool {
        matches!(self, Vote::Yes(_))
    }

    /// Flags carried by a `Yes` vote, if any.
    #[inline]
    pub fn flags(self) -> Option<VoteFlags> {
        match self {
            Vote::Yes(f) => Some(f),
            _ => None,
        }
    }
}

/// Qualifiers a subordinate attaches to its YES vote.
///
/// These are the per-vote bits the paper's optimizations need:
///
/// * `ok_to_leave_out` — the subordinate (and its whole subtree) will
///   suspend until re-invoked, so the coordinator may exclude it from the
///   next transaction's commit if no data is exchanged (§4, *Leaving
///   Inactive Partners Out*). Protected variable: takes effect only if the
///   transaction commits.
/// * `reliable` — every resource below this vote is one for which heuristic
///   decisions are "very unlikely"; permits early acknowledgment with
///   late-ack semantics (§4, *Vote Reliable*).
/// * `unsolicited` — the vote was volunteered before any `Prepare` arrived
///   (§4, *Unsolicited Vote*). Distinguished from a last-agent delegation by
///   this bit, exactly as the paper specifies.
/// * `last_agent_delegation` — this YES vote *delegates the commit
///   decision* to the receiver (§4, *Last Agent*): the sender has prepared
///   itself and its other subordinates.
/// * `expect_work` — meaningful only on a delegation: the initiator
///   conversed with the delegate (sent it `Work`) during the transaction,
///   exactly like `Prepare`'s field of the same name. A delegate with no
///   trace of such a transaction must decide ABORT: its state was lost in
///   a crash, and committing would commit work that no longer exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct VoteFlags {
    /// Subtree suspends until next use; may be skipped next transaction.
    pub ok_to_leave_out: bool,
    /// Heuristic decisions vanishingly unlikely below this participant.
    pub reliable: bool,
    /// Vote sent without waiting for `Prepare`.
    pub unsolicited: bool,
    /// This vote hands the commit decision to the receiver (last agent).
    pub last_agent_delegation: bool,
    /// The sender of a delegation conversed with the receiver.
    pub expect_work: bool,
}

impl VoteFlags {
    /// Flags with everything off — the LU 6.2 defaults ("not OK to leave
    /// out", not reliable, solicited, no delegation).
    pub const NONE: VoteFlags = VoteFlags {
        ok_to_leave_out: false,
        reliable: false,
        unsolicited: false,
        last_agent_delegation: false,
        expect_work: false,
    };

    fn to_bits(self) -> u8 {
        u8::from(self.ok_to_leave_out)
            | u8::from(self.reliable) << 1
            | u8::from(self.unsolicited) << 2
            | u8::from(self.last_agent_delegation) << 3
            | u8::from(self.expect_work) << 4
    }

    fn from_bits(b: u8) -> Result<Self> {
        if b & !0b11111 != 0 {
            return Err(Error::Codec(format!("invalid vote flag bits {b:#04x}")));
        }
        Ok(VoteFlags {
            ok_to_leave_out: b & 1 != 0,
            reliable: b & 2 != 0,
            unsolicited: b & 4 != 0,
            last_agent_delegation: b & 8 != 0,
            expect_work: b & 16 != 0,
        })
    }
}

impl Encode for Vote {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Vote::Yes(flags) => {
                e.put_u8(0);
                e.put_u8(flags.to_bits());
            }
            Vote::No => e.put_u8(1),
            Vote::ReadOnly => e.put_u8(2),
        }
    }
}

impl Decode for Vote {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match d.get_u8()? {
            0 => Ok(Vote::Yes(VoteFlags::from_bits(d.get_u8()?)?)),
            1 => Ok(Vote::No),
            2 => Ok(Vote::ReadOnly),
            t => Err(Error::Codec(format!("invalid vote tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flag_combos() -> impl Iterator<Item = VoteFlags> {
        (0u8..16).map(|b| VoteFlags::from_bits(b).unwrap())
    }

    #[test]
    fn flags_roundtrip_bits() {
        for f in all_flag_combos() {
            assert_eq!(VoteFlags::from_bits(f.to_bits()).unwrap(), f);
        }
    }

    #[test]
    fn votes_roundtrip_codec() {
        let mut votes: Vec<Vote> = all_flag_combos().map(Vote::Yes).collect();
        votes.push(Vote::No);
        votes.push(Vote::ReadOnly);
        for v in votes {
            let b = v.encode_to_bytes();
            assert_eq!(Vote::decode_all(&b).unwrap(), v);
        }
    }

    #[test]
    fn invalid_bits_rejected() {
        assert!(VoteFlags::from_bits(0b10_0000).is_err());
        let mut d = Decoder::new(&[9]);
        assert!(Vote::decode(&mut d).is_err());
    }

    #[test]
    fn is_yes_and_flags_accessors() {
        assert!(Vote::Yes(VoteFlags::NONE).is_yes());
        assert!(!Vote::No.is_yes());
        assert!(!Vote::ReadOnly.is_yes());
        assert_eq!(Vote::No.flags(), None);
        assert_eq!(Vote::Yes(VoteFlags::NONE).flags(), Some(VoteFlags::NONE));
    }
}
