//! Strongly-typed identifiers used throughout the workspace.
//!
//! All identifiers are small `Copy` newtypes so they can be passed by value,
//! stored in log records, and encoded on the wire without allocation.

use std::fmt;

use crate::wire::{Decode, Decoder, Encode, Encoder};

/// Identifies one node (one transaction manager and its co-located resource
/// managers) in the distributed system.
///
/// In the simulator this indexes into the node table; in the live runtime it
/// maps to a socket address via the cluster membership table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index. Handy for dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Globally unique transaction identifier.
///
/// Following the peer-to-peer model of the paper (any program may initiate
/// work), a transaction is named by the node that **began** it plus a local
/// sequence number, so ids can be minted without coordination.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Node that originated the transaction.
    pub origin: NodeId,
    /// Per-origin monotonically increasing sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Creates a transaction id.
    #[inline]
    pub fn new(origin: NodeId, seq: u64) -> Self {
        TxnId { origin, seq }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.seq)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.seq)
    }
}

/// Identifies a local resource manager within one node.
///
/// A node hosts its transaction manager plus zero or more LRMs (database /
/// file managers in the paper's terminology). `RmId` is only meaningful
/// relative to a `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RmId(pub u16);

impl fmt::Debug for RmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Log sequence number: the byte offset (or record ordinal, for the
/// in-memory log) of a record within one node's write-ahead log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN, before any record.
    pub const ZERO: Lsn = Lsn(0);

    /// Returns the next LSN after advancing by `len`.
    #[inline]
    pub fn advance(self, len: u64) -> Lsn {
        Lsn(self.0 + len)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Encode for NodeId {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.0);
    }
}

impl Decode for NodeId {
    fn decode(d: &mut Decoder<'_>) -> crate::Result<Self> {
        Ok(NodeId(d.get_u32()?))
    }
}

impl Encode for TxnId {
    fn encode(&self, e: &mut Encoder) {
        self.origin.encode(e);
        e.put_u64(self.seq);
    }
}

impl Decode for TxnId {
    fn decode(d: &mut Decoder<'_>) -> crate::Result<Self> {
        Ok(TxnId {
            origin: NodeId::decode(d)?,
            seq: d.get_u64()?,
        })
    }
}

impl Encode for RmId {
    fn encode(&self, e: &mut Encoder) {
        e.put_u16(self.0);
    }
}

impl Decode for RmId {
    fn decode(d: &mut Decoder<'_>) -> crate::Result<Self> {
        Ok(RmId(d.get_u16()?))
    }
}

impl Encode for Lsn {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.0);
    }
}

impl Decode for Lsn {
    fn decode(d: &mut Decoder<'_>) -> crate::Result<Self> {
        Ok(Lsn(d.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_ordering_is_origin_then_seq() {
        let a = TxnId::new(NodeId(1), 5);
        let b = TxnId::new(NodeId(1), 6);
        let c = TxnId::new(NodeId(2), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(TxnId::new(NodeId(3), 9).to_string(), "T3.9");
        assert_eq!(RmId(2).to_string(), "R2");
        assert_eq!(Lsn(77).to_string(), "77");
    }

    #[test]
    fn lsn_advance() {
        assert_eq!(Lsn::ZERO.advance(16), Lsn(16));
        assert_eq!(Lsn(16).advance(8), Lsn(24));
    }

    #[test]
    fn ids_roundtrip_through_codec() {
        let mut e = Encoder::new();
        NodeId(42).encode(&mut e);
        TxnId::new(NodeId(7), 123456789).encode(&mut e);
        RmId(65535).encode(&mut e);
        Lsn(u64::MAX).encode(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(NodeId::decode(&mut d).unwrap(), NodeId(42));
        assert_eq!(
            TxnId::decode(&mut d).unwrap(),
            TxnId::new(NodeId(7), 123456789)
        );
        assert_eq!(RmId::decode(&mut d).unwrap(), RmId(65535));
        assert_eq!(Lsn::decode(&mut d).unwrap(), Lsn(u64::MAX));
        assert!(d.is_empty());
    }
}
