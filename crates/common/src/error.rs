//! Workspace-wide error type.

use std::fmt;

use crate::ids::{NodeId, TxnId};

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the protocol engine and its substrates.
#[derive(Debug)]
pub enum Error {
    /// Malformed or truncated wire/log data.
    Codec(String),
    /// The WAL rejected an operation (e.g. append after simulated crash).
    Log(String),
    /// Underlying file I/O failed (file-backed WAL, TCP transport).
    Io(std::io::Error),
    /// A lock request could not be granted.
    LockDenied {
        /// Transaction whose request was denied.
        txn: TxnId,
        /// Human-readable reason (conflict holder, deadlock victim, ...).
        reason: String,
    },
    /// Deadlock detected; this transaction was chosen as the victim.
    DeadlockVictim(TxnId),
    /// A protocol invariant was violated (e.g. two roots for one
    /// transaction, vote received in the wrong state).
    Protocol {
        /// Transaction the violation concerns.
        txn: TxnId,
        /// Description of the violated invariant.
        detail: String,
    },
    /// Message addressed to a node that does not exist.
    UnknownNode(NodeId),
    /// The referenced transaction is not known to this participant.
    UnknownTxn(TxnId),
    /// The operation is invalid in the participant's current state.
    InvalidState(String),
    /// Configuration rejected (conflicting optimization flags, etc.).
    Config(String),
    /// Transport failure in the live runtime.
    Transport(String),
    /// A blocking request did not complete within its deadline.
    Timeout(String),
    /// The addressed node is down (killed, crashed, or its worker
    /// exited) and cannot serve the request.
    NodeDown(NodeId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Log(m) => write!(f, "log error: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::LockDenied { txn, reason } => {
                write!(f, "lock denied for {txn}: {reason}")
            }
            Error::DeadlockVictim(txn) => write!(f, "{txn} chosen as deadlock victim"),
            Error::Protocol { txn, detail } => {
                write!(f, "protocol violation in {txn}: {detail}")
            }
            Error::UnknownNode(n) => write!(f, "unknown node {n}"),
            Error::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Transport(m) => write!(f, "transport error: {m}"),
            Error::Timeout(m) => write!(f, "timed out: {m}"),
            Error::NodeDown(n) => write!(f, "node {n} is down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn display_is_informative() {
        let t = TxnId::new(NodeId(1), 2);
        let e = Error::Protocol {
            txn: t,
            detail: "two roots".into(),
        };
        let s = e.to_string();
        assert!(s.contains("T1.2"));
        assert!(s.contains("two roots"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
