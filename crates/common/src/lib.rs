//! # tpc-common
//!
//! Shared vocabulary for the `twopc` workspace: strongly-typed identifiers,
//! votes and outcomes, protocol/optimization configuration, a virtual clock,
//! error types, and a small hand-rolled binary wire codec used by both the
//! deterministic simulator and the live TCP transport.
//!
//! Everything here is deliberately dependency-light: the protocol engine
//! (`tpc-core`) and every substrate build on these types, so this crate must
//! stay at the bottom of the dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod ops;
pub mod outcome;
pub mod pool;
pub mod time;
pub mod trace;
pub mod vote;
pub mod wire;

pub use config::{AckMode, HeuristicPolicy, OptimizationConfig, ProtocolKind};
pub use error::{Error, Result};
pub use ids::{Lsn, NodeId, RmId, TxnId};
pub use ops::{decode_ops, encode_ops, Op};
pub use outcome::{DamageReport, HeuristicOutcome, Outcome};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use time::{SimDuration, SimTime};
pub use trace::TraceCtx;
pub use vote::{Vote, VoteFlags};
