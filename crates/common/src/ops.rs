//! Key-value operations carried in `Work` payloads.
//!
//! Both the deterministic simulator and the live runtime execute the same
//! tiny operation language against their resource managers, so it lives
//! here with the rest of the wire vocabulary.

use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::{Error, Result};

/// One key-value operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read a key (shared lock).
    Read(Vec<u8>),
    /// Write a key (`None` deletes; exclusive lock).
    Write(Vec<u8>, Option<Vec<u8>>),
}

impl Op {
    /// Convenience constructor for an insert/update.
    pub fn put(key: &str, value: &str) -> Op {
        Op::Write(key.as_bytes().to_vec(), Some(value.as_bytes().to_vec()))
    }

    /// Convenience constructor for a read.
    pub fn get(key: &str) -> Op {
        Op::Read(key.as_bytes().to_vec())
    }

    /// Convenience constructor for a delete.
    pub fn del(key: &str) -> Op {
        Op::Write(key.as_bytes().to_vec(), None)
    }

    /// Does this op modify data?
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Write(..))
    }
}

impl Encode for Op {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Op::Read(k) => {
                e.put_u8(0);
                e.put_bytes(k);
            }
            Op::Write(k, v) => {
                e.put_u8(1);
                e.put_bytes(k);
                match v {
                    Some(v) => {
                        e.put_bool(true);
                        e.put_bytes(v);
                    }
                    None => e.put_bool(false),
                }
            }
        }
    }
}

impl Decode for Op {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match d.get_u8()? {
            0 => Ok(Op::Read(d.get_bytes()?)),
            1 => {
                let k = d.get_bytes()?;
                let v = if d.get_bool()? {
                    Some(d.get_bytes()?)
                } else {
                    None
                };
                Ok(Op::Write(k, v))
            }
            t => Err(Error::Codec(format!("invalid op tag {t}"))),
        }
    }
}

/// Encodes an op list into a `Work` payload.
pub fn encode_ops(ops: &[Op]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_seq(ops);
    e.finish().to_vec()
}

/// Decodes a `Work` payload back into ops.
pub fn decode_ops(payload: &[u8]) -> Result<Vec<Op>> {
    let mut d = Decoder::new(payload);
    let ops = d.get_seq()?;
    if !d.is_empty() {
        return Err(Error::Codec("trailing bytes in work payload".into()));
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip() {
        let ops = vec![Op::put("a", "1"), Op::get("b"), Op::del("c")];
        let payload = encode_ops(&ops);
        assert_eq!(decode_ops(&payload).unwrap(), ops);
    }

    #[test]
    fn empty_ops_roundtrip() {
        assert_eq!(decode_ops(&encode_ops(&[])).unwrap(), vec![]);
    }

    #[test]
    fn corrupt_payload_rejected() {
        assert!(decode_ops(&[0xFF, 0xFF]).is_err());
    }

    #[test]
    fn update_detection() {
        assert!(Op::put("k", "v").is_update());
        assert!(Op::del("k").is_update());
        assert!(!Op::get("k").is_update());
    }
}
