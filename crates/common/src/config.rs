//! Protocol-variant and optimization configuration.
//!
//! The engine implements one state machine whose behaviour is steered by
//! data: a [`ProtocolKind`] selecting the presumption/logging regime and an
//! [`OptimizationConfig`] toggling each of the paper's §4 optimizations.
//! This keeps every variant comparable — the benches run the *same* code
//! with different configuration rows, mirroring the paper's tables.

use crate::time::SimDuration;
use crate::{Error, Result};

/// Which 2PC family a node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The baseline protocol of §2 / Figures 1–2: coordinator logs nothing
    /// before Phase 1, forces a commit record, aborts are force-logged and
    /// acknowledged, coordinator retains outcome information until all acks
    /// arrive.
    Basic,
    /// Presumed Abort (§3): subordinate-driven recovery; a coordinator with
    /// no information presumes abort, so the abort path needs no forces and
    /// no acks, and read-only transactions need no logging at all.
    PresumedAbort,
    /// Presumed Commit (Mohan/Lindsay's sibling of PA, referenced by the
    /// paper via R* [24, 25]): the coordinator force-logs a *collecting*
    /// record before Phase 1; no information then presumes commit, so the
    /// commit path needs no subordinate acks and no forced commit record at
    /// subordinates' coordinator. Included as an extension for comparison.
    PresumedCommit,
    /// IBM's Presumed Nothing (§3 / Figure 3): the coordinator force-logs a
    /// commit-pending record *before* sending Prepare, drives recovery
    /// itself, collects acknowledgments from every subordinate, and reports
    /// heuristic damage reliably to the root.
    PresumedNothing,
}

impl ProtocolKind {
    /// All protocol families, in the order the paper discusses them.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Basic,
        ProtocolKind::PresumedAbort,
        ProtocolKind::PresumedCommit,
        ProtocolKind::PresumedNothing,
    ];

    /// Short name used in tables and traces.
    pub fn short_name(self) -> &'static str {
        match self {
            ProtocolKind::Basic => "2PC",
            ProtocolKind::PresumedAbort => "PA",
            ProtocolKind::PresumedCommit => "PC",
            ProtocolKind::PresumedNothing => "PN",
        }
    }

    /// Does the coordinator force a log record *before* Phase 1?
    ///
    /// True for PN (commit-pending) and PC (collecting).
    pub fn logs_before_prepare(self) -> bool {
        matches!(
            self,
            ProtocolKind::PresumedNothing | ProtocolKind::PresumedCommit
        )
    }

    /// Does the commit path require acknowledgments from subordinates?
    ///
    /// PC presumes commit, so subordinates need not acknowledge a commit;
    /// everyone else collects acks so the coordinator may forget.
    pub fn commit_needs_acks(self) -> bool {
        !matches!(self, ProtocolKind::PresumedCommit)
    }

    /// Does the abort path require acknowledgments and forced abort
    /// records at subordinates?
    ///
    /// PA presumes abort: subordinates simply abort with no force and no
    /// ack. Everyone else must confirm.
    pub fn abort_needs_acks(self) -> bool {
        !matches!(self, ProtocolKind::PresumedAbort)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Acknowledgment timing for cascaded coordinators (§4, *Commit
/// Acknowledgment*).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AckMode {
    /// "I and all members of my subordinate subtree have committed" —
    /// the intermediate holds its ack until all children acked. Reliable
    /// damage reporting; the root waits longest.
    #[default]
    Late,
    /// "I have committed and am in the middle of propagation" — the
    /// intermediate acks as soon as its own commit record is logged.
    Early,
}

/// When an in-doubt participant gives up waiting and decides unilaterally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HeuristicPolicy {
    /// Never decide heuristically; block until the outcome is learned.
    #[default]
    Never,
    /// After `timeout` in doubt, unilaterally commit.
    CommitAfter(SimDuration),
    /// After `timeout` in doubt, unilaterally abort.
    AbortAfter(SimDuration),
}

impl HeuristicPolicy {
    /// The in-doubt timeout, if this policy ever fires.
    pub fn timeout(self) -> Option<SimDuration> {
        match self {
            HeuristicPolicy::Never => None,
            HeuristicPolicy::CommitAfter(t) | HeuristicPolicy::AbortAfter(t) => Some(t),
        }
    }
}

/// Per-node switches for the paper's §4 optimizations.
///
/// Every field defaults to *off*, which reproduces the protocol family
/// unadorned; the table generators turn them on row by row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimizationConfig {
    /// Read-Only: participants that performed no updates vote READ-ONLY,
    /// skip phase two, and write no log records.
    pub read_only: bool,
    /// Leaving Inactive Partners Out: subordinates vote `ok_to_leave_out`
    /// when their subtree suspends between requests; the coordinator skips
    /// them in later transactions that never touch them.
    pub leave_out: bool,
    /// Last Agent: delegate the commit decision to one subordinate; the
    /// coordinator prepares itself and everyone else first.
    pub last_agent: bool,
    /// Unsolicited Vote: servers that know they are done self-prepare and
    /// vote YES without waiting for Prepare.
    pub unsolicited_vote: bool,
    /// Shared Log: co-located LRMs piggyback on the TM's forces, skipping
    /// their own prepared/committed forces.
    pub shared_log: bool,
    /// Group Commit: the log manager batches force requests.
    pub group_commit: Option<GroupCommitConfig>,
    /// Long Locks: the subordinate buffers its commit ack and piggybacks it
    /// on the first message of the next transaction.
    pub long_locks: bool,
    /// Acknowledgment timing at cascaded coordinators.
    pub ack_mode: AckMode,
    /// Vote Reliable: if every subordinate voted `reliable`, an
    /// intermediate may use early acks while retaining late-ack semantics.
    pub vote_reliable: bool,
    /// Wait For Outcome: on failure during ack collection, make one
    /// recovery attempt then complete with "outcome pending" instead of
    /// blocking the application.
    pub wait_for_outcome: bool,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig {
            read_only: false,
            leave_out: false,
            last_agent: false,
            unsolicited_vote: false,
            shared_log: false,
            group_commit: None,
            long_locks: false,
            ack_mode: AckMode::Late,
            vote_reliable: false,
            wait_for_outcome: false,
        }
    }
}

impl OptimizationConfig {
    /// No optimizations — the bare protocol family.
    pub fn none() -> Self {
        OptimizationConfig::default()
    }

    /// Everything the paper recommends for the commercial normal case,
    /// with late acks retained via vote-reliable.
    pub fn all() -> Self {
        OptimizationConfig {
            read_only: true,
            leave_out: true,
            last_agent: true,
            unsolicited_vote: false, // application-specific; off by default
            shared_log: true,
            group_commit: Some(GroupCommitConfig::default()),
            long_locks: true,
            ack_mode: AckMode::Late,
            vote_reliable: true,
            // Deliberately off: wait-for-outcome keeps the application
            // blocked until every ack arrives, while long locks defers
            // those very acks to the next transaction — combining them
            // deadlocks the conversation (validate() rejects it).
            wait_for_outcome: false,
        }
    }

    /// Builder-style setters, so table generators read like the paper rows.
    pub fn with_read_only(mut self, on: bool) -> Self {
        self.read_only = on;
        self
    }

    /// Enables/disables leave-inactive-partners-out.
    pub fn with_leave_out(mut self, on: bool) -> Self {
        self.leave_out = on;
        self
    }

    /// Enables/disables last-agent delegation.
    pub fn with_last_agent(mut self, on: bool) -> Self {
        self.last_agent = on;
        self
    }

    /// Enables/disables unsolicited votes.
    pub fn with_unsolicited_vote(mut self, on: bool) -> Self {
        self.unsolicited_vote = on;
        self
    }

    /// Enables/disables TM/LRM log sharing.
    pub fn with_shared_log(mut self, on: bool) -> Self {
        self.shared_log = on;
        self
    }

    /// Sets the group-commit policy.
    pub fn with_group_commit(mut self, cfg: Option<GroupCommitConfig>) -> Self {
        self.group_commit = cfg;
        self
    }

    /// Enables/disables long locks.
    pub fn with_long_locks(mut self, on: bool) -> Self {
        self.long_locks = on;
        self
    }

    /// Sets the acknowledgment timing.
    pub fn with_ack_mode(mut self, mode: AckMode) -> Self {
        self.ack_mode = mode;
        self
    }

    /// Enables/disables vote-reliable.
    pub fn with_vote_reliable(mut self, on: bool) -> Self {
        self.vote_reliable = on;
        self
    }

    /// Enables/disables wait-for-outcome.
    pub fn with_wait_for_outcome(mut self, on: bool) -> Self {
        self.wait_for_outcome = on;
        self
    }

    /// Rejects configurations the paper calls out as contradictory.
    pub fn validate(&self) -> Result<()> {
        if self.vote_reliable && self.ack_mode == AckMode::Early {
            return Err(Error::Config(
                "vote_reliable selects early acks dynamically; fixing ack_mode=Early \
                 makes the reliability vote meaningless"
                    .into(),
            ));
        }
        if self.long_locks && self.wait_for_outcome {
            return Err(Error::Config(
                "long_locks defers commit acks to the next transaction while \
                 wait_for_outcome blocks the application until those acks arrive; \
                 the combination deadlocks the conversation"
                    .into(),
            ));
        }
        if let Some(gc) = &self.group_commit {
            gc.validate()?;
        }
        Ok(())
    }
}

/// Group-commit batching policy (§4, *Group Commits*): hold a force until
/// `batch_size` requests accumulate or `max_wait` elapses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Number of force requests that triggers an immediate flush.
    pub batch_size: usize,
    /// Maximum time the first queued request may wait.
    pub max_wait: SimDuration,
    /// Adaptive batching: flush immediately while the force queue is
    /// shallow (forces arrive slower than a physical flush completes) and
    /// batch only under real depth. A fast log — the in-memory backend,
    /// or a battery-backed controller — gains nothing from waiting
    /// `max_wait` for company that never comes; a slow log under
    /// concurrent load still amortizes exactly as the paper describes.
    /// Off by default: the fixed policy is the paper's, and it stays
    /// byte-for-byte deterministic in the simulator.
    pub adaptive: bool,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            batch_size: 4,
            max_wait: SimDuration::from_millis(5),
            adaptive: false,
        }
    }
}

impl GroupCommitConfig {
    /// Rejects degenerate policies.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::Config("group commit batch_size must be >= 1".into()));
        }
        Ok(())
    }

    /// Turns on adaptive batching (see [`GroupCommitConfig::adaptive`]).
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_predicates_match_paper() {
        use ProtocolKind::*;
        assert!(!Basic.logs_before_prepare());
        assert!(!PresumedAbort.logs_before_prepare());
        assert!(PresumedNothing.logs_before_prepare());
        assert!(PresumedCommit.logs_before_prepare());

        assert!(Basic.abort_needs_acks());
        assert!(!PresumedAbort.abort_needs_acks());
        assert!(PresumedNothing.abort_needs_acks());

        assert!(Basic.commit_needs_acks());
        assert!(PresumedAbort.commit_needs_acks());
        assert!(!PresumedCommit.commit_needs_acks());
        assert!(PresumedNothing.commit_needs_acks());
    }

    #[test]
    fn default_config_is_all_off() {
        let c = OptimizationConfig::none();
        assert!(!c.read_only && !c.leave_out && !c.last_agent);
        assert!(!c.unsolicited_vote && !c.shared_log && !c.long_locks);
        assert!(c.group_commit.is_none());
        assert_eq!(c.ack_mode, AckMode::Late);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = OptimizationConfig::none()
            .with_read_only(true)
            .with_last_agent(true)
            .with_long_locks(true);
        assert!(c.read_only && c.last_agent && c.long_locks);
        assert!(!c.leave_out);
    }

    #[test]
    fn contradictory_config_rejected() {
        let c = OptimizationConfig::none()
            .with_vote_reliable(true)
            .with_ack_mode(AckMode::Early);
        assert!(c.validate().is_err());
    }

    #[test]
    fn group_commit_validation() {
        let bad = GroupCommitConfig {
            batch_size: 0,
            max_wait: SimDuration::from_millis(1),
            adaptive: false,
        };
        assert!(bad.validate().is_err());
        assert!(GroupCommitConfig::default().validate().is_ok());
        let c = OptimizationConfig::none().with_group_commit(Some(bad));
        assert!(c.validate().is_err());
    }

    #[test]
    fn heuristic_policy_timeout() {
        assert_eq!(HeuristicPolicy::Never.timeout(), None);
        let t = SimDuration::from_secs(30);
        assert_eq!(HeuristicPolicy::CommitAfter(t).timeout(), Some(t));
        assert_eq!(HeuristicPolicy::AbortAfter(t).timeout(), Some(t));
    }

    #[test]
    fn all_config_is_valid() {
        assert!(OptimizationConfig::all().validate().is_ok());
    }
}
