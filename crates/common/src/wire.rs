//! A small hand-rolled binary codec.
//!
//! Both the deterministic simulator and the live TCP transport move the same
//! protocol messages, so the engine defines one canonical encoding here
//! rather than pulling in a serialization framework. The format is
//! little-endian, length-prefixed for variable-size data, and framed with a
//! CRC-32 checksum by the WAL and the TCP transport.
//!
//! The codec is intentionally boring: fixed-width integers, `u32`-prefixed
//! byte strings, and `u32`-prefixed sequences. Every `Decode` implementation
//! validates lengths against the remaining buffer so a corrupt or truncated
//! frame yields [`Error::Codec`] instead of a panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};

/// Serializes values into a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(64),
        }
    }

    /// Creates an encoder with the given initial capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a boolean as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u32::MAX as usize);
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed sequence of encodable values.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        debug_assert!(items.len() <= u32::MAX as usize);
        self.buf.put_u32_le(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }

    /// Appends an optional value as a presence byte plus the value.
    pub fn put_option<T: Encode>(&mut self, v: &Option<T>) {
        match v {
            Some(inner) => {
                self.put_bool(true);
                inner.encode(self);
            }
            None => self.put_bool(false),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes the buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Wraps an existing vector (appending after its current contents),
    /// so a pooled buffer can be encoded into without reallocating.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Encoder { buf: buf.into() }
    }

    /// Finalizes into the backing vector without the `Arc` copy that
    /// [`Encoder::finish`] pays — the zero-copy exit for pooled buffers.
    pub fn finish_vec(self) -> Vec<u8> {
        self.buf.into()
    }
}

/// Deserializes values from a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(Error::Codec(format!(
                "buffer underrun: need {n} bytes, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a boolean, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Codec(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let out = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|e| Error::Codec(format!("invalid utf8: {e}")))
    }

    /// Reads a length-prefixed sequence of decodable values.
    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>> {
        let len = self.get_u32()? as usize;
        // Guard against absurd lengths in corrupt frames: each element needs
        // at least one byte on the wire for every codec we define.
        if len > self.buf.remaining() {
            return Err(Error::Codec(format!(
                "sequence length {len} exceeds remaining {} bytes",
                self.buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Reads an optional value written by [`Encoder::put_option`].
    pub fn get_option<T: Decode>(&mut self) -> Result<Option<T>> {
        if self.get_bool()? {
            Ok(Some(T::decode(self)?))
        } else {
            Ok(None)
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// True when the whole buffer was consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Types which can be written with an [`Encoder`].
pub trait Encode {
    /// Appends `self` to the encoder.
    fn encode(&self, e: &mut Encoder);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Encodes onto the end of `out` in place — no intermediate buffer,
    /// no `Arc` copy. This is the hot-path entry for pooled buffers.
    fn encode_append(&self, out: &mut Vec<u8>) {
        let mut e = Encoder::from_vec(std::mem::take(out));
        self.encode(&mut e);
        *out = e.finish_vec();
    }
}

/// Types which can be read with a [`Decoder`].
pub trait Decode: Sized {
    /// Parses one value, consuming bytes from the decoder.
    fn decode(d: &mut Decoder<'_>) -> Result<Self>;

    /// Convenience: decode a value that must span the entire buffer.
    fn decode_all(buf: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d)?;
        if !d.is_empty() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after decode",
                d.remaining()
            )));
        }
        Ok(v)
    }
}

impl Encode for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        d.get_u64()
    }
}

impl Encode for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        d.get_u32()
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), implemented locally
/// so the WAL and transport need no external checksum crate.
pub fn crc32(data: &[u8]) -> u32 {
    // Table generated at first use; 1 KiB, cheap to keep static.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_bool(true);
        e.put_bool(false);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert!(d.is_empty());
    }

    #[test]
    fn bytes_and_strings_roundtrip() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello");
        e.put_str("world \u{1F980}");
        e.put_bytes(b"");
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        assert_eq!(d.get_str().unwrap(), "world \u{1F980}");
        assert_eq!(d.get_bytes().unwrap(), b"");
        assert!(d.is_empty());
    }

    #[test]
    fn sequences_and_options_roundtrip() {
        let mut e = Encoder::new();
        e.put_seq(&[1u64, 2, 3]);
        e.put_option(&Some(9u32));
        e.put_option::<u32>(&None);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_seq::<u64>().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_option::<u32>().unwrap(), Some(9));
        assert_eq!(d.get_option::<u32>().unwrap(), None);
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.get_u32().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = Decoder::new(&[7]);
        assert!(d.get_bool().is_err());
    }

    #[test]
    fn oversized_sequence_length_rejected() {
        // Claims 10 000 elements but carries no payload.
        let mut e = Encoder::new();
        e.put_u32(10_000);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(d.get_seq::<u64>().is_err());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let mut e = Encoder::new();
        e.put_u32(100); // length prefix promising 100 bytes
        e.put_u8(1); // only one present
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(d.get_bytes().is_err());
    }

    #[test]
    fn decode_all_rejects_trailing_garbage() {
        let mut e = Encoder::new();
        e.put_u64(5);
        e.put_u8(0xFF);
        let b = e.finish();
        assert!(u64::decode_all(&b).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let original = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), original);
    }
}
