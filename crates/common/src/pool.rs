//! Reusable frame-buffer pool for the wire hot path.
//!
//! Every message the live runtime sends used to allocate at least twice:
//! once encoding into a fresh `BytesMut` and once copying the frozen
//! bytes into the `Vec<u8>` handed to the transport, plus a third
//! allocation in the TCP sender's coalescing batch. [`BufferPool`] keeps
//! a bounded free list of `Vec<u8>` buffers so the steady state recycles
//! capacity instead of round-tripping the allocator per frame.
//!
//! A [`PooledBuf`] checked out of the pool derefs to `Vec<u8>`; encoding
//! appends straight into it (see `Encode::encode_append`), the transport
//! writes from it, and dropping it returns the capacity to the pool.
//! Buffers that grew past [`BufferPool::MAX_RECYCLED_BYTES`] are released
//! to the allocator rather than pinned in the free list, so one jumbo
//! frame cannot permanently bloat the pool.
//!
//! The pool is `Clone` + `Send` + cheap to share (`Arc` inside), and all
//! counters are atomics: hit/miss rates and the outstanding high-water
//! mark are exported as `tpc_pool_*` metrics for spotting thrash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Snapshot of pool counters — exported as `tpc_pool_*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (hits + misses).
    pub checkouts: u64,
    /// Checkouts served from the free list (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list on drop.
    pub recycled: u64,
    /// Buffers dropped instead of recycled (free list full or buffer
    /// oversized).
    pub discarded: u64,
    /// Buffers currently checked out.
    pub outstanding: u64,
    /// Most buffers ever checked out at once.
    pub outstanding_high_water: u64,
    /// Buffers currently idle in the free list.
    pub idle: u64,
}

impl PoolStats {
    /// Folds a sibling pool's snapshot in (a multi-lane node runs one
    /// pool per lane transport): counters add, the high-water mark takes
    /// the max — a conservative per-pool peak, not a cluster-wide one.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.checkouts += other.checkouts;
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.discarded += other.discarded;
        self.outstanding += other.outstanding;
        self.outstanding_high_water = self
            .outstanding_high_water
            .max(other.outstanding_high_water);
        self.idle += other.idle;
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    idle: Mutex<Vec<Vec<u8>>>,
    checkouts: AtomicU64,
    hits: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

/// Bounded free list of reusable byte buffers. Cloning shares the pool.
#[derive(Clone, Debug, Default)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Free-list bound: enough for every lane of a busy node to have a
    /// few frames in flight, small enough to be an invisible footprint
    /// (≤ 256 × 1 MiB worst case, far less in practice).
    pub const MAX_IDLE: usize = 256;

    /// Buffers that grew beyond this are not recycled. Matches the TCP
    /// sender's coalescing cap so batch buffers still recycle, while a
    /// pathological frame goes back to the allocator.
    pub const MAX_RECYCLED_BYTES: usize = 1 << 20;

    /// Initial capacity for pool-allocated buffers (a typical 2PC frame
    /// is well under this).
    pub const DEFAULT_BUF_BYTES: usize = 512;

    /// A fresh, empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks out an empty buffer, reusing a recycled one when possible.
    pub fn checkout(&self) -> PooledBuf {
        self.inner.checkouts.fetch_add(1, Ordering::Relaxed);
        let out = self.inner.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.high_water.fetch_max(out, Ordering::Relaxed);
        let reused = self.inner.idle.lock().expect("pool poisoned").pop();
        let buf = match reused {
            Some(b) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => Vec::with_capacity(Self::DEFAULT_BUF_BYTES),
        };
        PooledBuf {
            buf,
            pool: Some(Arc::clone(&self.inner)),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let checkouts = self.inner.checkouts.load(Ordering::Relaxed);
        let hits = self.inner.hits.load(Ordering::Relaxed);
        PoolStats {
            checkouts,
            hits,
            misses: checkouts - hits,
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            outstanding_high_water: self.inner.high_water.load(Ordering::Relaxed),
            idle: self.inner.idle.lock().expect("pool poisoned").len() as u64,
        }
    }
}

/// A byte buffer on loan from a [`BufferPool`] (or detached, when built
/// via `From<Vec<u8>>`). Dereferences to `Vec<u8>`; dropping it recycles
/// the capacity.
#[derive(Debug, Default)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool, keeping the bytes. The pool
    /// counts it as discarded (its capacity will not come back).
    pub fn into_vec(mut self) -> Vec<u8> {
        if let Some(pool) = self.pool.take() {
            pool.outstanding.fetch_sub(1, Ordering::Relaxed);
            pool.discarded.fetch_add(1, Ordering::Relaxed);
        }
        std::mem::take(&mut self.buf)
    }
}

impl From<Vec<u8>> for PooledBuf {
    /// Wraps an ordinary vector as a detached (pool-less) buffer, so
    /// call sites without a pool speak the same type.
    fn from(buf: Vec<u8>) -> Self {
        PooledBuf { buf, pool: None }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let Some(pool) = self.pool.take() else {
            return;
        };
        pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 || buf.capacity() > BufferPool::MAX_RECYCLED_BYTES {
            pool.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        let mut idle = pool.idle.lock().expect("pool poisoned");
        if idle.len() < BufferPool::MAX_IDLE {
            idle.push(buf);
            drop(idle);
            pool.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(idle);
            pool.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_miss_then_recycle_then_hit() {
        let pool = BufferPool::new();
        let mut a = pool.checkout();
        a.extend_from_slice(b"hello");
        let cap = a.capacity();
        drop(a);
        let s = pool.stats();
        assert_eq!(s.checkouts, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
        assert_eq!(s.idle, 1);
        assert_eq!(s.outstanding, 0);

        let b = pool.checkout();
        assert!(b.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(b.capacity(), cap, "capacity is what got recycled");
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.idle, 0);
        assert_eq!(s.outstanding, 1);
        assert_eq!(s.outstanding_high_water, 1);
    }

    #[test]
    fn oversized_buffers_are_not_recycled() {
        let pool = BufferPool::new();
        let mut a = pool.checkout();
        a.reserve(BufferPool::MAX_RECYCLED_BYTES + 1);
        drop(a);
        let s = pool.stats();
        assert_eq!(s.recycled, 0);
        assert_eq!(s.discarded, 1);
        assert_eq!(s.idle, 0);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::new();
        let v = pool.checkout().into_vec();
        drop(v);
        let s = pool.stats();
        assert_eq!(s.recycled, 0);
        assert_eq!(s.outstanding, 0);
        // A From<Vec> wrapper never touches pool counters.
        let loose = PooledBuf::from(vec![1, 2, 3]);
        assert_eq!(&loose[..], &[1, 2, 3]);
        drop(loose);
        assert_eq!(pool.stats().checkouts, 1);
    }

    #[test]
    fn high_water_tracks_concurrent_checkouts() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.stats().outstanding_high_water, 5);
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.outstanding_high_water, 5, "high water is sticky");
        assert_eq!(s.idle, 5);
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = BufferPool::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut b = p.checkout();
                    b.extend_from_slice(&[0u8; 64]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.checkouts, 400);
        assert_eq!(s.outstanding, 0);
        assert!(s.hits > 0, "steady state must reuse buffers");
        assert_eq!(s.recycled + s.discarded, 400);
    }
}
