//! Transaction outcomes, heuristic decisions and damage reports.

use crate::ids::NodeId;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::{Error, Result};

/// The global decision reached by the commit coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// All participants voted YES (or READ-ONLY); effects persist.
    Commit,
    /// At least one participant voted NO, failed, or the application
    /// requested rollback; no effects persist.
    Abort,
}

impl Outcome {
    /// The opposite outcome — what a heuristic decision damages against.
    #[inline]
    pub fn inverse(self) -> Outcome {
        match self {
            Outcome::Commit => Outcome::Abort,
            Outcome::Abort => Outcome::Commit,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Outcome::Commit => "COMMIT",
            Outcome::Abort => "ABORT",
        })
    }
}

/// A unilateral decision taken by an in-doubt participant that refused to
/// keep waiting (§1 and §3 of the paper: "a practical necessity in the
/// commercial environment").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeuristicOutcome {
    /// The participant unilaterally committed.
    Commit,
    /// The participant unilaterally aborted.
    Abort,
    /// Different resources under one participant went different ways —
    /// the worst case, always damage.
    Mixed,
}

impl HeuristicOutcome {
    /// Whether this heuristic decision conflicts with the final global
    /// outcome, i.e. whether *heuristic damage* occurred.
    pub fn damages(self, global: Outcome) -> bool {
        match (self, global) {
            (HeuristicOutcome::Commit, Outcome::Commit) => false,
            (HeuristicOutcome::Abort, Outcome::Abort) => false,
            (HeuristicOutcome::Mixed, _) => true,
            _ => true,
        }
    }
}

impl std::fmt::Display for HeuristicOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HeuristicOutcome::Commit => "HEURISTIC-COMMIT",
            HeuristicOutcome::Abort => "HEURISTIC-ABORT",
            HeuristicOutcome::Mixed => "HEURISTIC-MIXED",
        })
    }
}

/// A report of heuristic activity in a subtree, carried upstream inside
/// acknowledgment messages.
///
/// PN propagates these reliably to the root (the point of its extra
/// commit-pending force and full ack collection); PA, as implemented in R*,
/// reports only to the immediate coordinator. The engine models both so the
/// reliability comparison in Table 1 can be measured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DamageReport {
    /// Nodes that made a heuristic decision *matching* the outcome
    /// (no damage, but the root may still want to know under PN).
    pub heuristic_no_damage: Vec<NodeId>,
    /// Nodes whose heuristic decision conflicts with the global outcome.
    pub damaged: Vec<NodeId>,
    /// Nodes whose outcome is still unknown (wait-for-outcome returned
    /// "recovery in progress").
    pub outcome_pending: Vec<NodeId>,
}

impl DamageReport {
    /// A clean report: no heuristics anywhere in the subtree.
    pub fn clean() -> Self {
        DamageReport::default()
    }

    /// True when no heuristic activity and nothing pending.
    pub fn is_clean(&self) -> bool {
        self.heuristic_no_damage.is_empty()
            && self.damaged.is_empty()
            && self.outcome_pending.is_empty()
    }

    /// True when some participant's state conflicts with the outcome.
    pub fn has_damage(&self) -> bool {
        !self.damaged.is_empty()
    }

    /// Folds a subtree's report into this one.
    pub fn merge(&mut self, other: &DamageReport) {
        self.heuristic_no_damage
            .extend_from_slice(&other.heuristic_no_damage);
        self.damaged.extend_from_slice(&other.damaged);
        self.outcome_pending
            .extend_from_slice(&other.outcome_pending);
    }
}

impl Encode for Outcome {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Outcome::Commit => 0,
            Outcome::Abort => 1,
        });
    }
}

impl Decode for Outcome {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match d.get_u8()? {
            0 => Ok(Outcome::Commit),
            1 => Ok(Outcome::Abort),
            t => Err(Error::Codec(format!("invalid outcome tag {t}"))),
        }
    }
}

impl Encode for HeuristicOutcome {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            HeuristicOutcome::Commit => 0,
            HeuristicOutcome::Abort => 1,
            HeuristicOutcome::Mixed => 2,
        });
    }
}

impl Decode for HeuristicOutcome {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match d.get_u8()? {
            0 => Ok(HeuristicOutcome::Commit),
            1 => Ok(HeuristicOutcome::Abort),
            2 => Ok(HeuristicOutcome::Mixed),
            t => Err(Error::Codec(format!("invalid heuristic tag {t}"))),
        }
    }
}

impl Encode for DamageReport {
    fn encode(&self, e: &mut Encoder) {
        e.put_seq(&self.heuristic_no_damage);
        e.put_seq(&self.damaged);
        e.put_seq(&self.outcome_pending);
    }
}

impl Decode for DamageReport {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(DamageReport {
            heuristic_no_damage: d.get_seq()?,
            damaged: d.get_seq()?,
            outcome_pending: d.get_seq()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse() {
        assert_eq!(Outcome::Commit.inverse(), Outcome::Abort);
        assert_eq!(Outcome::Abort.inverse(), Outcome::Commit);
    }

    #[test]
    fn damage_matrix() {
        use HeuristicOutcome as H;
        use Outcome as O;
        assert!(!H::Commit.damages(O::Commit));
        assert!(H::Commit.damages(O::Abort));
        assert!(H::Abort.damages(O::Commit));
        assert!(!H::Abort.damages(O::Abort));
        assert!(H::Mixed.damages(O::Commit));
        assert!(H::Mixed.damages(O::Abort));
    }

    #[test]
    fn report_merge_and_flags() {
        let mut a = DamageReport::clean();
        assert!(a.is_clean());
        assert!(!a.has_damage());
        let b = DamageReport {
            heuristic_no_damage: vec![NodeId(1)],
            damaged: vec![NodeId(2)],
            outcome_pending: vec![],
        };
        a.merge(&b);
        assert!(!a.is_clean());
        assert!(a.has_damage());
        assert_eq!(a.damaged, vec![NodeId(2)]);
    }

    #[test]
    fn roundtrip_codec() {
        for o in [Outcome::Commit, Outcome::Abort] {
            assert_eq!(Outcome::decode_all(&o.encode_to_bytes()).unwrap(), o);
        }
        for h in [
            HeuristicOutcome::Commit,
            HeuristicOutcome::Abort,
            HeuristicOutcome::Mixed,
        ] {
            assert_eq!(
                HeuristicOutcome::decode_all(&h.encode_to_bytes()).unwrap(),
                h
            );
        }
        let r = DamageReport {
            heuristic_no_damage: vec![NodeId(3)],
            damaged: vec![NodeId(4), NodeId(5)],
            outcome_pending: vec![NodeId(6)],
        };
        assert_eq!(DamageReport::decode_all(&r.encode_to_bytes()).unwrap(), r);
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(Outcome::decode_all(&[9]).is_err());
        assert!(HeuristicOutcome::decode_all(&[9]).is_err());
    }
}
