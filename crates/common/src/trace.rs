//! Cross-node trace propagation context.
//!
//! A [`TraceCtx`] rides in the optional header of a network frame so the
//! observability layer can stitch per-node span fragments into one causal
//! tree: the sender stamps its own span-tree seat id and send time, and the
//! receiver attributes every span it later emits for that transaction to
//! that parent. The engine never sees this — it is attached and consumed
//! entirely by the driver/host layer, and frames without it (tracing off)
//! cost one flag byte.

use crate::ids::TxnId;
use crate::time::SimTime;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::Result;

/// Trace context carried on the wire alongside a message bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Transaction the context belongs to (the first message's txn when a
    /// frame bundles several transactions' messages).
    pub txn: TxnId,
    /// The sender's span-tree seat id for this transaction; the receiver's
    /// spans become children of it.
    pub parent_seat: u64,
    /// Sender's clock when the frame went out (µs on the harness clock —
    /// virtual in the sim, µs since cluster epoch live). Lets the trace
    /// renderer anchor the causal arrow at the send instant.
    pub sent_at: SimTime,
}

impl Encode for TraceCtx {
    fn encode(&self, e: &mut Encoder) {
        self.txn.encode(e);
        e.put_u64(self.parent_seat);
        e.put_u64(self.sent_at.0);
    }
}

impl Decode for TraceCtx {
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(TraceCtx {
            txn: TxnId::decode(d)?,
            parent_seat: d.get_u64()?,
            sent_at: SimTime(d.get_u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn trace_ctx_roundtrips() {
        let ctx = TraceCtx {
            txn: TxnId::new(NodeId(2), 9),
            parent_seat: (3u64 << 40) | 17,
            sent_at: SimTime(123_456),
        };
        let b = ctx.encode_to_bytes();
        assert_eq!(TraceCtx::decode_all(&b).unwrap(), ctx);
    }
}
