//! Property tests: the wire codec round-trips arbitrary values and never
//! panics on arbitrary input bytes.

use proptest::prelude::*;
use tpc_common::wire::{crc32, Decode, Decoder, Encode, Encoder};
use tpc_common::{DamageReport, HeuristicOutcome, NodeId, Op, Outcome, TxnId, Vote, VoteFlags};

fn arb_node() -> impl Strategy<Value = NodeId> {
    any::<u32>().prop_map(NodeId)
}

fn arb_txn() -> impl Strategy<Value = TxnId> {
    (arb_node(), any::<u64>()).prop_map(|(n, s)| TxnId::new(n, s))
}

fn arb_flags() -> impl Strategy<Value = VoteFlags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, d, e)| VoteFlags {
            ok_to_leave_out: a,
            reliable: b,
            unsolicited: c,
            last_agent_delegation: d,
            expect_work: e,
        })
}

fn arb_vote() -> impl Strategy<Value = Vote> {
    prop_oneof![
        arb_flags().prop_map(Vote::Yes),
        Just(Vote::No),
        Just(Vote::ReadOnly),
    ]
}

fn arb_report() -> impl Strategy<Value = DamageReport> {
    (
        prop::collection::vec(arb_node(), 0..4),
        prop::collection::vec(arb_node(), 0..4),
        prop::collection::vec(arb_node(), 0..4),
    )
        .prop_map(|(h, d, p)| DamageReport {
            heuristic_no_damage: h,
            damaged: d,
            outcome_pending: p,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..32).prop_map(Op::Read),
        (
            prop::collection::vec(any::<u8>(), 0..32),
            prop::option::of(prop::collection::vec(any::<u8>(), 0..32))
        )
            .prop_map(|(k, v)| Op::Write(k, v)),
    ]
}

proptest! {
    #[test]
    fn txn_ids_roundtrip(txn in arb_txn()) {
        let bytes = txn.encode_to_bytes();
        prop_assert_eq!(TxnId::decode_all(&bytes).unwrap(), txn);
    }

    #[test]
    fn votes_roundtrip(vote in arb_vote()) {
        let bytes = vote.encode_to_bytes();
        prop_assert_eq!(Vote::decode_all(&bytes).unwrap(), vote);
    }

    #[test]
    fn reports_roundtrip(report in arb_report()) {
        let bytes = report.encode_to_bytes();
        prop_assert_eq!(DamageReport::decode_all(&bytes).unwrap(), report);
    }

    #[test]
    fn heuristics_roundtrip(h in prop_oneof![
        Just(HeuristicOutcome::Commit),
        Just(HeuristicOutcome::Abort),
        Just(HeuristicOutcome::Mixed),
    ]) {
        prop_assert_eq!(HeuristicOutcome::decode_all(&h.encode_to_bytes()).unwrap(), h);
    }

    #[test]
    fn outcomes_roundtrip(o in prop_oneof![Just(Outcome::Commit), Just(Outcome::Abort)]) {
        prop_assert_eq!(Outcome::decode_all(&o.encode_to_bytes()).unwrap(), o);
    }

    #[test]
    fn ops_roundtrip(ops in prop::collection::vec(arb_op(), 0..8)) {
        let payload = tpc_common::encode_ops(&ops);
        prop_assert_eq!(tpc_common::decode_ops(&payload).unwrap(), ops);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any of these may fail, but none may panic.
        let _ = TxnId::decode_all(&bytes);
        let _ = Vote::decode_all(&bytes);
        let _ = DamageReport::decode_all(&bytes);
        let _ = tpc_common::decode_ops(&bytes);
        let mut d = Decoder::new(&bytes);
        let _ = d.get_seq::<u64>();
    }

    #[test]
    fn scalar_sequences_roundtrip(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut e = Encoder::new();
        e.put_seq(&values);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_seq::<u64>().unwrap(), values);
        prop_assert!(d.is_empty());
    }

    #[test]
    fn crc32_differs_on_any_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..64),
        bit in 0usize..8,
        idx_seed in any::<usize>(),
    ) {
        let mut mutated = data.clone();
        let idx = idx_seed % data.len();
        mutated[idx] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }
}
