//! Seeded fault injection for live transports.
//!
//! [`FaultyWire`] wraps any [`Transport`] — the crossbeam channel
//! transport or the TCP one — and subjects outbound frames to drops,
//! duplication, reordering-by-delay and a hard disconnect, all driven by
//! a seeded generator so a failing run reproduces from its seed.
//!
//! Delays are counted in *sends*, not wall-clock time: a delayed frame is
//! held back until `delay_frames` further sends have happened, then
//! released ahead of the next one. That keeps scripted chaos runs
//! deterministic while still exercising reordering on a live transport.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tpc_common::wire::Decode;
use tpc_common::{BufferPool, NodeId, PooledBuf};
use tpc_core::messages::{Frame, ProtocolMsg};

use crate::node::{Transport, TransportHealth};

/// Whether an encoded frame carries application work (conversation
/// traffic, spared by default — see [`FaultPlan::fault_work_frames`]).
fn carries_work(bytes: &[u8]) -> bool {
    Frame::decode_all(bytes)
        .map(|f| {
            f.bundle
                .0
                .iter()
                .any(|m| matches!(m, ProtocolMsg::Work { .. }))
        })
        .unwrap_or(false)
}

/// What a [`FaultyWire`] does to traffic, with which probabilities.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Probability an outbound frame is silently dropped.
    pub drop_rate: f64,
    /// Probability an outbound frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability an outbound frame is held back (reordered).
    pub delay_rate: f64,
    /// How many subsequent sends a held frame waits before release.
    pub delay_frames: u32,
    /// The wire goes permanently dead after this many sends (everything
    /// after, including held frames, is lost).
    pub disconnect_after: Option<u64>,
    /// Whether frames carrying `Work` payloads are also subject to
    /// faults. Off by default: in the paper's model, conversation
    /// traffic rides reliable sessions (LU6.2) and it is the *commit
    /// protocol* messages that face loss. Dropping work silently is
    /// indistinguishable from the application never sending it — the
    /// transaction commits cleanly with the write absent — so it is
    /// opt-in for tests that want that failure mode.
    pub fault_work_frames: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base to build on).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            delay_frames: 2,
            disconnect_after: None,
            fault_work_frames: false,
        }
    }

    /// Sets the drop probability.
    pub fn with_drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the delay probability and how many sends a held frame waits.
    pub fn with_delays(mut self, rate: f64, frames: u32) -> Self {
        self.delay_rate = rate;
        self.delay_frames = frames;
        self
    }

    /// Kills the wire after `sends` outbound frames.
    pub fn with_disconnect_after(mut self, sends: u64) -> Self {
        self.disconnect_after = Some(sends);
        self
    }

    /// Subjects `Work`-carrying frames to faults too (normally spared —
    /// see [`FaultPlan::fault_work_frames`]).
    pub fn with_faulty_work_frames(mut self) -> Self {
        self.fault_work_frames = true;
        self
    }
}

/// Counters a [`FaultyWire`] keeps; shared with the test harness via
/// [`FaultyWire::stats`] so assertions can confirm faults actually fired.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Frames passed through unharmed.
    pub delivered: AtomicU64,
    /// Frames silently dropped.
    pub dropped: AtomicU64,
    /// Extra deliveries from duplication.
    pub duplicated: AtomicU64,
    /// Frames held back for later release.
    pub delayed: AtomicU64,
    /// Frames lost to the hard disconnect.
    pub disconnected: AtomicU64,
}

impl FaultStats {
    /// Total frames that did not reach the peer (drops + disconnect).
    pub fn lost(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) + self.disconnected.load(Ordering::Relaxed)
    }
}

struct HeldFrame {
    release_after: u64,
    to: NodeId,
    lane: Option<usize>,
    bytes: PooledBuf,
}

/// A [`Transport`] wrapper injecting seeded faults into outbound frames.
pub struct FaultyWire<T> {
    inner: T,
    plan: FaultPlan,
    rng: u64,
    sends: u64,
    held: VecDeque<HeldFrame>,
    stats: Arc<FaultStats>,
}

impl<T> FaultyWire<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        // Splash the seed so seed=0 and seed=1 diverge immediately.
        let rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        FaultyWire {
            inner,
            plan,
            rng,
            sends: 0,
            held: VecDeque::new(),
            stats: Arc::new(FaultStats::default()),
        }
    }

    /// Handle to the fault counters (clone before moving the wire into a
    /// worker thread).
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Next uniform sample in `[0, 1)`.
    fn roll(&mut self) -> f64 {
        // Constants from Knuth's MMIX linear congruential generator.
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    fn disconnected(&self) -> bool {
        // `sends` is incremented before this check, so `>` lets exactly
        // `disconnect_after` frames through.
        self.plan.disconnect_after.is_some_and(|n| self.sends > n)
    }
}

impl<T: Transport> FaultyWire<T> {
    /// Delivers to the inner transport, preserving lane addressing when
    /// the frame carried one.
    fn deliver(&mut self, to: NodeId, lane: Option<usize>, bytes: PooledBuf) {
        match lane {
            Some(l) => self.inner.send_to_lane(to, l, bytes),
            None => self.inner.send(to, bytes),
        }
    }

    fn faulty_send(&mut self, to: NodeId, lane: Option<usize>, bytes: PooledBuf) {
        self.sends += 1;
        if self.disconnected() {
            self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Release held frames that have waited long enough.
        while self
            .held
            .front()
            .is_some_and(|h| h.release_after <= self.sends)
        {
            let h = self.held.pop_front().expect("checked front");
            self.deliver(h.to, h.lane, h.bytes);
        }
        if !self.plan.fault_work_frames && carries_work(&bytes) {
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            self.deliver(to, lane, bytes);
            return;
        }
        let roll = self.roll();
        if roll < self.plan.drop_rate {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if roll < self.plan.drop_rate + self.plan.delay_rate {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            self.held.push_back(HeldFrame {
                release_after: self.sends + u64::from(self.plan.delay_frames),
                to,
                lane,
                bytes,
            });
            return;
        }
        if roll < self.plan.drop_rate + self.plan.delay_rate + self.plan.duplicate_rate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            // The duplicate is a detached copy: pooled buffers are
            // uniquely owned, so the clone pays one allocation (rare
            // path — duplication is a fault, not the steady state).
            let copy = PooledBuf::from(bytes.to_vec());
            self.deliver(to, lane, copy);
        }
        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        self.deliver(to, lane, bytes);
    }
}

impl<T: Transport> Transport for FaultyWire<T> {
    fn send(&mut self, to: NodeId, bytes: PooledBuf) {
        self.faulty_send(to, None, bytes);
    }

    fn send_to_lane(&mut self, to: NodeId, lane: usize, bytes: PooledBuf) {
        self.faulty_send(to, Some(lane), bytes);
    }

    fn counters(&self) -> Vec<(&'static str, &'static str, u64)> {
        self.inner.counters()
    }

    fn buffer_pool(&self) -> Option<BufferPool> {
        self.inner.buffer_pool()
    }

    fn health(&self) -> TransportHealth {
        self.inner.health()
    }

    fn backlog(&self) -> u64 {
        self.inner.backlog()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    type Sent = Vec<(NodeId, Vec<u8>)>;

    #[derive(Clone, Default)]
    struct Recorder(Arc<Mutex<Sent>>);

    impl Transport for Recorder {
        fn send(&mut self, to: NodeId, bytes: PooledBuf) {
            self.0.lock().unwrap().push((to, bytes.into_vec()));
        }
    }

    fn frame(i: u8) -> PooledBuf {
        vec![i].into()
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let rec = Recorder::default();
        let mut wire = FaultyWire::new(rec.clone(), FaultPlan::clean(7));
        for i in 0..10 {
            wire.send(NodeId(1), frame(i));
        }
        assert_eq!(rec.0.lock().unwrap().len(), 10);
        assert_eq!(wire.stats().delivered.load(Ordering::Relaxed), 10);
        assert_eq!(wire.stats().lost(), 0);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let observe = |seed: u64| {
            let rec = Recorder::default();
            let plan = FaultPlan::clean(seed).with_drops(0.3).with_duplicates(0.2);
            let mut wire = FaultyWire::new(rec.clone(), plan);
            for i in 0..50 {
                wire.send(NodeId(0), frame(i));
            }
            let log = rec.0.lock().unwrap();
            log.iter().map(|(_, b)| b[0]).collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43), "different seeds should diverge");
    }

    #[test]
    fn drops_lose_frames() {
        let rec = Recorder::default();
        let mut wire = FaultyWire::new(rec.clone(), FaultPlan::clean(1).with_drops(1.0));
        for i in 0..5 {
            wire.send(NodeId(0), frame(i));
        }
        assert_eq!(rec.0.lock().unwrap().len(), 0);
        assert_eq!(wire.stats().dropped.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn delayed_frames_are_released_later_in_order_position() {
        let rec = Recorder::default();
        // Delay everything by 2 sends: frame N surfaces while sending N+2.
        let mut wire = FaultyWire::new(rec.clone(), FaultPlan::clean(3).with_delays(1.0, 2));
        for i in 0..4 {
            wire.send(NodeId(0), frame(i));
        }
        // Frames 0 and 1 released (while sending 2 and 3); 2 and 3 still
        // held.
        let seen: Vec<u8> = rec.0.lock().unwrap().iter().map(|(_, b)| b[0]).collect();
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(wire.stats().delayed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn disconnect_kills_the_wire_for_good() {
        let rec = Recorder::default();
        let mut wire = FaultyWire::new(rec.clone(), FaultPlan::clean(5).with_disconnect_after(3));
        for i in 0..8 {
            wire.send(NodeId(0), frame(i));
        }
        assert_eq!(rec.0.lock().unwrap().len(), 3);
        assert_eq!(wire.stats().disconnected.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let rec = Recorder::default();
        let mut wire = FaultyWire::new(rec.clone(), FaultPlan::clean(9).with_duplicates(1.0));
        wire.send(NodeId(2), frame(7));
        let log = rec.0.lock().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], log[1]);
    }
}
