//! Consistency checking for live (chaos) runs.
//!
//! Two independent views of the same promises:
//!
//! 1. [`check`] feeds the engines' final protocol state (carried in each
//!    [`NodeSummary`]) and the outcomes the application observed through
//!    the **same** [`tpc_core::check`] module the simulator's verifier
//!    uses — atomicity, quiescence and damage-report fidelity are
//!    asserted identically in both harnesses.
//! 2. [`check_wal_agreement`] ignores in-memory state entirely and
//!    re-reads every node's WAL file from disk, the way a recovering
//!    process would: the durable (non-heuristic) decisions recorded for
//!    one transaction must agree across the cluster.

use std::collections::BTreeMap;
use std::path::Path;

use tpc_common::{NodeId, Outcome, Result, TxnId};
use tpc_core::check::{NodeProtocolState, OutcomeRecord};
use tpc_core::recovery::summarize;

use crate::node::{tm_log_path, tm_seg_dir, CommitResult, NodeSummary};

/// Runs the shared protocol-invariant checker over live node summaries.
/// Returns `(violations, unresolved)` exactly as the simulator's
/// verifier does: violations are atomicity/reporting bugs, unresolved
/// are transactions still blocked on a live node (legitimate under
/// failures, fatal after the cluster should have quiesced).
///
/// When violations are found, every node's flight recorder is dumped to
/// stderr — the last [`tpc_obs::FLIGHT_CAP`](tpc_obs) structured events
/// (decisions, forces, in-doubt transitions, WAL health changes,
/// rejections) per node, so a failing chaos run carries its own black
/// box instead of asking for a rerun under logging.
pub fn check(
    summaries: &[NodeSummary],
    outcomes: &[OutcomeRecord],
) -> (Vec<String>, Vec<(NodeId, TxnId)>) {
    let states: Vec<NodeProtocolState> =
        summaries.iter().map(|s| s.protocol_state.clone()).collect();
    let (violations, unresolved) = tpc_core::check::check(&states, outcomes);
    if !violations.is_empty() {
        if let Some(dump) = flight_dump(summaries) {
            eprintln!("=== flight recorder (invariant violation) ===\n{dump}");
        }
    }
    (violations, unresolved)
}

/// Renders every node's flight-recorder ring as human-readable text,
/// oldest event first, or `None` if no node recorded any events (e.g.
/// observability disabled). [`check`] prints this automatically on an
/// invariant violation; chaos tests call it directly to assert the
/// black box was populated.
pub fn flight_dump(summaries: &[NodeSummary]) -> Option<String> {
    let mut out = String::new();
    let mut any = false;
    for s in summaries {
        if s.flight.is_empty() {
            continue;
        }
        any = true;
        out.push_str(&format!("--- node {} ---\n", s.node));
        out.push_str(&tpc_obs::render_flight_text(&s.flight));
    }
    any.then_some(out)
}

/// Builds the outcome record the checker wants from an application-side
/// commit/abort completion.
pub fn outcome_record(txn: TxnId, root: NodeId, result: &CommitResult) -> OutcomeRecord {
    OutcomeRecord {
        txn,
        root,
        outcome: result.outcome,
        report: result.report.clone(),
        pending: result.pending,
    }
}

/// Scans every node's TM WAL under `dir` (durable backends only — plain
/// file or segmented chain, detected per node) and cross-checks the
/// durable decisions: a transaction must not have one node with a
/// durable commit and another with a durable non-heuristic abort.
/// Returns the violations found; nodes with no durable log on disk are
/// skipped (never started, or memory-backed).
pub fn check_wal_agreement(dir: &Path, nodes: usize) -> Result<Vec<String>> {
    let mut decisions: BTreeMap<TxnId, Vec<(NodeId, Outcome)>> = BTreeMap::new();
    for i in 0..nodes {
        let node = NodeId(i as u32);
        let path = tm_log_path(dir, node);
        let seg_dir = tm_seg_dir(dir, node);
        let records = if path.exists() {
            tpc_wal::file::scan(&path)?
        } else if seg_dir.exists() {
            tpc_wal::segment::scan_chain(&seg_dir)?
        } else {
            continue;
        };
        for (txn, summary) in summarize(&records) {
            if summary.heuristic.is_some() {
                // A heuristic decision is damage, not a protocol bug; it
                // is checked against the root's damage report by
                // `check`, not here.
                continue;
            }
            if let Some(outcome) = summary.outcome() {
                decisions.entry(txn).or_default().push((node, outcome));
            }
        }
    }
    let mut violations = Vec::new();
    for (txn, list) in decisions {
        let committed: Vec<NodeId> = list
            .iter()
            .filter(|(_, o)| *o == Outcome::Commit)
            .map(|(n, _)| *n)
            .collect();
        let aborted: Vec<NodeId> = list
            .iter()
            .filter(|(_, o)| *o == Outcome::Abort)
            .map(|(n, _)| *n)
            .collect();
        if !committed.is_empty() && !aborted.is_empty() {
            violations.push(format!(
                "{txn}: durable decisions disagree on disk — committed at {committed:?}, \
                 aborted at {aborted:?}"
            ));
        }
    }
    Ok(violations)
}
