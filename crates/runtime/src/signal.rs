//! Progress signalling between node workers and cluster-level waiters.
//!
//! Cluster calls like `read_eventually` and `quiesce` used to poll on a
//! fixed sleep. With a throughput-grade workload driver that burns a core
//! (and wakes every node with summary requests) for nothing. Instead,
//! every worker bumps a shared [`ClusterSignal`] whenever it makes
//! observable progress (processed a message, fired a timer, flushed a
//! group-commit batch, exited); waiters block on the condvar and re-check
//! their predicate only when something actually happened — with a capped
//! wait so a lost wakeup degrades to slow polling, never to a hang.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cap on a single condvar wait: bounds staleness if a state change
/// escapes instrumentation (e.g. a worker killed without a final bump).
const MAX_WAIT_SLICE: Duration = Duration::from_millis(50);

/// A monotonically-bumped generation counter with a condvar.
#[derive(Debug, Default)]
pub struct ClusterSignal {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl ClusterSignal {
    /// A fresh signal at generation zero.
    pub fn new() -> Self {
        ClusterSignal::default()
    }

    /// Records that cluster-observable state may have changed and wakes
    /// every waiter.
    pub fn bump(&self) {
        let mut gen = self.gen.lock().unwrap_or_else(|e| e.into_inner());
        *gen += 1;
        drop(gen);
        self.cv.notify_all();
    }

    /// The current generation (pair with [`ClusterSignal::wait_past`]).
    pub fn generation(&self) -> u64 {
        *self.gen.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the generation exceeds `seen` or `deadline` passes;
    /// returns the generation observed on wakeup.
    pub fn wait_past(&self, seen: u64, deadline: Instant) -> u64 {
        let mut gen = self.gen.lock().unwrap_or_else(|e| e.into_inner());
        while *gen <= seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let slice = (deadline - now).min(MAX_WAIT_SLICE);
            let (g, _timeout) = self
                .cv
                .wait_timeout(gen, slice)
                .unwrap_or_else(|e| e.into_inner());
            gen = g;
            if Instant::now() >= deadline {
                break;
            }
        }
        *gen
    }

    /// Runs `predicate` each time the cluster makes progress (and at
    /// least every [`MAX_WAIT_SLICE`]) until it returns `Some`, or
    /// `timeout` elapses. This is the shared backbone of
    /// `read_eventually` / `quiesce` / `await_death`.
    pub fn wait_for<R>(
        &self,
        timeout: Duration,
        mut predicate: impl FnMut() -> Option<R>,
    ) -> Option<R> {
        let deadline = Instant::now() + timeout;
        loop {
            let seen = self.generation();
            if let Some(r) = predicate() {
                return Some(r);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.wait_past(seen, deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_for_wakes_on_bump() {
        let sig = Arc::new(ClusterSignal::new());
        let s2 = Arc::clone(&sig);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.bump();
        });
        let start = Instant::now();
        let mut calls = 0;
        let got = sig.wait_for(Duration::from_secs(5), || {
            calls += 1;
            (calls > 1).then_some(())
        });
        assert!(got.is_some());
        assert!(start.elapsed() < Duration::from_secs(2));
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let sig = ClusterSignal::new();
        let start = Instant::now();
        let got: Option<()> = sig.wait_for(Duration::from_millis(30), || None);
        assert!(got.is_none());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn wait_past_returns_immediately_when_already_past() {
        let sig = ClusterSignal::new();
        sig.bump();
        let g = sig.wait_past(0, Instant::now() + Duration::from_secs(5));
        assert!(g >= 1);
    }
}
