//! # tpc-runtime
//!
//! The live harness: real threads, real (wall-clock) timers, real logs and
//! optionally real TCP sockets, driving the same sans-IO engine the
//! simulator drives.
//!
//! Two transports:
//!
//! * [`LiveCluster::start`] — every node is a thread; frames travel over
//!   crossbeam channels. This is the harness the examples use.
//! * [`tcp::TcpCluster::start`] — every node additionally binds a loopback
//!   TCP listener and frames travel over sockets, demonstrating that the
//!   engine's wire format and ordering assumptions hold on a real network
//!   stack.
//!
//! The application API is deliberately small:
//!
//! ```no_run
//! use tpc_common::{Op, Outcome, ProtocolKind};
//! use tpc_runtime::{LiveCluster, LiveNodeConfig};
//!
//! let cluster = LiveCluster::start(vec![
//!     LiveNodeConfig::new(ProtocolKind::PresumedAbort),
//!     LiveNodeConfig::new(ProtocolKind::PresumedAbort),
//! ]);
//! let txn = cluster.begin(tpc_common::NodeId(0));
//! txn.work(tpc_common::NodeId(1), vec![Op::put("k", "v")]);
//! let result = txn.commit();
//! assert_eq!(result.outcome, Outcome::Commit);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod node;
pub mod tcp;

pub use cluster::{LiveCluster, TxnHandle};
pub use node::{AppCmd, CommitResult, Inbound, LiveNodeConfig, LogBackend, NodeSummary, Transport};
