//! # tpc-runtime
//!
//! The live harness: real threads, real (wall-clock) timers, real logs and
//! optionally real TCP sockets, driving the same sans-IO engine the
//! simulator drives.
//!
//! Two transports:
//!
//! * [`LiveCluster::start`] — every node is a thread; frames travel over
//!   crossbeam channels. This is the harness the examples use.
//! * [`tcp::TcpCluster::start`] — every node additionally binds a loopback
//!   TCP listener and frames travel over sockets, demonstrating that the
//!   engine's wire format and ordering assumptions hold on a real network
//!   stack.
//!
//! The application API is deliberately small:
//!
//! ```no_run
//! use tpc_common::{Op, Outcome, ProtocolKind};
//! use tpc_runtime::{LiveCluster, LiveNodeConfig};
//!
//! let cluster = LiveCluster::start(vec![
//!     LiveNodeConfig::new(ProtocolKind::PresumedAbort),
//!     LiveNodeConfig::new(ProtocolKind::PresumedAbort),
//! ]);
//! let txn = cluster.begin(tpc_common::NodeId(0));
//! txn.work(tpc_common::NodeId(1), vec![Op::put("k", "v")]);
//! let result = txn.commit().expect("node alive");
//! assert_eq!(result.outcome, Outcome::Commit);
//! cluster.shutdown();
//! ```
//!
//! ## Fault tolerance
//!
//! The live runtime is built to be killed. [`LiveCluster::kill`] crashes
//! a node mid-protocol (buffered log tails are lost, exactly like a
//! power failure), [`LiveCluster::restart`] rebuilds it from its durable
//! file WAL and re-drives recovery over the real transport — on a
//! multi-lane node the one shared WAL is replayed once and the
//! recovered transactions repartition to their owning lanes — and
//! [`fault::FaultyWire`] injects seeded drops / duplicates / delays /
//! disconnects into any transport. The storage layer gets the same
//! treatment: [`LiveNodeConfig::with_storage_faults`] subjects a node's
//! log device to a seeded [`StorageFaultPlan`] (fsync failures, ENOSPC,
//! torn writes, bit rot, sync latency), and
//! [`LiveNodeConfig::with_io_policy`] picks the node's reaction when
//! durability cannot be re-established: [`IoErrorPolicy::FailStop`]
//! crashes it, [`IoErrorPolicy::ReadOnly`] degrades it to read-only
//! with explicit, counted rejections ([`WalHealth`]) — an I/O error is
//! never a silent wrong answer. After a run, [`verify::check`] asserts
//! the same atomicity invariants the simulator's verifier checks, from
//! live node state and WAL scans.
//!
//! ## Throughput
//!
//! [`LiveNodeConfig::with_group_commit`] batches concurrent log forces
//! into one physical flush per batch (the paper's group-commit
//! optimization, live in the real WAL path), and
//! [`LiveCluster::run_workload`] drives N closed-loop concurrent
//! transactions to fill those batches. `cargo run -p tpc-bench --bin
//! bench_throughput` measures the effect.
//!
//! ## Observability
//!
//! [`LiveNodeConfig::with_observability`] attaches per-phase latency
//! histograms (work / prepare / decision / ack / fsync / group-flush,
//! lock-free log2 buckets from `tpc-obs`) to every node through the
//! same driver seam the simulator instruments;
//! [`LiveNodeConfig::with_tracing`] additionally captures per-
//! transaction phase spans. [`LiveCluster::prometheus_dump`] renders
//! the Prometheus text exposition, [`LiveCluster::chrome_trace`] a
//! chrome-trace JSON for one transaction (both also on
//! [`tcp::TcpCluster`]), and each [`NodeSummary::obs`] carries the raw
//! snapshot.
//!
//! Failure paths are first-class: per-node in-doubt window tracking
//! (`tpc_in_doubt_seconds`, opened at the durable `Prepared` record,
//! re-opened across restarts at the stamped instant), restart-recovery
//! telemetry ([`NodeSummary::recovery`]), TCP retry/reconnect counters,
//! and cross-node trace propagation (frames carry a
//! [`tpc_common::TraceCtx`], so `chrome_trace` stitches one causal tree
//! across nodes). [`LiveCluster::serve_metrics`] /
//! [`tcp::TcpCluster::serve_metrics`] expose it all on a live HTTP
//! `/metrics` endpoint ([`http::MetricsServer`], `curl`-able, no
//! dependencies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod fault;
pub mod http;
mod node;
pub mod obs_export;
pub mod signal;
pub mod tcp;
pub mod verify;
mod workload;

pub use cluster::{CommitWait, LiveCluster, TxnHandle};
pub use fault::{FaultPlan, FaultStats, FaultyWire};
pub use http::MetricsServer;
pub use node::{
    lane_of, AckSlotStats, AppCmd, CommitResult, Inbound, IoErrorPolicy, LiveNodeConfig,
    LogBackend, NodeSummary, Transport, WalHealth,
};
pub use signal::ClusterSignal;
pub use tpc_wal::{StorageFaultPlan, StorageFaultStats};
pub use workload::{
    Arrival, LatencySummary, OpenLoopReport, OpenLoopSpec, WorkloadReport, WorkloadSpec,
};
