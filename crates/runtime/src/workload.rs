//! Concurrent closed-loop workload driver for the live runtime.
//!
//! The paper's throughput arguments (group commit amortizing ~n − n/m
//! forces, §4) only materialize under *concurrent* transactions: a
//! single sequential client can never fill a batch. This module drives N
//! in-flight roots against a cluster in a closed loop — every slot keeps
//! exactly one transaction outstanding via `commit_async`, starting the
//! next the moment the outcome arrives — and reports throughput plus a
//! commit-latency distribution. `tpc-bench`'s `bench_throughput` binary
//! and the group-commit stress tests are built on it.

use std::time::{Duration, Instant};

use tpc_common::{Outcome, Result};

use crate::node::CommitResult;

/// Shape of a closed-loop run.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// In-flight transactions (closed-loop slots). Each slot roots its
    /// transactions at node `slot % (nodes - 1)`.
    pub concurrency: usize,
    /// Total transactions across all slots.
    pub txns: usize,
    /// Per-commit reply deadline; an expired wait counts as `failed`.
    pub reply_timeout: Duration,
    /// Key prefix, so interleaved runs on one cluster stay disjoint.
    pub key_prefix: String,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            concurrency: 8,
            txns: 200,
            reply_timeout: Duration::from_secs(30),
            key_prefix: "w".into(),
        }
    }
}

impl WorkloadSpec {
    /// A spec with the given concurrency and transaction count.
    pub fn new(concurrency: usize, txns: usize) -> Self {
        WorkloadSpec {
            concurrency,
            txns,
            ..WorkloadSpec::default()
        }
    }
}

/// Commit-latency distribution, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Completed (committed or aborted) transactions measured.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a sample of latencies (consumed and sorted).
    pub fn from_micros(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        LatencySummary {
            count,
            mean_us: sum / count,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *samples.last().expect("non-empty"),
        }
    }
}

/// Outcome of a closed-loop run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted (still a completed 2PC round).
    pub aborted: u64,
    /// Requests that errored (timeout, node down) — excluded from the
    /// latency sample.
    pub failed: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Commit-latency distribution over completed transactions.
    pub latency: LatencySummary,
}

impl WorkloadReport {
    /// Completed transactions per wall-clock second.
    pub fn txns_per_sec(&self) -> f64 {
        let done = (self.committed + self.aborted) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }
}

/// Runs `txns` transactions through `issue` with `concurrency` slots,
/// each slot a closed loop (next request starts when the previous
/// outcome arrives). `issue(slot, iteration)` must block until the
/// transaction completes.
pub(crate) fn run_closed_loop<F>(concurrency: usize, txns: usize, issue: F) -> WorkloadReport
where
    F: Fn(usize, usize) -> Result<CommitResult> + Sync,
{
    assert!(concurrency > 0, "concurrency must be >= 1");
    let start = Instant::now();
    let per_slot: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|s| {
        let issue = &issue;
        let handles: Vec<_> = (0..concurrency)
            .map(|slot| {
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let (mut committed, mut aborted, mut failed) = (0u64, 0u64, 0u64);
                    let mut i = slot;
                    while i < txns {
                        let t0 = Instant::now();
                        match issue(slot, i) {
                            Ok(r) => {
                                lat.push(t0.elapsed().as_micros() as u64);
                                if r.outcome == Outcome::Commit {
                                    committed += 1;
                                } else {
                                    aborted += 1;
                                }
                            }
                            Err(_) => failed += 1,
                        }
                        i += concurrency;
                    }
                    (lat, committed, aborted, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload slot thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut all = Vec::with_capacity(txns);
    let (mut committed, mut aborted, mut failed) = (0u64, 0u64, 0u64);
    for (lat, c, a, f) in per_slot {
        all.extend(lat);
        committed += c;
        aborted += a;
        failed += f;
    }
    WorkloadReport {
        committed,
        aborted,
        failed,
        elapsed,
        latency: LatencySummary::from_micros(all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::DamageReport;

    fn ok(outcome: Outcome) -> Result<CommitResult> {
        Ok(CommitResult {
            outcome,
            report: DamageReport::default(),
            pending: false,
        })
    }

    #[test]
    fn closed_loop_covers_every_iteration_exactly_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 25]);
        let report = run_closed_loop(4, 25, |_slot, i| {
            seen.lock().unwrap()[i] += 1;
            ok(Outcome::Commit)
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        assert_eq!(report.committed, 25);
        assert_eq!(report.latency.count, 25);
        assert!(report.txns_per_sec() > 0.0);
    }

    #[test]
    fn aborts_and_failures_are_separated() {
        let report = run_closed_loop(2, 10, |_slot, i| {
            if i % 5 == 0 {
                Err(tpc_common::Error::Timeout("synthetic".into()))
            } else if i % 2 == 0 {
                ok(Outcome::Abort)
            } else {
                ok(Outcome::Commit)
            }
        });
        assert_eq!(report.failed, 2, "i = 0, 5");
        assert_eq!(report.aborted, 4, "i = 2, 4, 6, 8");
        assert_eq!(report.committed, 4, "i = 1, 3, 7, 9");
        assert_eq!(report.latency.count, 8, "failures excluded from sample");
    }

    #[test]
    fn latency_percentiles_on_known_sample() {
        let s = LatencySummary::from_micros((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51, "nearest-rank on even-sized sample");
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
        let empty = LatencySummary::from_micros(vec![]);
        assert_eq!(empty.count, 0);
    }
}
