//! Concurrent closed-loop workload driver for the live runtime.
//!
//! The paper's throughput arguments (group commit amortizing ~n − n/m
//! forces, §4) only materialize under *concurrent* transactions: a
//! single sequential client can never fill a batch. This module drives N
//! in-flight roots against a cluster in a closed loop — every slot keeps
//! exactly one transaction outstanding via `commit_async`, starting the
//! next the moment the outcome arrives — and reports throughput plus a
//! commit-latency distribution. `tpc-bench`'s `bench_throughput` binary
//! and the group-commit stress tests are built on it.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpc_common::{Outcome, Result, SimTime};
use tpc_obs::{Timeline, TimelineCounter, TimelineGauge, TimelineHist, TimelineSnapshot};

use crate::cluster::CommitWait;
use crate::node::CommitResult;

/// Driver-side timeline geometry: 10 ms windows × 256 slots ≈ 2.56 s of
/// history, clocked from the run's own start instant. Much narrower than
/// the node-side windows because an open-loop bench cell can finish in
/// tens of milliseconds and still deserves a curve. This is the
/// *offered-load* timeline (per-window completions, end-to-end latency,
/// admission-queue depth); node-side queueing appears on each node's own
/// timeline.
const DRIVER_TIMELINE_WINDOW_US: u64 = 10_000;
/// Ring length of the driver-side timeline.
const DRIVER_TIMELINE_WINDOWS: usize = 256;

/// Shape of a closed-loop run.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// In-flight transactions (closed-loop slots). Each slot roots its
    /// transactions at node `slot % (nodes - 1)`.
    pub concurrency: usize,
    /// Total transactions across all slots.
    pub txns: usize,
    /// Per-commit reply deadline; an expired wait counts as `failed`.
    pub reply_timeout: Duration,
    /// Key prefix, so interleaved runs on one cluster stay disjoint.
    pub key_prefix: String,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            concurrency: 8,
            txns: 200,
            reply_timeout: Duration::from_secs(30),
            key_prefix: "w".into(),
        }
    }
}

impl WorkloadSpec {
    /// A spec with the given concurrency and transaction count.
    pub fn new(concurrency: usize, txns: usize) -> Self {
        WorkloadSpec {
            concurrency,
            txns,
            ..WorkloadSpec::default()
        }
    }
}

/// Commit-latency distribution, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Completed (committed or aborted) transactions measured.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a sample of latencies (consumed and sorted).
    pub fn from_micros(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        LatencySummary {
            count,
            mean_us: sum / count,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *samples.last().expect("non-empty"),
        }
    }
}

/// Outcome of a closed-loop run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted (still a completed 2PC round).
    pub aborted: u64,
    /// Requests that errored (timeout, node down) — excluded from the
    /// latency sample.
    pub failed: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Commit-latency distribution over completed transactions.
    pub latency: LatencySummary,
}

impl WorkloadReport {
    /// Completed transactions per wall-clock second.
    pub fn txns_per_sec(&self) -> f64 {
        let done = (self.committed + self.aborted) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }
}

/// Runs `txns` transactions through `issue` with `concurrency` slots,
/// each slot a closed loop (next request starts when the previous
/// outcome arrives). `issue(slot, iteration)` must block until the
/// transaction completes.
pub(crate) fn run_closed_loop<F>(concurrency: usize, txns: usize, issue: F) -> WorkloadReport
where
    F: Fn(usize, usize) -> Result<CommitResult> + Sync,
{
    assert!(concurrency > 0, "concurrency must be >= 1");
    let start = Instant::now();
    let per_slot: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|s| {
        let issue = &issue;
        let handles: Vec<_> = (0..concurrency)
            .map(|slot| {
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let (mut committed, mut aborted, mut failed) = (0u64, 0u64, 0u64);
                    let mut i = slot;
                    while i < txns {
                        let t0 = Instant::now();
                        match issue(slot, i) {
                            Ok(r) => {
                                lat.push(t0.elapsed().as_micros() as u64);
                                if r.outcome == Outcome::Commit {
                                    committed += 1;
                                } else {
                                    aborted += 1;
                                }
                            }
                            Err(_) => failed += 1,
                        }
                        i += concurrency;
                    }
                    (lat, committed, aborted, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload slot thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut all = Vec::with_capacity(txns);
    let (mut committed, mut aborted, mut failed) = (0u64, 0u64, 0u64);
    for (lat, c, a, f) in per_slot {
        all.extend(lat);
        committed += c;
        aborted += a;
        failed += f;
    }
    WorkloadReport {
        committed,
        aborted,
        failed,
        elapsed,
        latency: LatencySummary::from_micros(all),
    }
}

/// Shape of an open-loop run: arrivals are paced by a target rate, not
/// by completions, so the generator models offered load rather than a
/// fixed client population. Overload is handled by *admission control*:
/// a bounded arrival queue plus a bounded in-flight population, with
/// explicit rejections once both are full.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Offered load, in transaction arrivals per second.
    pub arrival_rate: f64,
    /// Total arrivals to generate.
    pub txns: usize,
    /// Admission control: maximum transactions outstanding at once.
    pub max_in_flight: usize,
    /// Admission control: maximum arrivals queued awaiting an in-flight
    /// slot. An arrival finding the queue full is rejected (counted,
    /// never issued) — bounded queueing instead of collapse.
    pub queue_cap: usize,
    /// Zipf skew exponent for key choice within a tenant (0 = uniform;
    /// ~0.99 = classic hot-key YCSB skew).
    pub zipf_theta: f64,
    /// Independent tenants; arrival `i` belongs to tenant `i % tenants`,
    /// and tenants never share keys.
    pub tenants: usize,
    /// Keys per tenant key space.
    pub keys_per_tenant: usize,
    /// Deadline for any single commit; an in-flight transaction older
    /// than this counts as `failed` and frees its slot.
    pub reply_timeout: Duration,
    /// Key prefix, so interleaved runs on one cluster stay disjoint.
    pub key_prefix: String,
    /// Seed for the arrival/key randomness (deterministic runs).
    pub seed: u64,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            arrival_rate: 500.0,
            txns: 1_000,
            max_in_flight: 64,
            queue_cap: 256,
            zipf_theta: 0.0,
            tenants: 4,
            keys_per_tenant: 1_000,
            reply_timeout: Duration::from_secs(30),
            key_prefix: "ol".into(),
            seed: 0x5EED,
        }
    }
}

impl OpenLoopSpec {
    /// A spec offering `rate` txns/sec for `txns` arrivals.
    pub fn new(rate: f64, txns: usize) -> Self {
        OpenLoopSpec {
            arrival_rate: rate,
            txns,
            ..OpenLoopSpec::default()
        }
    }
}

/// One generated arrival, handed to the issue closure.
pub struct Arrival {
    /// Global arrival index (`0..spec.txns`).
    pub index: usize,
    /// The zipf-drawn tenant key this transaction writes.
    pub key: String,
}

/// Outcome of an open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted (still a completed 2PC round).
    pub aborted: u64,
    /// Transactions that errored or outlived the reply deadline.
    pub failed: u64,
    /// Arrivals rejected by admission control (never issued).
    pub rejected: u64,
    /// Deepest the arrival queue got.
    pub max_queue_depth: usize,
    /// Most transactions outstanding at once.
    pub max_in_flight_seen: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Latency distribution measured **from arrival** (not from issue),
    /// so queueing delay under load is visible in the percentiles.
    pub latency: LatencySummary,
    /// Windowed time series of the run as the driver saw it: per-window
    /// committed/aborted/rejected counts, end-to-end commit latency, and
    /// admission-queue / in-flight gauges.
    pub timeline: TimelineSnapshot,
}

impl OpenLoopReport {
    /// Completed transactions per wall-clock second.
    pub fn txns_per_sec(&self) -> f64 {
        let done = (self.committed + self.aborted) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }
}

/// Splitmix-style generator for arrival randomness: deterministic per
/// seed, no external dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(θ) sampler over ranks `0..n` via a precomputed cumulative
/// distribution and binary search. θ = 0 degenerates to uniform.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let n = n.max(1);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Zipf { cumulative }
    }

    fn sample(&self, u: f64) -> usize {
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Runs `spec.txns` arrivals open-loop through `issue`, which must
/// return immediately with a [`CommitWait`] (e.g. `commit_async`). The
/// driver paces arrivals at `spec.arrival_rate`, applies admission
/// control, and reaps completions by polling — one thread, no
/// per-transaction blocking anywhere.
pub(crate) fn run_open_loop<F>(spec: &OpenLoopSpec, issue: F) -> OpenLoopReport
where
    F: Fn(&Arrival) -> CommitWait,
{
    assert!(spec.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(spec.max_in_flight > 0, "need at least one in-flight slot");
    let interval = Duration::from_secs_f64(1.0 / spec.arrival_rate);
    let zipf = Zipf::new(spec.keys_per_tenant, spec.zipf_theta);
    let mut rng = Rng(spec.seed);
    let tenants = spec.tenants.max(1);

    let start = Instant::now();
    let timeline = Arc::new(Timeline::new(
        DRIVER_TIMELINE_WINDOW_US,
        DRIVER_TIMELINE_WINDOWS,
    ));
    let tl_now = |start: &Instant| SimTime(start.elapsed().as_micros() as u64);
    let mut issued = 0usize; // arrivals generated (admitted, queued or rejected)
    let mut queue: VecDeque<(Instant, usize)> = VecDeque::new();
    let mut in_flight: Vec<(CommitWait, Instant)> = Vec::new();
    let (mut committed, mut aborted, mut failed, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::with_capacity(spec.txns);
    let (mut max_queue_depth, mut max_in_flight_seen) = (0usize, 0usize);

    loop {
        let now = Instant::now();
        // 1. Generate every arrival that is due by now (catch-up pacer:
        //    a stalled driver emits the backlog in a burst, preserving
        //    the offered rate on average).
        while issued < spec.txns && start + interval.mul_f64(issued as f64) <= now {
            if queue.len() >= spec.queue_cap {
                rejected += 1; // admission control: explicit rejection
                timeline.inc(TimelineCounter::Rejected, 1, tl_now(&start));
            } else {
                queue.push_back((now, issued));
            }
            issued += 1;
        }
        max_queue_depth = max_queue_depth.max(queue.len());
        // 2. Admit queued arrivals into free in-flight slots.
        while in_flight.len() < spec.max_in_flight {
            let Some((arrived_at, index)) = queue.pop_front() else {
                break;
            };
            let tenant = index % tenants;
            let rank = zipf.sample(rng.next_f64());
            let arrival = Arrival {
                index,
                key: format!("{}-t{tenant}-k{rank}", spec.key_prefix),
            };
            in_flight.push((issue(&arrival), arrived_at));
        }
        max_in_flight_seen = max_in_flight_seen.max(in_flight.len());
        // Per-iteration saturation gauges (the loop itself ticks at
        // least every few hundred microseconds, so each window gets
        // plenty of samples).
        let t = tl_now(&start);
        timeline.gauge(TimelineGauge::AdmitQueue, queue.len() as u64, t);
        timeline.gauge(TimelineGauge::InFlight, in_flight.len() as u64, t);
        // 3. Reap completions (and expire deadline overruns).
        let mut i = 0;
        while i < in_flight.len() {
            let (wait, arrived_at) = &in_flight[i];
            match wait.poll() {
                Ok(Some(r)) => {
                    let micros = arrived_at.elapsed().as_micros() as u64;
                    latencies.push(micros);
                    let t = tl_now(&start);
                    timeline.record(TimelineHist::Commit, micros, t);
                    if r.outcome == Outcome::Commit {
                        committed += 1;
                        timeline.inc(TimelineCounter::Committed, 1, t);
                    } else {
                        aborted += 1;
                        timeline.inc(TimelineCounter::Aborted, 1, t);
                    }
                    in_flight.swap_remove(i);
                }
                Ok(None) => {
                    if arrived_at.elapsed() > spec.reply_timeout {
                        failed += 1;
                        in_flight.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                Err(_) => {
                    failed += 1;
                    in_flight.swap_remove(i);
                }
            }
        }
        if issued >= spec.txns && queue.is_empty() && in_flight.is_empty() {
            break;
        }
        // 4. Sleep until the next arrival is due (bounded so reaping
        //    stays responsive under long gaps).
        if issued < spec.txns {
            let next_due = start + interval.mul_f64(issued as f64);
            let nap = next_due
                .saturating_duration_since(Instant::now())
                .min(Duration::from_micros(500));
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    let final_now = tl_now(&start);
    OpenLoopReport {
        committed,
        aborted,
        failed,
        rejected,
        max_queue_depth,
        max_in_flight_seen,
        elapsed: start.elapsed(),
        latency: LatencySummary::from_micros(latencies),
        timeline: timeline.snapshot(final_now),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::DamageReport;

    fn ok(outcome: Outcome) -> Result<CommitResult> {
        Ok(CommitResult {
            outcome,
            report: DamageReport::default(),
            pending: false,
        })
    }

    #[test]
    fn closed_loop_covers_every_iteration_exactly_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 25]);
        let report = run_closed_loop(4, 25, |_slot, i| {
            seen.lock().unwrap()[i] += 1;
            ok(Outcome::Commit)
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        assert_eq!(report.committed, 25);
        assert_eq!(report.latency.count, 25);
        assert!(report.txns_per_sec() > 0.0);
    }

    #[test]
    fn aborts_and_failures_are_separated() {
        let report = run_closed_loop(2, 10, |_slot, i| {
            if i % 5 == 0 {
                Err(tpc_common::Error::Timeout("synthetic".into()))
            } else if i % 2 == 0 {
                ok(Outcome::Abort)
            } else {
                ok(Outcome::Commit)
            }
        });
        assert_eq!(report.failed, 2, "i = 0, 5");
        assert_eq!(report.aborted, 4, "i = 2, 4, 6, 8");
        assert_eq!(report.committed, 4, "i = 1, 3, 7, 9");
        assert_eq!(report.latency.count, 8, "failures excluded from sample");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 0.99);
        let mut rng = Rng(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(rng.next_f64())] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "rank 0 ({}) should dwarf rank 50 ({})",
            counts[0],
            counts[50]
        );
        // Uniform (θ=0) must not share that skew.
        let u = Zipf::new(100, 0.0);
        let mut rng = Rng(7);
        let mut ucounts = vec![0u32; 100];
        for _ in 0..20_000 {
            ucounts[u.sample(rng.next_f64())] += 1;
        }
        assert!(ucounts[0] < ucounts[50] * 3);
    }

    #[test]
    fn open_loop_completes_everything_under_capacity() {
        use crossbeam::channel::bounded;
        use tpc_common::NodeId;
        let spec = OpenLoopSpec {
            arrival_rate: 20_000.0,
            txns: 500,
            max_in_flight: 64,
            queue_cap: 1_000,
            ..OpenLoopSpec::default()
        };
        let report = run_open_loop(&spec, |_arrival| {
            // Instant completion: reply already waiting in the channel.
            let (tx, rx) = bounded(1);
            let _ = tx.send(CommitResult {
                outcome: Outcome::Commit,
                report: DamageReport::default(),
                pending: false,
            });
            CommitWait::from_parts(rx, NodeId(0))
        });
        assert_eq!(report.committed, 500);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latency.count, 500);
    }

    #[test]
    fn open_loop_overload_rejects_instead_of_collapsing() {
        use crossbeam::channel::bounded;
        use tpc_common::NodeId;
        let spec = OpenLoopSpec {
            arrival_rate: 100_000.0,
            txns: 400,
            max_in_flight: 4,
            queue_cap: 8,
            reply_timeout: Duration::from_millis(100),
            ..OpenLoopSpec::default()
        };
        // Replies never come: every admitted txn times out; the queue
        // and in-flight populations must stay bounded and the surplus
        // must be rejected, not buffered without limit.
        let report = run_open_loop(&spec, |_arrival| {
            let (tx, rx) = bounded::<CommitResult>(1);
            std::mem::forget(tx); // keep the channel open, never reply
            CommitWait::from_parts(rx, NodeId(0))
        });
        assert_eq!(report.committed, 0);
        assert!(report.rejected > 0, "overload must surface as rejections");
        assert!(report.max_queue_depth <= spec.queue_cap);
        assert!(report.max_in_flight_seen <= spec.max_in_flight);
        assert_eq!(
            report.rejected + report.failed,
            400,
            "every arrival is accounted: rejected or timed out"
        );
    }

    #[test]
    fn latency_percentiles_on_known_sample() {
        let s = LatencySummary::from_micros((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51, "nearest-rank on even-sized sample");
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
        let empty = LatencySummary::from_micros(vec![]);
        assert_eq!(empty.count, 0);
    }
}
