//! TCP transport: the same node workers over loopback sockets.
//!
//! Frame format on the wire: `u32 len (LE) | u32 sender (LE) | bundle
//! bytes`. One outbound connection per (src, dst) pair, established
//! lazily; one acceptor thread per node fans incoming frames into the
//! node's inbound channel.
//!
//! The transport is hardened for chaos runs: connection and write
//! failures never panic. A failed send reconnects with capped
//! exponential backoff plus seeded jitter, bounded by
//! [`RetryPolicy::max_attempts`]; when retries are exhausted the sender
//! reports [`Inbound::PartnerDown`] to its own node so the engine aborts
//! or re-drives the affected transactions instead of wedging.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use tpc_common::{Error, NodeId, Op, Result, TxnId};

use crate::cluster::recv_reply;
use crate::fault::{FaultPlan, FaultyWire};
use crate::node::{
    AppCmd, CommitResult, Inbound, LiveNodeConfig, NodeSummary, NodeWorker, Transport,
};

/// How long TCP cluster-level blocking requests wait before reporting
/// [`Error::Timeout`].
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Reconnect discipline for a [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Connection/write attempts per frame before giving the peer up.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter generator (so a scripted run reproduces).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (1-based; attempt 0 is
    /// immediate): `min(base << (attempt-1), max)`, scaled by a jitter
    /// factor in `[0.5, 1.0]` drawn from `rng` so simultaneous retriers
    /// do not stampede in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        *rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = 0.5 + ((*rng >> 11) as f64 / (1u64 << 53) as f64) / 2.0;
        exp.mul_f64(jitter)
    }
}

/// Lazily-connecting TCP sender with bounded reconnect retries.
pub struct TcpTransport {
    me: NodeId,
    addrs: Vec<SocketAddr>,
    conns: HashMap<NodeId, TcpStream>,
    policy: RetryPolicy,
    rng: u64,
    /// The owning node's inbound channel, for failure notifications.
    self_tx: Sender<Inbound>,
    /// Peers already reported down (cleared when a connect succeeds, so
    /// a recovered peer gets a fresh report if it fails again).
    reported_down: HashSet<NodeId>,
}

impl TcpTransport {
    fn new(
        me: NodeId,
        addrs: Vec<SocketAddr>,
        policy: RetryPolicy,
        self_tx: Sender<Inbound>,
    ) -> Self {
        let rng = policy.seed.wrapping_add(u64::from(me.0)) | 1;
        TcpTransport {
            me,
            addrs,
            conns: HashMap::new(),
            policy,
            rng,
            self_tx,
            reported_down: HashSet::new(),
        }
    }

    fn connect(&mut self, to: NodeId) -> Option<()> {
        if self.conns.contains_key(&to) {
            return Some(());
        }
        let addr = *self.addrs.get(to.index())?;
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        self.conns.insert(to, stream);
        self.reported_down.remove(&to);
        Some(())
    }

    fn try_write(&mut self, to: NodeId, frame: &[u8]) -> bool {
        match self.conns.get_mut(&to) {
            Some(stream) => {
                if stream.write_all(frame).is_ok() {
                    true
                } else {
                    self.conns.remove(&to);
                    false
                }
            }
            None => false,
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, bytes: Vec<u8>) {
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&self.me.0.to_le_bytes());
        frame.extend_from_slice(&bytes);

        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                let backoff = self.policy.backoff(attempt, &mut self.rng);
                std::thread::sleep(backoff);
            }
            if self.connect(to).is_some() && self.try_write(to, &frame) {
                return;
            }
        }
        // Retries exhausted: the peer is unreachable. Tell our own engine
        // so it can abort unvoted work and lean on timers for the rest,
        // instead of silently losing the frame.
        if self.reported_down.insert(to) {
            let _ = self.self_tx.send(Inbound::PartnerDown { peer: to });
        }
    }
}

fn acceptor(listener: TcpListener, tx: Sender<Inbound>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        if std::thread::Builder::new()
            .name("tpc-tcp-reader".into())
            .spawn(move || reader(stream, tx))
            .is_err()
        {
            // Could not spawn a reader: drop the connection; the peer
            // will reconnect and retry.
            continue;
        }
    }
}

fn reader(mut stream: TcpStream, tx: Sender<Inbound>) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // peer closed or died: reader ends quietly
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let from = NodeId(u32::from_le_bytes([
            header[4], header[5], header[6], header[7],
        ]));
        if len > 64 * 1024 * 1024 {
            return; // absurd frame: drop the connection
        }
        let mut bytes = vec![0u8; len];
        if stream.read_exact(&mut bytes).is_err() {
            return;
        }
        if tx.send(Inbound::Frame { from, bytes }).is_err() {
            return;
        }
    }
}

/// A cluster whose nodes talk TCP over loopback.
pub struct TcpCluster {
    senders: Vec<Sender<Inbound>>,
    receivers: Vec<Receiver<Inbound>>,
    handles: Vec<Option<JoinHandle<NodeSummary>>>,
    configs: Vec<LiveNodeConfig>,
    next_seq: Arc<AtomicU64>,
    policy: RetryPolicy,
    epoch: Instant,
    reply_timeout: Duration,
    /// The socket addresses the nodes listen on.
    pub addrs: Vec<SocketAddr>,
}

impl TcpCluster {
    /// Binds loopback listeners, spawns workers, full-mesh partnership.
    pub fn start(configs: Vec<LiveNodeConfig>) -> std::io::Result<Self> {
        let faults = vec![None; configs.len()];
        Self::start_with_faults(configs, faults, RetryPolicy::default())
    }

    /// Starts with per-node outbound fault plans (the [`FaultyWire`]
    /// wraps the TCP transport itself, demonstrating injection below the
    /// socket seam) and an explicit reconnect policy.
    pub fn start_with_faults(
        configs: Vec<LiveNodeConfig>,
        faults: Vec<Option<FaultPlan>>,
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        assert_eq!(configs.len(), faults.len(), "one fault slot per node");
        let n = configs.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut cluster = TcpCluster {
            senders,
            receivers,
            handles: (0..n).map(|_| None).collect(),
            configs,
            next_seq: Arc::new(AtomicU64::new(1)),
            policy,
            epoch,
            reply_timeout: DEFAULT_REPLY_TIMEOUT,
            addrs,
        };
        for (i, listener) in listeners.into_iter().enumerate() {
            let node = NodeId(i as u32);
            let tx = cluster.senders[i].clone();
            std::thread::Builder::new()
                .name(format!("tpc-acceptor-{i}"))
                .spawn(move || acceptor(listener, tx))?;
            let transport = cluster.make_transport(node, faults[i].clone());
            // Commit trees form from the work actually exchanged; no
            // standing partnership by default (it is directional and
            // tree-shaped — see LiveCluster::start_with_topology).
            let worker = NodeWorker::new(
                node,
                cluster.configs[i].clone(),
                Vec::new(),
                transport,
                cluster.receivers[i].clone(),
                epoch,
            );
            cluster.handles[i] = Some(spawn_tcp_worker(i, worker)?);
        }
        Ok(cluster)
    }

    /// Replaces the reply deadline used by blocking requests.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    fn make_transport(&self, node: NodeId, plan: Option<FaultPlan>) -> Box<dyn Transport> {
        let base = TcpTransport::new(
            node,
            self.addrs.clone(),
            self.policy.clone(),
            self.senders[node.index()].clone(),
        );
        match plan {
            Some(plan) => Box::new(FaultyWire::new(base, plan)),
            None => Box::new(base),
        }
    }

    /// Kills `node`'s worker mid-protocol (its listener stays bound —
    /// the model is a crashed transaction manager whose endpoint
    /// reappears on restart, so peer frames sent meanwhile queue and are
    /// discarded at restart like packets to a dead process). Partners are
    /// notified so they abort or re-drive.
    pub fn kill(&mut self, node: NodeId) -> Result<NodeSummary> {
        let handle = self.handles[node.index()]
            .take()
            .ok_or(Error::NodeDown(node))?;
        let _ = self.senders[node.index()].send(Inbound::Kill);
        let summary = handle
            .join()
            .map_err(|_| Error::Transport(format!("worker {node} panicked")))?;
        for (i, tx) in self.senders.iter().enumerate() {
            if i != node.index() && self.handles[i].is_some() {
                let _ = tx.send(Inbound::PartnerDown { peer: node });
            }
        }
        Ok(summary)
    }

    /// Waits for a node armed with
    /// [`kill_after_frames`](LiveNodeConfig::kill_after_frames) to crash
    /// itself, then notifies its partners. Fails with [`Error::Timeout`]
    /// if the node is still alive after `timeout`.
    pub fn await_death(&mut self, node: NodeId, timeout: Duration) -> Result<NodeSummary> {
        let deadline = Instant::now() + timeout;
        loop {
            let finished = self.handles[node.index()]
                .as_ref()
                .ok_or(Error::NodeDown(node))?
                .is_finished();
            if finished {
                let handle = self.handles[node.index()].take().expect("checked above");
                let summary = handle
                    .join()
                    .map_err(|_| Error::Transport(format!("worker {node} panicked")))?;
                for (i, tx) in self.senders.iter().enumerate() {
                    if i != node.index() && self.handles[i].is_some() {
                        let _ = tx.send(Inbound::PartnerDown { peer: node });
                    }
                }
                return Ok(summary);
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout(format!(
                    "{node} still alive after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Restarts a killed node from its durable file WAL; recovery
    /// messages go out over real sockets.
    pub fn restart(&mut self, node: NodeId) -> Result<()> {
        if self.handles[node.index()].is_some() {
            return Err(Error::InvalidState(format!("{node} is already running")));
        }
        while self.receivers[node.index()].try_recv().is_ok() {}
        let transport = self.make_transport(node, None);
        let worker = NodeWorker::restart(
            node,
            self.configs[node.index()].clone(),
            Vec::new(),
            transport,
            self.receivers[node.index()].clone(),
            self.epoch,
        )?;
        self.handles[node.index()] =
            Some(spawn_tcp_worker(node.index(), worker).map_err(Error::Io)?);
        Ok(())
    }

    /// Begins a transaction rooted at `root`.
    pub fn begin(&self, root: NodeId) -> TcpTxnHandle<'_> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TcpTxnHandle {
            cluster: self,
            txn: TxnId::new(root, seq),
            root,
        }
    }

    /// Reads a committed value from `node`'s store.
    pub fn read(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Read {
                key: key.as_bytes().to_vec(),
                reply: tx,
            }))
            .ok()?;
        recv_reply(&rx, node, self.reply_timeout).ok()?
    }

    /// Polls `node`'s store until `key` holds a value or `timeout`
    /// elapses — see [`crate::LiveCluster::read_eventually`] for why
    /// cross-node visibility needs a deadline.
    pub fn read_eventually(&self, node: NodeId, key: &str, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.read(node, key) {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Polls until every live node reports zero active transactions, or
    /// `timeout` passes. Returns `true` on quiescence.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let busy = (0..self.handles.len()).any(|i| {
                self.handles[i].is_some()
                    && self
                        .summary(NodeId(i as u32))
                        .is_none_or(|s| s.active_txns > 0)
            });
            if !busy {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Fetches a node's live summary.
    pub fn summary(&self, node: NodeId) -> Option<NodeSummary> {
        self.handles[node.index()].as_ref()?;
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Summary { reply: tx }))
            .ok()?;
        recv_reply(&rx, node, self.reply_timeout).ok()
    }

    /// Stops every live node.
    pub fn shutdown(self) -> Vec<NodeSummary> {
        let mut out = Vec::new();
        for (i, tx) in self.senders.iter().enumerate() {
            if self.handles[i].is_some() {
                let (reply, _rx) = bounded(1);
                let _ = tx.send(Inbound::Shutdown { reply });
            }
        }
        for h in self.handles.into_iter().flatten() {
            if let Ok(s) = h.join() {
                out.push(s);
            }
        }
        out
    }
}

fn spawn_tcp_worker<T: Transport>(
    index: usize,
    worker: NodeWorker<T>,
) -> std::io::Result<JoinHandle<NodeSummary>> {
    std::thread::Builder::new()
        .name(format!("tpc-tcp-node-{index}"))
        .spawn(move || worker.run())
}

/// A transaction in flight on a [`TcpCluster`].
pub struct TcpTxnHandle<'a> {
    cluster: &'a TcpCluster,
    txn: TxnId,
    root: NodeId,
}

impl TcpTxnHandle<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Sends work to a partner.
    pub fn work(&self, to: NodeId, ops: Vec<Op>) {
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Work {
            txn: self.txn,
            to,
            ops,
        }));
    }

    /// Requests commit, blocking for the outcome; typed errors instead
    /// of hanging on a dead root.
    pub fn commit(self) -> Result<CommitResult> {
        let timeout = self.cluster.reply_timeout;
        self.commit_async().wait_with(timeout)
    }

    /// Requests commit and returns a waiter, releasing the cluster
    /// borrow so the caller can kill/restart nodes meanwhile.
    pub fn commit_async(self) -> TcpCommitWait {
        let (tx, rx) = bounded(1);
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Commit {
            txn: self.txn,
            reply: tx,
        }));
        TcpCommitWait {
            rx,
            node: self.root,
        }
    }
}

/// An in-flight commit on a [`TcpCluster`].
pub struct TcpCommitWait {
    rx: Receiver<CommitResult>,
    node: NodeId,
}

impl TcpCommitWait {
    /// Blocks until the outcome arrives or `timeout` passes.
    pub fn wait_with(self, timeout: Duration) -> Result<CommitResult> {
        recv_reply(&self.rx, self.node, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    #[test]
    fn commit_over_real_sockets() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
        ])
        .expect("bind loopback");
        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::put("tcp-a", "1")]);
        t.work(NodeId(2), vec![Op::put("tcp-b", "2")]);
        let r = t.commit().expect("root alive");
        assert_eq!(r.outcome, Outcome::Commit);
        let wait = Duration::from_secs(5);
        assert_eq!(
            c.read_eventually(NodeId(1), "tcp-a", wait),
            Some(b"1".to_vec())
        );
        assert_eq!(
            c.read_eventually(NodeId(2), "tcp-b", wait),
            Some(b"2".to_vec())
        );
        c.shutdown();
    }

    #[test]
    fn several_transactions_over_tcp() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
        ])
        .expect("bind loopback");
        for i in 0..5 {
            let t = c.begin(NodeId(0));
            t.work(NodeId(1), vec![Op::put("seq", &i.to_string())]);
            assert_eq!(t.commit().expect("root alive").outcome, Outcome::Commit);
        }
        // "seq" is rewritten by each txn: poll until the last write lands.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let v = c.read(NodeId(1), "seq");
            if v == Some(b"4".to_vec()) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "expected seq=4 at the subordinate, got {v:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        c.shutdown();
    }

    #[test]
    fn backoff_grows_and_caps_with_jitter_bounds() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            seed: 7,
        };
        let mut rng = 99u64;
        let mut last = Duration::ZERO;
        for attempt in 1..6 {
            let d = policy.backoff(attempt, &mut rng);
            let raw = policy
                .base_delay
                .saturating_mul(1 << (attempt - 1))
                .min(policy.max_delay);
            assert!(
                d >= raw.mul_f64(0.5) && d <= raw,
                "jitter within [0.5, 1.0]"
            );
            assert!(d >= last.mul_f64(0.25), "roughly monotone under jitter");
            last = d;
        }
        // Capped: attempt 5 raw backoff is 160ms, clamped to 40ms.
        let d = policy.backoff(5, &mut rng);
        assert!(d <= Duration::from_millis(40));
    }

    #[test]
    fn unreachable_peer_reports_partner_down_after_bounded_retries() {
        // A listener we bind then drop: connecting to it fails fast.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (self_tx, self_rx) = unbounded();
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            seed: 11,
        };
        let mut t = TcpTransport::new(
            NodeId(0),
            vec![live.local_addr().unwrap(), dead_addr],
            policy,
            self_tx,
        );
        t.send(NodeId(1), vec![1, 2, 3]);
        match self_rx.try_recv() {
            Ok(Inbound::PartnerDown { peer }) => assert_eq!(peer, NodeId(1)),
            other => panic!(
                "expected PartnerDown after retry exhaustion, got {:?}",
                other.is_ok()
            ),
        }
        // Reported once, not per frame.
        t.send(NodeId(1), vec![4, 5, 6]);
        assert!(self_rx.try_recv().is_err(), "no duplicate report");
    }
}
