//! TCP transport: the same node workers over loopback sockets.
//!
//! Frame format on the wire: `u32 len (LE) | u32 sender (LE) | bundle
//! bytes`. One outbound connection per (src, dst) pair, established
//! lazily; one acceptor thread per node fans incoming frames into the
//! node's inbound channel.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Sender};
use tpc_common::{NodeId, Op, TxnId};

use crate::node::{
    AppCmd, CommitResult, Inbound, LiveNodeConfig, NodeSummary, NodeWorker, Transport,
};

/// Lazily-connecting TCP sender.
pub struct TcpTransport {
    me: NodeId,
    addrs: Vec<SocketAddr>,
    conns: HashMap<NodeId, TcpStream>,
}

impl TcpTransport {
    fn conn(&mut self, to: NodeId) -> Option<&mut TcpStream> {
        if !self.conns.contains_key(&to) {
            let stream = TcpStream::connect(self.addrs[to.index()]).ok()?;
            stream.set_nodelay(true).ok();
            self.conns.insert(to, stream);
        }
        self.conns.get_mut(&to)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, bytes: Vec<u8>) {
        let me = self.me;
        if let Some(stream) = self.conn(to) {
            let mut frame = Vec::with_capacity(8 + bytes.len());
            frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            frame.extend_from_slice(&me.0.to_le_bytes());
            frame.extend_from_slice(&bytes);
            if stream.write_all(&frame).is_err() {
                self.conns.remove(&to);
            }
        }
    }
}

fn acceptor(listener: TcpListener, tx: Sender<Inbound>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        std::thread::spawn(move || reader(stream, tx));
    }
}

fn reader(mut stream: TcpStream, tx: Sender<Inbound>) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let from = NodeId(u32::from_le_bytes(
            header[4..8].try_into().expect("4 bytes"),
        ));
        if len > 64 * 1024 * 1024 {
            return; // absurd frame: drop the connection
        }
        let mut bytes = vec![0u8; len];
        if stream.read_exact(&mut bytes).is_err() {
            return;
        }
        if tx.send(Inbound::Frame { from, bytes }).is_err() {
            return;
        }
    }
}

/// A cluster whose nodes talk TCP over loopback.
pub struct TcpCluster {
    senders: Vec<Sender<Inbound>>,
    handles: Vec<JoinHandle<NodeSummary>>,
    next_seq: Arc<AtomicU64>,
    /// The socket addresses the nodes listen on.
    pub addrs: Vec<SocketAddr>,
}

impl TcpCluster {
    /// Binds loopback listeners, spawns workers, full-mesh partnership.
    pub fn start(configs: Vec<LiveNodeConfig>) -> std::io::Result<Self> {
        let n = configs.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, ((cfg, rx), listener)) in configs
            .into_iter()
            .zip(receivers)
            .zip(listeners)
            .enumerate()
        {
            let node = NodeId(i as u32);
            let tx = senders[i].clone();
            std::thread::Builder::new()
                .name(format!("tpc-acceptor-{i}"))
                .spawn(move || acceptor(listener, tx))
                .expect("spawn acceptor");
            let transport = TcpTransport {
                me: node,
                addrs: addrs.clone(),
                conns: HashMap::new(),
            };
            // Commit trees form from the work actually exchanged; no
            // standing partnership by default (it is directional and
            // tree-shaped — see LiveCluster::start_with_topology).
            let worker = NodeWorker::new(node, cfg, Vec::new(), transport, rx, epoch);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tpc-tcp-node-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn node"),
            );
        }
        Ok(TcpCluster {
            senders,
            handles,
            next_seq: Arc::new(AtomicU64::new(1)),
            addrs,
        })
    }

    /// Begins a transaction rooted at `root`.
    pub fn begin(&self, root: NodeId) -> TcpTxnHandle<'_> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TcpTxnHandle {
            cluster: self,
            txn: TxnId::new(root, seq),
            root,
        }
    }

    /// Reads a committed value from `node`'s store.
    pub fn read(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Read {
                key: key.as_bytes().to_vec(),
                reply: tx,
            }))
            .ok()?;
        rx.recv().ok()?
    }

    /// Stops every node.
    pub fn shutdown(self) -> Vec<NodeSummary> {
        let mut out = Vec::new();
        for tx in &self.senders {
            let (reply, _rx) = bounded(1);
            let _ = tx.send(Inbound::Shutdown { reply });
        }
        for h in self.handles {
            if let Ok(s) = h.join() {
                out.push(s);
            }
        }
        out
    }
}

/// A transaction in flight on a [`TcpCluster`].
pub struct TcpTxnHandle<'a> {
    cluster: &'a TcpCluster,
    txn: TxnId,
    root: NodeId,
}

impl TcpTxnHandle<'_> {
    /// Sends work to a partner.
    pub fn work(&self, to: NodeId, ops: Vec<Op>) {
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Work {
            txn: self.txn,
            to,
            ops,
        }));
    }

    /// Requests commit, blocking for the outcome.
    pub fn commit(self) -> CommitResult {
        let (tx, rx) = bounded(1);
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Commit {
            txn: self.txn,
            reply: tx,
        }));
        rx.recv().expect("node alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    #[test]
    fn commit_over_real_sockets() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
        ])
        .expect("bind loopback");
        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::put("tcp-a", "1")]);
        t.work(NodeId(2), vec![Op::put("tcp-b", "2")]);
        let r = t.commit();
        assert_eq!(r.outcome, Outcome::Commit);
        assert_eq!(c.read(NodeId(1), "tcp-a"), Some(b"1".to_vec()));
        assert_eq!(c.read(NodeId(2), "tcp-b"), Some(b"2".to_vec()));
        c.shutdown();
    }

    #[test]
    fn several_transactions_over_tcp() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
        ])
        .expect("bind loopback");
        for i in 0..5 {
            let t = c.begin(NodeId(0));
            t.work(NodeId(1), vec![Op::put("seq", &i.to_string())]);
            assert_eq!(t.commit().outcome, Outcome::Commit);
        }
        assert_eq!(c.read(NodeId(1), "seq"), Some(b"4".to_vec()));
        c.shutdown();
    }
}
