//! TCP transport: the same node workers over loopback sockets.
//!
//! Frame format on the wire: `u32 len (LE) | u32 sender (LE) | bundle
//! bytes`. One outbound connection per (src, dst) pair, established
//! lazily; one acceptor thread per node fans incoming frames into the
//! node's inbound channel.
//!
//! Sends are asynchronous and coalesced: [`TcpTransport::send`] enqueues
//! the frame to a per-peer sender thread, which drains everything queued
//! behind it and hands the whole run of frames to the kernel in a single
//! `write_all` (bounded by [`MAX_COALESCE_BYTES`] / frames). Under a
//! concurrent commit workload this collapses the per-message syscall
//! storm — decision and ack frames to the same peer ride one write —
//! while `TCP_NODELAY` stays on, so an isolated frame still leaves
//! immediately instead of waiting on Nagle. Frame boundaries are carried
//! by the length prefix, never by write/packet boundaries.
//!
//! The transport is hardened for chaos runs: connection and write
//! failures never panic, and backoff sleeps happen on the sender thread,
//! not in the node worker's protocol loop. A failed send reconnects with
//! capped exponential backoff plus seeded jitter, bounded by
//! [`RetryPolicy::max_attempts`]; when retries are exhausted the sender
//! reports [`Inbound::PartnerDown`] to its own node so the engine aborts
//! or re-drives the affected transactions instead of wedging.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use tpc_common::{BufferPool, Error, NodeId, Op, PooledBuf, Result, TxnId};

use crate::cluster::recv_reply;
use crate::fault::{FaultPlan, FaultyWire};
use crate::node::{
    AppCmd, CommitResult, Inbound, LiveNodeConfig, NodeSummary, NodeWorker, Transport,
    TransportHealth,
};
use crate::signal::ClusterSignal;
use crate::workload::{run_closed_loop, WorkloadReport, WorkloadSpec};

/// Cap on bytes coalesced into one `write_all` (keeps a slow peer from
/// accumulating an unbounded batch in memory before the first byte
/// moves).
pub const MAX_COALESCE_BYTES: usize = 256 * 1024;

/// Cap on frames coalesced into one `write_all`.
pub const MAX_COALESCE_FRAMES: u64 = 128;

/// How long TCP cluster-level blocking requests wait before reporting
/// [`Error::Timeout`].
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Reconnect discipline for a [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Connection/write attempts per frame before giving the peer up.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter generator (so a scripted run reproduces).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (1-based; attempt 0 is
    /// immediate): `min(base << (attempt-1), max)`, scaled by a jitter
    /// factor in `[0.5, 1.0]` drawn from `rng` so simultaneous retriers
    /// do not stampede in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        *rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = 0.5 + ((*rng >> 11) as f64 / (1u64 << 53) as f64) / 2.0;
        exp.mul_f64(jitter)
    }
}

/// Counters for the per-peer sender threads of one [`TcpTransport`].
/// `writes < frames` is the coalescing win: each `write_all` covered
/// `frames / writes` frames on average.
#[derive(Debug, Default)]
pub struct TcpSendStats {
    /// Frames handed to the kernel (after coalescing, before any drop).
    pub frames: AtomicU64,
    /// `write_all` calls — syscall batches, each covering ≥1 frame.
    pub writes: AtomicU64,
    /// Total bytes written, including the 8-byte frame headers.
    pub bytes: AtomicU64,
    /// Frames dropped after retry exhaustion (peer unreachable).
    pub dropped: AtomicU64,
    /// Backoff sleeps taken by sender threads (one per failed
    /// connect/write attempt that was retried).
    pub retries: AtomicU64,
    /// Successful re-connects after a previously-established connection
    /// was lost.
    pub reconnects: AtomicU64,
    /// Frames enqueued to sender threads and not yet written or dropped
    /// — the outbound backlog gauge. Grows when a peer link (or the
    /// kernel) is slower than the protocol produces frames.
    pub queued: AtomicU64,
}

/// Asynchronous TCP sender: frames are queued to one sender thread per
/// peer, which coalesces queued runs into single writes and owns all
/// reconnect/backoff waiting.
pub struct TcpTransport {
    me: NodeId,
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    /// The owning node's inbound channel, for failure notifications.
    self_tx: Sender<Inbound>,
    /// Lazily-spawned per-peer outbound queues; dropping the transport
    /// closes them, and each sender thread drains what is already queued
    /// and exits. Queued frames are pooled payloads — the 8-byte wire
    /// header is written by the sender thread straight into its pooled
    /// coalescing batch, so the enqueue path never copies or allocates.
    peers: HashMap<NodeId, Sender<PooledBuf>>,
    stats: Arc<TcpSendStats>,
    /// Shared buffer pool: the node encodes into it, sender threads
    /// recycle payloads and batch buffers back into it, and the node's
    /// reader threads assemble inbound frames from it.
    pool: BufferPool,
}

impl TcpTransport {
    fn new(
        me: NodeId,
        addrs: Vec<SocketAddr>,
        policy: RetryPolicy,
        self_tx: Sender<Inbound>,
        pool: BufferPool,
    ) -> Self {
        TcpTransport {
            me,
            addrs,
            policy,
            self_tx,
            peers: HashMap::new(),
            stats: Arc::new(TcpSendStats::default()),
            pool,
        }
    }

    /// Shared counters for this transport's sender threads.
    pub fn stats(&self) -> Arc<TcpSendStats> {
        Arc::clone(&self.stats)
    }

    fn peer_queue(&mut self, to: NodeId) -> Option<&Sender<PooledBuf>> {
        if !self.peers.contains_key(&to) {
            let addr = *self.addrs.get(to.index())?;
            let (tx, rx) = unbounded::<PooledBuf>();
            let policy = self.policy.clone();
            let self_tx = self.self_tx.clone();
            let stats = Arc::clone(&self.stats);
            let pool = self.pool.clone();
            let me = self.me;
            std::thread::Builder::new()
                .name(format!("tpc-tcp-send-{}-{}", me.0, to.0))
                .spawn(move || peer_sender(me, to, addr, policy, rx, self_tx, stats, pool))
                .ok()?;
            self.peers.insert(to, tx);
        }
        self.peers.get(&to)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, bytes: PooledBuf) {
        if let Some(tx) = self.peer_queue(to) {
            if tx.send(bytes).is_ok() {
                self.stats.queued.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn buffer_pool(&self) -> Option<BufferPool> {
        Some(self.pool.clone())
    }

    fn health(&self) -> TransportHealth {
        TransportHealth {
            send_retries: self.stats.retries.load(Ordering::Relaxed),
            reconnects: self.stats.reconnects.load(Ordering::Relaxed),
            dropped_frames: self.stats.dropped.load(Ordering::Relaxed),
        }
    }

    fn counters(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            (
                "tpc_tcp_send_retries_total",
                "Backoff sleeps taken by TCP sender threads after a failed connect or write.",
                self.stats.retries.load(Ordering::Relaxed),
            ),
            (
                "tpc_tcp_reconnects_total",
                "Successful TCP re-connects after a previously-established connection was lost.",
                self.stats.reconnects.load(Ordering::Relaxed),
            ),
            (
                "tpc_tcp_frames_dropped_total",
                "Frames dropped after TCP retry exhaustion (peer unreachable).",
                self.stats.dropped.load(Ordering::Relaxed),
            ),
        ]
    }

    fn backlog(&self) -> u64 {
        self.stats.queued.load(Ordering::Relaxed)
    }
}

/// Appends one wire frame (`u32 len | u32 sender | payload`) to the
/// coalescing batch. The payload buffer recycles to the pool when the
/// caller drops it.
fn append_frame(batch: &mut Vec<u8>, me: NodeId, payload: &[u8]) {
    batch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    batch.extend_from_slice(&me.0.to_le_bytes());
    batch.extend_from_slice(payload);
}

/// One peer's sender loop: block for a frame, drain the run queued
/// behind it (bounded), write the whole run with one `write_all`,
/// reconnecting with backoff on failure. Exits when the transport side
/// of the queue is dropped — after flushing what was already queued.
///
/// The coalescing batch is itself a pooled buffer: one checkout per
/// `write_all`, recycled when the batch goes out of scope, so the
/// steady-state sender performs zero allocations per frame.
#[allow(clippy::too_many_arguments)]
fn peer_sender(
    me: NodeId,
    to: NodeId,
    addr: SocketAddr,
    policy: RetryPolicy,
    rx: Receiver<PooledBuf>,
    self_tx: Sender<Inbound>,
    stats: Arc<TcpSendStats>,
    pool: BufferPool,
) {
    let mut rng = policy
        .seed
        .wrapping_add(u64::from(me.0) << 8)
        .wrapping_add(u64::from(to.0))
        | 1;
    let mut conn: Option<TcpStream> = None;
    // Set while the peer is reported unreachable; cleared by the next
    // successful connect so a recovered-then-failed peer is re-reported.
    let mut reported_down = false;
    // A connection was established at some point: a later successful
    // connect counts as a reconnect.
    let mut connected_once = false;
    'frames: loop {
        let Ok(first) = rx.recv() else { return };
        let mut batch = pool.checkout();
        append_frame(&mut batch, me, &first);
        drop(first); // payload recycles while we keep draining
        let mut frames = 1u64;
        while batch.len() < MAX_COALESCE_BYTES && frames < MAX_COALESCE_FRAMES {
            match rx.try_recv() {
                Ok(f) => {
                    append_frame(&mut batch, me, &f);
                    frames += 1;
                }
                Err(_) => break,
            }
        }
        // Dequeued (written or dropped below, either way no longer
        // queued): the backlog gauge shrinks as soon as the batch forms.
        let dec = frames.min(stats.queued.load(Ordering::Relaxed));
        stats.queued.fetch_sub(dec, Ordering::Relaxed);
        let mut attempt = 0;
        loop {
            if conn.is_none() {
                conn = TcpStream::connect(addr).ok();
                if let Some(stream) = conn.as_ref() {
                    stream.set_nodelay(true).ok();
                    reported_down = false;
                    if connected_once {
                        stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    connected_once = true;
                }
            }
            if let Some(stream) = conn.as_mut() {
                if stream.write_all(&batch).is_ok() {
                    stats.frames.fetch_add(frames, Ordering::Relaxed);
                    stats.writes.fetch_add(1, Ordering::Relaxed);
                    stats.bytes.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    continue 'frames;
                }
                conn = None;
            }
            attempt += 1;
            if attempt >= policy.max_attempts {
                // Retries exhausted: drop the batch and tell our own
                // engine so it can abort unvoted work and lean on timers
                // for the rest, instead of silently losing frames.
                stats.dropped.fetch_add(frames, Ordering::Relaxed);
                if !reported_down {
                    reported_down = true;
                    let _ = self_tx.send(Inbound::PartnerDown { peer: to });
                }
                continue 'frames;
            }
            stats.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(policy.backoff(attempt, &mut rng));
        }
    }
}

fn acceptor(listener: TcpListener, tx: Sender<Inbound>, pool: BufferPool) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        let pool = pool.clone();
        if std::thread::Builder::new()
            .name("tpc-tcp-reader".into())
            .spawn(move || reader(stream, tx, pool))
            .is_err()
        {
            // Could not spawn a reader: drop the connection; the peer
            // will reconnect and retry.
            continue;
        }
    }
}

fn reader(mut stream: TcpStream, tx: Sender<Inbound>, pool: BufferPool) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // peer closed or died: reader ends quietly
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let from = NodeId(u32::from_le_bytes([
            header[4], header[5], header[6], header[7],
        ]));
        if len > 64 * 1024 * 1024 {
            return; // absurd frame: drop the connection
        }
        // Pooled frame assembly: the worker drops the buffer after
        // decoding and the capacity comes back here for the next frame.
        let mut bytes = pool.checkout();
        bytes.resize(len, 0);
        if stream.read_exact(&mut bytes).is_err() {
            return;
        }
        if tx.send(Inbound::Frame { from, bytes }).is_err() {
            return;
        }
    }
}

/// A cluster whose nodes talk TCP over loopback.
pub struct TcpCluster {
    senders: Vec<Sender<Inbound>>,
    receivers: Vec<Receiver<Inbound>>,
    handles: Vec<Option<JoinHandle<NodeSummary>>>,
    configs: Vec<LiveNodeConfig>,
    next_seq: Arc<AtomicU64>,
    policy: RetryPolicy,
    epoch: Instant,
    reply_timeout: Duration,
    signal: Arc<ClusterSignal>,
    /// One buffer pool per node, shared by its transport (outbound
    /// encode + sender batches) and its acceptor's readers (inbound
    /// frame assembly). A restart reuses the node's pool so warmed
    /// capacity survives the crash.
    pools: Vec<BufferPool>,
    /// The socket addresses the nodes listen on.
    pub addrs: Vec<SocketAddr>,
}

impl TcpCluster {
    /// Binds loopback listeners, spawns workers, full-mesh partnership.
    pub fn start(configs: Vec<LiveNodeConfig>) -> std::io::Result<Self> {
        let faults = vec![None; configs.len()];
        Self::start_with_faults(configs, faults, RetryPolicy::default())
    }

    /// Starts with per-node outbound fault plans (the [`FaultyWire`]
    /// wraps the TCP transport itself, demonstrating injection below the
    /// socket seam) and an explicit reconnect policy.
    pub fn start_with_faults(
        configs: Vec<LiveNodeConfig>,
        faults: Vec<Option<FaultPlan>>,
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        assert_eq!(configs.len(), faults.len(), "one fault slot per node");
        let n = configs.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut cluster = TcpCluster {
            senders,
            receivers,
            handles: (0..n).map(|_| None).collect(),
            configs,
            next_seq: Arc::new(AtomicU64::new(1)),
            policy,
            epoch,
            reply_timeout: DEFAULT_REPLY_TIMEOUT,
            signal: Arc::new(ClusterSignal::new()),
            pools: (0..n).map(|_| BufferPool::new()).collect(),
            addrs,
        };
        for (i, listener) in listeners.into_iter().enumerate() {
            let node = NodeId(i as u32);
            let tx = cluster.senders[i].clone();
            let pool = cluster.pools[i].clone();
            std::thread::Builder::new()
                .name(format!("tpc-acceptor-{i}"))
                .spawn(move || acceptor(listener, tx, pool))?;
            let transport = cluster.make_transport(node, faults[i].clone());
            // Commit trees form from the work actually exchanged; no
            // standing partnership by default (it is directional and
            // tree-shaped — see LiveCluster::start_with_topology).
            let worker = NodeWorker::new(
                node,
                cluster.configs[i].clone(),
                Vec::new(),
                transport,
                cluster.receivers[i].clone(),
                epoch,
                Arc::clone(&cluster.signal),
            );
            cluster.handles[i] = Some(spawn_tcp_worker(i, worker, Arc::clone(&cluster.signal))?);
        }
        Ok(cluster)
    }

    /// Replaces the reply deadline used by blocking requests.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    fn make_transport(&self, node: NodeId, plan: Option<FaultPlan>) -> Box<dyn Transport> {
        let base = TcpTransport::new(
            node,
            self.addrs.clone(),
            self.policy.clone(),
            self.senders[node.index()].clone(),
            self.pools[node.index()].clone(),
        );
        match plan {
            Some(plan) => Box::new(FaultyWire::new(base, plan)),
            None => Box::new(base),
        }
    }

    /// Kills `node`'s worker mid-protocol (its listener stays bound —
    /// the model is a crashed transaction manager whose endpoint
    /// reappears on restart, so peer frames sent meanwhile queue and are
    /// discarded at restart like packets to a dead process). Partners are
    /// notified so they abort or re-drive.
    pub fn kill(&mut self, node: NodeId) -> Result<NodeSummary> {
        let handle = self.handles[node.index()]
            .take()
            .ok_or(Error::NodeDown(node))?;
        let _ = self.senders[node.index()].send(Inbound::Kill);
        let summary = handle
            .join()
            .map_err(|_| Error::Transport(format!("worker {node} panicked")))?;
        for (i, tx) in self.senders.iter().enumerate() {
            if i != node.index() && self.handles[i].is_some() {
                let _ = tx.send(Inbound::PartnerDown { peer: node });
            }
        }
        Ok(summary)
    }

    /// Waits for a node armed with
    /// [`kill_after_frames`](LiveNodeConfig::kill_after_frames) to crash
    /// itself, then notifies its partners. Fails with [`Error::Timeout`]
    /// if the node is still alive after `timeout`.
    pub fn await_death(&mut self, node: NodeId, timeout: Duration) -> Result<NodeSummary> {
        if self.handles[node.index()].is_none() {
            return Err(Error::NodeDown(node));
        }
        let finished = self.signal.wait_for(timeout, || {
            self.handles[node.index()]
                .as_ref()
                .is_some_and(|h| h.is_finished())
                .then_some(())
        });
        if finished.is_none() {
            return Err(Error::Timeout(format!(
                "{node} still alive after {timeout:?}"
            )));
        }
        let handle = self.handles[node.index()].take().expect("checked above");
        let summary = handle
            .join()
            .map_err(|_| Error::Transport(format!("worker {node} panicked")))?;
        for (i, tx) in self.senders.iter().enumerate() {
            if i != node.index() && self.handles[i].is_some() {
                let _ = tx.send(Inbound::PartnerDown { peer: node });
            }
        }
        Ok(summary)
    }

    /// Restarts a killed node from its durable file WAL; recovery
    /// messages go out over real sockets.
    pub fn restart(&mut self, node: NodeId) -> Result<()> {
        if self.handles[node.index()].is_some() {
            return Err(Error::InvalidState(format!("{node} is already running")));
        }
        while self.receivers[node.index()].try_recv().is_ok() {}
        let transport = self.make_transport(node, None);
        let worker = NodeWorker::restart(
            node,
            self.configs[node.index()].clone(),
            Vec::new(),
            transport,
            self.receivers[node.index()].clone(),
            self.epoch,
            Arc::clone(&self.signal),
        )?;
        self.handles[node.index()] = Some(
            spawn_tcp_worker(node.index(), worker, Arc::clone(&self.signal)).map_err(Error::Io)?,
        );
        Ok(())
    }

    /// Begins a transaction rooted at `root`.
    pub fn begin(&self, root: NodeId) -> TcpTxnHandle<'_> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TcpTxnHandle {
            cluster: self,
            txn: TxnId::new(root, seq),
            root,
        }
    }

    /// Reads a committed value from `node`'s store.
    pub fn read(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Read {
                key: key.as_bytes().to_vec(),
                reply: tx,
            }))
            .ok()?;
        recv_reply(&rx, node, self.reply_timeout).ok()?
    }

    /// Polls `node`'s store until `key` holds a value or `timeout`
    /// elapses — see [`crate::LiveCluster::read_eventually`] for why
    /// cross-node visibility needs a deadline.
    pub fn read_eventually(&self, node: NodeId, key: &str, timeout: Duration) -> Option<Vec<u8>> {
        self.signal.wait_for(timeout, || self.read(node, key))
    }

    /// Waits until every live node reports zero active transactions, or
    /// `timeout` passes. Returns `true` on quiescence.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.signal
            .wait_for(timeout, || {
                let busy = (0..self.handles.len()).any(|i| {
                    self.handles[i].is_some()
                        && self
                            .summary(NodeId(i as u32))
                            .is_none_or(|s| s.active_txns > 0)
                });
                (!busy).then_some(())
            })
            .is_some()
    }

    /// Drives a closed-loop concurrent workload over real sockets — the
    /// TCP twin of [`crate::LiveCluster::run_workload`].
    pub fn run_workload(&self, spec: &WorkloadSpec) -> WorkloadReport {
        assert!(self.len() >= 2, "workload needs a root and a server node");
        let server = NodeId((self.len() - 1) as u32);
        let roots = self.len() - 1;
        run_closed_loop(spec.concurrency, spec.txns, |slot, i| {
            let root = NodeId((slot % roots) as u32);
            let t = self.begin(root);
            let key = format!("{}-{slot}-{i}", spec.key_prefix);
            t.work(server, vec![Op::put(&key, &i.to_string())]);
            t.commit_async().wait_with(spec.reply_timeout)
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Fetches a node's live summary.
    pub fn summary(&self, node: NodeId) -> Option<NodeSummary> {
        self.handles[node.index()].as_ref()?;
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Summary { reply: tx }))
            .ok()?;
        recv_reply(&rx, node, self.reply_timeout).ok()
    }

    /// Renders the Prometheus text exposition for every live node — the
    /// TCP twin of [`crate::LiveCluster::prometheus_dump`].
    pub fn prometheus_dump(&self) -> String {
        crate::obs_export::prometheus_text(&self.live_summaries())
    }

    /// Renders a chrome-trace JSON of one transaction's phase spans
    /// across all live nodes (requires
    /// [`LiveNodeConfig::with_tracing`]).
    pub fn chrome_trace(&self, txn: TxnId) -> String {
        crate::obs_export::chrome_trace_text(&self.live_summaries(), txn)
    }

    fn live_summaries(&self) -> Vec<NodeSummary> {
        (0..self.len())
            .filter_map(|i| self.summary(NodeId(i as u32)))
            .collect()
    }

    /// Serves the cluster observability endpoints over HTTP at `addr`
    /// (use `"127.0.0.1:0"` for an ephemeral port) — the TCP twin of
    /// [`crate::LiveCluster::serve_metrics`]: `/metrics`, `/healthz`
    /// (503 once any node's WAL degrades), the windowed `/timeline`
    /// JSON and the `/debug/flight` recorder dump. Each request
    /// collects fresh summaries from every node that answers within a
    /// bounded wait, so a killed node degrades the response instead of
    /// hanging it.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<crate::http::MetricsServer> {
        let senders = self.senders.clone();
        let timeout = self.reply_timeout.min(Duration::from_secs(2));
        crate::http::MetricsServer::serve_routes(addr, move |path| {
            let summaries: Vec<NodeSummary> = senders
                .iter()
                .enumerate()
                .filter_map(|(i, tx)| {
                    let (reply, rx) = bounded(1);
                    tx.send(Inbound::App(AppCmd::Summary { reply })).ok()?;
                    recv_reply(&rx, NodeId(i as u32), timeout).ok()
                })
                .collect();
            crate::obs_export::route(&summaries, path)
        })
    }

    /// Stops every live node.
    pub fn shutdown(self) -> Vec<NodeSummary> {
        let mut out = Vec::new();
        for (i, tx) in self.senders.iter().enumerate() {
            if self.handles[i].is_some() {
                let (reply, _rx) = bounded(1);
                let _ = tx.send(Inbound::Shutdown { reply });
            }
        }
        for h in self.handles.into_iter().flatten() {
            if let Ok(s) = h.join() {
                out.push(s);
            }
        }
        out
    }
}

fn spawn_tcp_worker<T: Transport>(
    index: usize,
    worker: NodeWorker<T>,
    signal: Arc<ClusterSignal>,
) -> std::io::Result<JoinHandle<NodeSummary>> {
    std::thread::Builder::new()
        .name(format!("tpc-tcp-node-{index}"))
        .spawn(move || {
            let summary = worker.run();
            // Final bump so await_death / quiesce observe the exit.
            signal.bump();
            summary
        })
}

/// A transaction in flight on a [`TcpCluster`].
pub struct TcpTxnHandle<'a> {
    cluster: &'a TcpCluster,
    txn: TxnId,
    root: NodeId,
}

impl TcpTxnHandle<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Sends work to a partner.
    pub fn work(&self, to: NodeId, ops: Vec<Op>) {
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Work {
            txn: self.txn,
            to,
            ops,
        }));
    }

    /// Requests commit, blocking for the outcome; typed errors instead
    /// of hanging on a dead root.
    pub fn commit(self) -> Result<CommitResult> {
        let timeout = self.cluster.reply_timeout;
        self.commit_async().wait_with(timeout)
    }

    /// Requests commit and returns a waiter, releasing the cluster
    /// borrow so the caller can kill/restart nodes meanwhile.
    pub fn commit_async(self) -> TcpCommitWait {
        let (tx, rx) = bounded(1);
        let _ = self.cluster.senders[self.root.index()].send(Inbound::App(AppCmd::Commit {
            txn: self.txn,
            reply: tx,
        }));
        TcpCommitWait {
            rx,
            node: self.root,
        }
    }
}

/// An in-flight commit on a [`TcpCluster`].
pub struct TcpCommitWait {
    rx: Receiver<CommitResult>,
    node: NodeId,
}

impl TcpCommitWait {
    /// Blocks until the outcome arrives or `timeout` passes.
    pub fn wait_with(self, timeout: Duration) -> Result<CommitResult> {
        recv_reply(&self.rx, self.node, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    #[test]
    fn commit_over_real_sockets() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort),
        ])
        .expect("bind loopback");
        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::put("tcp-a", "1")]);
        t.work(NodeId(2), vec![Op::put("tcp-b", "2")]);
        let r = t.commit().expect("root alive");
        assert_eq!(r.outcome, Outcome::Commit);
        let wait = Duration::from_secs(5);
        assert_eq!(
            c.read_eventually(NodeId(1), "tcp-a", wait),
            Some(b"1".to_vec())
        );
        assert_eq!(
            c.read_eventually(NodeId(2), "tcp-b", wait),
            Some(b"2".to_vec())
        );
        c.shutdown();
    }

    #[test]
    fn several_transactions_over_tcp() {
        let c = TcpCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
            LiveNodeConfig::new(ProtocolKind::PresumedNothing),
        ])
        .expect("bind loopback");
        for i in 0..5 {
            let t = c.begin(NodeId(0));
            t.work(NodeId(1), vec![Op::put("seq", &i.to_string())]);
            assert_eq!(t.commit().expect("root alive").outcome, Outcome::Commit);
        }
        // "seq" is rewritten by each txn: the root's outcome reply races
        // the decision frame to the subordinate, so wait on the cluster
        // progress signal (no sleep-polling) until the last write lands.
        let deadline = Duration::from_secs(5);
        let v = c
            .signal
            .wait_for(deadline, || c.read(NodeId(1), "seq").filter(|v| v == b"4"));
        assert_eq!(v, Some(b"4".to_vec()), "expected seq=4 at the subordinate");
        c.shutdown();
    }

    #[test]
    fn backoff_grows_and_caps_with_jitter_bounds() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            seed: 7,
        };
        let mut rng = 99u64;
        let mut last = Duration::ZERO;
        for attempt in 1..6 {
            let d = policy.backoff(attempt, &mut rng);
            let raw = policy
                .base_delay
                .saturating_mul(1 << (attempt - 1))
                .min(policy.max_delay);
            assert!(
                d >= raw.mul_f64(0.5) && d <= raw,
                "jitter within [0.5, 1.0]"
            );
            assert!(d >= last.mul_f64(0.25), "roughly monotone under jitter");
            last = d;
        }
        // Capped: attempt 5 raw backoff is 160ms, clamped to 40ms.
        let d = policy.backoff(5, &mut rng);
        assert!(d <= Duration::from_millis(40));
    }

    #[test]
    fn unreachable_peer_reports_partner_down_after_bounded_retries() {
        // A listener we bind then drop: connecting to it fails fast.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (self_tx, self_rx) = unbounded();
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            seed: 11,
        };
        let mut t = TcpTransport::new(
            NodeId(0),
            vec![live.local_addr().unwrap(), dead_addr],
            policy,
            self_tx,
            BufferPool::new(),
        );
        let stats = t.stats();
        // Sends are asynchronous now: the report arrives once the sender
        // thread exhausts its retries, so wait on the channel.
        t.send(NodeId(1), vec![1, 2, 3].into());
        match self_rx.recv_timeout(Duration::from_secs(10)) {
            Ok(Inbound::PartnerDown { peer }) => assert_eq!(peer, NodeId(1)),
            other => panic!(
                "expected PartnerDown after retry exhaustion, got ok={:?}",
                other.is_ok()
            ),
        }
        assert!(stats.dropped.load(Ordering::Relaxed) >= 1);
        assert!(t.health().dropped_frames >= 1, "health mirrors the drop");
        // Reported once, not per frame.
        t.send(NodeId(1), vec![4, 5, 6].into());
        assert!(
            self_rx.recv_timeout(Duration::from_millis(300)).is_err(),
            "no duplicate report"
        );
    }

    /// Collects parsed frames from one accepted connection.
    fn collect_frames(listener: TcpListener) -> Receiver<Inbound> {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                reader(stream, tx, BufferPool::new());
            }
        });
        rx
    }

    #[test]
    fn frame_boundaries_survive_coalescing() {
        // Rapid-fire sends queue behind the sender thread's first
        // connect/write, so later frames are coalesced into shared
        // write_all calls. Every frame must still arrive intact, in
        // order: boundaries live in the length prefix, not in write
        // boundaries.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames_rx = collect_frames(listener);
        let (self_tx, _self_rx) = unbounded();
        let pool = BufferPool::new();
        let mut t = TcpTransport::new(
            NodeId(3),
            vec![addr],
            RetryPolicy::default(),
            self_tx,
            pool.clone(),
        );
        let stats = t.stats();

        const N: usize = 2000;
        for i in 0..N {
            // Varying lengths so a misplaced boundary corrupts a parse.
            let body = format!("frame-{i}-{}", "x".repeat(i % 97));
            let mut buf = pool.checkout();
            buf.extend_from_slice(body.as_bytes());
            t.send(NodeId(0), buf);
        }
        for i in 0..N {
            match frames_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Inbound::Frame { from, bytes }) => {
                    assert_eq!(from, NodeId(3));
                    let expect = format!("frame-{i}-{}", "x".repeat(i % 97));
                    assert_eq!(*bytes, expect.into_bytes(), "frame {i} corrupted");
                }
                other => panic!("frame {i} missing, got ok={:?}", other.is_ok()),
            }
        }
        let frames = stats.frames.load(Ordering::Relaxed);
        let writes = stats.writes.load(Ordering::Relaxed);
        assert_eq!(frames, N as u64, "every frame written exactly once");
        assert!(
            writes < frames,
            "sender should coalesce queued frames: {writes} writes for {frames} frames"
        );
        // Payloads and batch buffers recycle: the steady state reuses
        // capacity instead of allocating per frame.
        let ps = pool.stats();
        assert!(ps.hits > 0, "pool must see reuse: {ps:?}");
        assert!(ps.recycled > 0, "dropped buffers must recycle: {ps:?}");
    }

    /// Deterministic LCG so the fuzz shapes reproduce from a seed.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 11
    }

    fn fuzz_body(seed: u64, i: usize) -> Vec<u8> {
        let mut s = seed.wrapping_add(i as u64) | 1;
        // Lengths from 0 to ~4 KiB, heavily varied so any boundary error
        // desynchronizes the parse immediately.
        let len = (lcg(&mut s) % 4096) as usize;
        let mut body = Vec::with_capacity(len + 8);
        body.extend_from_slice(&(i as u64).to_le_bytes());
        while body.len() < len + 8 {
            body.push((lcg(&mut s) & 0xFF) as u8);
        }
        body
    }

    #[test]
    fn random_frame_sizes_survive_coalescing() {
        // The PR 3 regression test with fixed shapes, generalized: seeded
        // random frame lengths (including empty bodies) through the real
        // sender thread. Coalescing must never move a frame boundary.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames_rx = collect_frames(listener);
        let (self_tx, _self_rx) = unbounded();
        let mut t = TcpTransport::new(
            NodeId(5),
            vec![addr],
            RetryPolicy::default(),
            self_tx,
            BufferPool::new(),
        );

        const SEED: u64 = 0xF00D_CAFE;
        const N: usize = 1500;
        for i in 0..N {
            t.send(NodeId(0), fuzz_body(SEED, i).into());
        }
        for i in 0..N {
            match frames_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Inbound::Frame { from, bytes }) => {
                    assert_eq!(from, NodeId(5));
                    assert_eq!(*bytes, fuzz_body(SEED, i), "frame {i} corrupted");
                }
                other => panic!("frame {i} missing, got ok={:?}", other.is_ok()),
            }
        }
    }

    #[test]
    fn partial_writes_never_split_frame_boundaries() {
        // The receiving half under adversarial segmentation: a writer
        // that chops the byte stream into random small chunks (flushing
        // between them), so headers and bodies straddle read boundaries
        // arbitrarily. The reader must reassemble every frame exactly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames_rx = collect_frames(listener);

        const SEED: u64 = 0xDEAD_BEEF;
        const N: usize = 400;
        let writer = std::thread::spawn(move || {
            let mut wire = Vec::new();
            for i in 0..N {
                let body = fuzz_body(SEED, i);
                wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
                wire.extend_from_slice(&9u32.to_le_bytes()); // sender id
                wire.extend_from_slice(&body);
            }
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut s = SEED | 1;
            let mut off = 0;
            while off < wire.len() {
                // Forced partial writes: 1..=97 bytes at a time, so every
                // frame is split across many TCP segments.
                let chunk = (1 + lcg(&mut s) % 97) as usize;
                let end = (off + chunk).min(wire.len());
                stream.write_all(&wire[off..end]).expect("chunk write");
                stream.flush().ok();
                off = end;
            }
        });

        for i in 0..N {
            match frames_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Inbound::Frame { from, bytes }) => {
                    assert_eq!(from, NodeId(9));
                    assert_eq!(*bytes, fuzz_body(SEED, i), "frame {i} corrupted");
                }
                other => panic!("frame {i} missing, got ok={:?}", other.is_ok()),
            }
        }
        writer.join().expect("writer thread");
    }
}
