//! Cluster-level observability export: turns a set of [`NodeSummary`]s
//! into the Prometheus text exposition or a chrome-trace JSON, shared by
//! the channel and TCP clusters.

use tpc_common::TxnId;
use tpc_obs::{render_chrome_trace, render_prometheus, NodeExport, ObsSnapshot, Span};

use crate::node::NodeSummary;

/// Builds the Prometheus exposition for a set of node summaries: driver
/// and WAL counters for every node, plus per-phase latency histograms for
/// nodes that ran with observability enabled.
pub fn prometheus_text(summaries: &[NodeSummary]) -> String {
    let exports: Vec<NodeExport> = summaries
        .iter()
        .map(|s| {
            let recovery = s.recovery.unwrap_or_default();
            let mut counters = vec![
                (
                    "tpc_flows_sent_total",
                    "Protocol frames sent (paper flows, including Work)",
                    s.driver.flows_sent,
                ),
                (
                    "tpc_log_writes_total",
                    "TM log appends",
                    s.driver.log_writes,
                ),
                (
                    "tpc_forced_writes_total",
                    "TM log appends that requested a force",
                    s.driver.forced_writes,
                ),
                (
                    "tpc_physical_flushes_total",
                    "Physical device flushes on the TM log",
                    s.log.physical_flushes,
                ),
                (
                    "tpc_outcomes_total",
                    "Transaction outcomes delivered to the application",
                    s.driver.outcomes,
                ),
                (
                    "tpc_damaged_outcomes_total",
                    "Outcomes carrying heuristic damage",
                    s.driver.damaged_outcomes,
                ),
                (
                    "tpc_group_requests_total",
                    "Forced writes submitted to the group committer",
                    s.group.requests,
                ),
                (
                    "tpc_group_flushes_total",
                    "Group-commit batches flushed",
                    s.group.flushes,
                ),
                (
                    "tpc_heuristic_decisions_total",
                    "Heuristic decisions taken at this node while in doubt",
                    s.metrics.heuristic_decisions,
                ),
                (
                    "tpc_heuristic_commit_total",
                    "Heuristic decisions that jumped to commit",
                    s.metrics.heuristic_commits,
                ),
                (
                    "tpc_heuristic_abort_total",
                    "Heuristic decisions that jumped to abort",
                    s.metrics.heuristic_aborts,
                ),
                (
                    "tpc_heuristic_damage_total",
                    "Heuristic decisions observed to conflict with the real outcome",
                    s.metrics.heuristic_damage,
                ),
                (
                    "tpc_heuristic_damage_reported_total",
                    "Damaged nodes reported in acknowledgments received here (whole subtree at a PN root)",
                    s.metrics.damage_reports_received,
                ),
                (
                    "tpc_recovery_queries_answered_total",
                    "Recovery status queries answered for in-doubt peers",
                    s.metrics.recovery_queries_answered,
                ),
                (
                    "tpc_recovery_wal_records_total",
                    "Durable WAL records replayed during restart recovery",
                    recovery.wal_records_scanned,
                ),
                (
                    "tpc_recovery_wal_scan_us_total",
                    "Wall-clock microseconds spent reading the WAL back at restart",
                    recovery.wal_scan_us,
                ),
                (
                    "tpc_recovery_in_doubt_total",
                    "In-doubt (prepared, undecided) transactions found at restart",
                    recovery.in_doubt_recovered,
                ),
                (
                    "tpc_recovery_queries_sent_total",
                    "Status queries sent to coordinators for recovered in-doubt transactions",
                    recovery.queries_sent,
                ),
                (
                    "tpc_recovery_redrives_total",
                    "Decided-but-unacknowledged outcomes re-driven at restart",
                    recovery.redrives,
                ),
                (
                    "tpc_recovery_interrupted_vote_aborts_total",
                    "Transactions aborted at restart because the crash interrupted voting",
                    recovery.interrupted_vote_aborts,
                ),
                (
                    "tpc_recovery_torn_tails_total",
                    "Restarts that found a cleanly torn WAL tail (interrupted append)",
                    recovery.torn_tails,
                ),
                (
                    "tpc_recovery_corruption_before_tail_total",
                    "Restarts that found WAL corruption with valid frames after it",
                    recovery.corruption_before_tail,
                ),
                (
                    "tpc_wal_io_errors_total",
                    "Log I/O operations that failed after exhausting retries",
                    s.wal.io_errors,
                ),
                (
                    "tpc_wal_fsync_retries_total",
                    "Fsync attempts retried after a transient failure",
                    s.wal.fsync_retries,
                ),
                (
                    "tpc_wal_rejected_txns_total",
                    "Transactions rejected because the node degraded to read-only",
                    s.wal.rejected_txns,
                ),
            ];
            counters.extend([
                (
                    "tpc_pool_checkouts_total",
                    "Wire buffers checked out of the node's frame pool",
                    s.pool.checkouts,
                ),
                (
                    "tpc_pool_hits_total",
                    "Pool checkouts served from recycled capacity (no allocation)",
                    s.pool.hits,
                ),
                (
                    "tpc_pool_misses_total",
                    "Pool checkouts that had to allocate a fresh buffer",
                    s.pool.misses,
                ),
                (
                    "tpc_pool_recycled_total",
                    "Wire buffers returned to the pool's free list on drop",
                    s.pool.recycled,
                ),
                (
                    "tpc_pool_discarded_total",
                    "Wire buffers released to the allocator instead of recycled",
                    s.pool.discarded,
                ),
                (
                    "tpc_net_send_retries_total",
                    "Transport send attempts retried with backoff",
                    s.net.send_retries,
                ),
                (
                    "tpc_net_reconnects_total",
                    "Transport connections re-established after a loss",
                    s.net.reconnects,
                ),
                (
                    "tpc_net_frames_dropped_total",
                    "Frames the transport dropped after retry exhaustion",
                    s.net.dropped_frames,
                ),
            ]);
            counters.extend(s.transport.iter().copied());
            let gauges = vec![
                (
                    "tpc_wal_degraded",
                    "1 when the node gave up on log durability and runs read-only",
                    if s.wal.degraded { 1.0 } else { 0.0 },
                ),
                (
                    "tpc_pool_idle",
                    "Wire buffers currently idle in the node's frame pool",
                    s.pool.idle as f64,
                ),
                (
                    "tpc_pool_outstanding_high_water",
                    "Most wire buffers ever checked out at once on this node",
                    s.pool.outstanding_high_water as f64,
                ),
            ];
            NodeExport {
                node: s.node,
                obs: s.obs.clone().unwrap_or_default(),
                counters,
                gauges,
            }
        })
        .collect();
    render_prometheus(&exports)
}

/// Builds a chrome-trace JSON for one transaction from every node's
/// captured spans (nodes must have run with tracing enabled). The result
/// renders in `chrome://tracing` / Perfetto as the root's and each
/// subordinate's phase rows on the shared cluster clock.
pub fn chrome_trace_text(summaries: &[NodeSummary], txn: TxnId) -> String {
    let merged = ObsSnapshot::merged(summaries.iter().filter_map(|s| s.obs.as_ref()));
    let spans: Vec<Span> = merged.txn_spans(txn);
    render_chrome_trace(&spans)
}
