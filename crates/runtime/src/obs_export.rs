//! Cluster-level observability export: turns a set of [`NodeSummary`]s
//! into the Prometheus text exposition, the windowed `/timeline` JSON,
//! the `/debug/flight` recorder dump, the `/healthz` verdict, or a
//! chrome-trace JSON — shared by the channel and TCP clusters.

use std::fmt::Write as _;

use tpc_common::TxnId;
use tpc_locks::LockStats;
use tpc_obs::{
    render_chrome_trace, render_flight_json, render_prometheus, render_timeline_json, NodeExport,
    ObsSnapshot, Span,
};

use crate::http::HttpResponse;
use crate::node::NodeSummary;

/// Cap on per-stripe label cardinality in the Prometheus exposition:
/// the first `MAX_STRIPE_LABELS` stripes are exported individually, the
/// rest aggregate into one `stripe="other"` sample — a node striped 128
/// ways must not mint 128 label values per metric per node.
pub const MAX_STRIPE_LABELS: usize = 16;

/// Rolls a node's per-stripe lock statistics into at most
/// `MAX_STRIPE_LABELS + 1` labelled rows.
fn stripe_rows(stripes: &[LockStats]) -> Vec<(String, LockStats)> {
    let mut rows: Vec<(String, LockStats)> = stripes
        .iter()
        .take(MAX_STRIPE_LABELS)
        .enumerate()
        .map(|(i, s)| (format!("stripe=\"{i}\""), *s))
        .collect();
    if stripes.len() > MAX_STRIPE_LABELS {
        let mut other = LockStats::default();
        for s in &stripes[MAX_STRIPE_LABELS..] {
            other.requests += s.requests;
            other.immediate_grants += s.immediate_grants;
            other.waits += s.waits;
            other.deadlocks += s.deadlocks;
            other.timeouts += s.timeouts;
            other.releases += s.releases;
            other.total_hold_micros += s.total_hold_micros;
            other.max_hold_micros = other.max_hold_micros.max(s.max_hold_micros);
            other.total_wait_micros += s.total_wait_micros;
        }
        rows.push(("stripe=\"other\"".to_string(), other));
    }
    rows
}

/// Builds the Prometheus exposition for a set of node summaries: driver
/// and WAL counters for every node, plus per-phase latency histograms for
/// nodes that ran with observability enabled.
pub fn prometheus_text(summaries: &[NodeSummary]) -> String {
    let exports: Vec<NodeExport> = summaries
        .iter()
        .map(|s| {
            let recovery = s.recovery.unwrap_or_default();
            let mut counters = vec![
                (
                    "tpc_flows_sent_total",
                    "Protocol frames sent (paper flows, including Work)",
                    s.driver.flows_sent,
                ),
                (
                    "tpc_log_writes_total",
                    "TM log appends",
                    s.driver.log_writes,
                ),
                (
                    "tpc_forced_writes_total",
                    "TM log appends that requested a force",
                    s.driver.forced_writes,
                ),
                (
                    "tpc_physical_flushes_total",
                    "Physical device flushes on the TM log",
                    s.log.physical_flushes,
                ),
                (
                    "tpc_outcomes_total",
                    "Transaction outcomes delivered to the application",
                    s.driver.outcomes,
                ),
                (
                    "tpc_damaged_outcomes_total",
                    "Outcomes carrying heuristic damage",
                    s.driver.damaged_outcomes,
                ),
                (
                    "tpc_group_requests_total",
                    "Forced writes submitted to the group committer",
                    s.group.requests,
                ),
                (
                    "tpc_group_flushes_total",
                    "Group-commit batches flushed",
                    s.group.flushes,
                ),
                (
                    "tpc_heuristic_decisions_total",
                    "Heuristic decisions taken at this node while in doubt",
                    s.metrics.heuristic_decisions,
                ),
                (
                    "tpc_heuristic_commit_total",
                    "Heuristic decisions that jumped to commit",
                    s.metrics.heuristic_commits,
                ),
                (
                    "tpc_heuristic_abort_total",
                    "Heuristic decisions that jumped to abort",
                    s.metrics.heuristic_aborts,
                ),
                (
                    "tpc_heuristic_damage_total",
                    "Heuristic decisions observed to conflict with the real outcome",
                    s.metrics.heuristic_damage,
                ),
                (
                    "tpc_heuristic_damage_reported_total",
                    "Damaged nodes reported in acknowledgments received here (whole subtree at a PN root)",
                    s.metrics.damage_reports_received,
                ),
                (
                    "tpc_recovery_queries_answered_total",
                    "Recovery status queries answered for in-doubt peers",
                    s.metrics.recovery_queries_answered,
                ),
                (
                    "tpc_recovery_wal_records_total",
                    "Durable WAL records replayed during restart recovery",
                    recovery.wal_records_scanned,
                ),
                (
                    "tpc_recovery_wal_scan_us_total",
                    "Wall-clock microseconds spent reading the WAL back at restart",
                    recovery.wal_scan_us,
                ),
                (
                    "tpc_recovery_in_doubt_total",
                    "In-doubt (prepared, undecided) transactions found at restart",
                    recovery.in_doubt_recovered,
                ),
                (
                    "tpc_recovery_queries_sent_total",
                    "Status queries sent to coordinators for recovered in-doubt transactions",
                    recovery.queries_sent,
                ),
                (
                    "tpc_recovery_redrives_total",
                    "Decided-but-unacknowledged outcomes re-driven at restart",
                    recovery.redrives,
                ),
                (
                    "tpc_recovery_interrupted_vote_aborts_total",
                    "Transactions aborted at restart because the crash interrupted voting",
                    recovery.interrupted_vote_aborts,
                ),
                (
                    "tpc_recovery_torn_tails_total",
                    "Restarts that found a cleanly torn WAL tail (interrupted append)",
                    recovery.torn_tails,
                ),
                (
                    "tpc_recovery_corruption_before_tail_total",
                    "Restarts that found WAL corruption with valid frames after it",
                    recovery.corruption_before_tail,
                ),
                (
                    "tpc_wal_io_errors_total",
                    "Log I/O operations that failed after exhausting retries",
                    s.wal.io_errors,
                ),
                (
                    "tpc_wal_fsync_retries_total",
                    "Fsync attempts retried after a transient failure",
                    s.wal.fsync_retries,
                ),
                (
                    "tpc_wal_rejected_txns_total",
                    "Transactions rejected because the node degraded to read-only",
                    s.wal.rejected_txns,
                ),
            ];
            counters.extend([
                (
                    "tpc_pool_checkouts_total",
                    "Wire buffers checked out of the node's frame pool",
                    s.pool.checkouts,
                ),
                (
                    "tpc_pool_hits_total",
                    "Pool checkouts served from recycled capacity (no allocation)",
                    s.pool.hits,
                ),
                (
                    "tpc_pool_misses_total",
                    "Pool checkouts that had to allocate a fresh buffer",
                    s.pool.misses,
                ),
                (
                    "tpc_pool_recycled_total",
                    "Wire buffers returned to the pool's free list on drop",
                    s.pool.recycled,
                ),
                (
                    "tpc_pool_discarded_total",
                    "Wire buffers released to the allocator instead of recycled",
                    s.pool.discarded,
                ),
                (
                    "tpc_net_send_retries_total",
                    "Transport send attempts retried with backoff",
                    s.net.send_retries,
                ),
                (
                    "tpc_net_reconnects_total",
                    "Transport connections re-established after a loss",
                    s.net.reconnects,
                ),
                (
                    "tpc_net_frames_dropped_total",
                    "Frames the transport dropped after retry exhaustion",
                    s.net.dropped_frames,
                ),
            ]);
            counters.extend(s.transport.iter().copied());
            let gauges = vec![
                (
                    "tpc_wal_degraded",
                    "1 when the node gave up on log durability and runs read-only",
                    if s.wal.degraded { 1.0 } else { 0.0 },
                ),
                (
                    "tpc_pool_idle",
                    "Wire buffers currently idle in the node's frame pool",
                    s.pool.idle as f64,
                ),
                (
                    "tpc_pool_outstanding_high_water",
                    "Most wire buffers ever checked out at once on this node",
                    s.pool.outstanding_high_water as f64,
                ),
                (
                    "tpc_lock_waiters",
                    "Transactions currently parked in lock wait queues (all stripes)",
                    s.lock_waiters as f64,
                ),
            ];
            let mut labeled = Vec::new();
            for (labels, ls) in stripe_rows(&s.lock_stripes) {
                labeled.push((
                    "tpc_lock_waits_total",
                    "Lock requests that had to queue, by stripe (capped cardinality)",
                    labels.clone(),
                    ls.waits,
                ));
                labeled.push((
                    "tpc_lock_wait_us_total",
                    "Microseconds waiters queued before their grant, by stripe",
                    labels.clone(),
                    ls.total_wait_micros,
                ));
                labeled.push((
                    "tpc_lock_deadlocks_total",
                    "Lock requests refused as deadlock victims, by stripe",
                    labels,
                    ls.deadlocks,
                ));
            }
            NodeExport {
                node: s.node,
                obs: s.obs.clone().unwrap_or_default(),
                counters,
                gauges,
                labeled,
            }
        })
        .collect();
    render_prometheus(&exports)
}

/// Builds the `/timeline` JSON: every node's windowed time series, in
/// node order, `"timeline": null` for nodes that ran without
/// observability. Deterministic for identical snapshots — integer
/// values, fixed key order.
pub fn timeline_json(summaries: &[NodeSummary]) -> String {
    let mut out = String::from("{\"nodes\":[");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"node\":\"{}\",\"timeline\":", s.node);
        match &s.timeline {
            Some(t) => out.push_str(&render_timeline_json(t)),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Builds the `/debug/flight` JSON: every node's flight-recorder ring,
/// oldest event first.
pub fn flight_json(summaries: &[NodeSummary]) -> String {
    let mut out = String::from("{\"nodes\":[");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node\":\"{}\",\"events\":{}}}",
            s.node,
            render_flight_json(&s.flight)
        );
    }
    out.push_str("]}");
    out
}

/// The `/healthz` verdict: `200 ok` while every node's WAL is healthy,
/// `503` with a body listing the degraded / fail-stopped nodes once any
/// node gave up on log durability — so a probe (or a load balancer)
/// sees a dying disk before the first lost transaction.
pub fn healthz(summaries: &[NodeSummary]) -> HttpResponse {
    let mut sick = Vec::new();
    for s in summaries {
        if s.wal.fail_stopped {
            sick.push(format!("{} fail-stopped", s.node));
        } else if s.wal.degraded {
            sick.push(format!("{} degraded (read-only)", s.node));
        }
    }
    if sick.is_empty() {
        HttpResponse::text("ok\n")
    } else {
        HttpResponse::unavailable(format!("unhealthy: {}\n", sick.join(", ")))
    }
}

/// The shared observability router both clusters mount on their
/// [`MetricsServer`](crate::http::MetricsServer): `/metrics`,
/// `/healthz`, `/timeline`, `/debug/flight`.
pub fn route(summaries: &[NodeSummary], path: &str) -> HttpResponse {
    match path {
        "/metrics" => HttpResponse::metrics(prometheus_text(summaries)),
        "/healthz" => healthz(summaries),
        "/timeline" => HttpResponse::json(timeline_json(summaries)),
        "/debug/flight" => HttpResponse::json(flight_json(summaries)),
        _ => HttpResponse::not_found(),
    }
}

/// Builds a chrome-trace JSON for one transaction from every node's
/// captured spans (nodes must have run with tracing enabled). The result
/// renders in `chrome://tracing` / Perfetto as the root's and each
/// subordinate's phase rows on the shared cluster clock.
pub fn chrome_trace_text(summaries: &[NodeSummary], txn: TxnId) -> String {
    let merged = ObsSnapshot::merged(summaries.iter().filter_map(|s| s.obs.as_ref()));
    let spans: Vec<Span> = merged.txn_spans(txn);
    render_chrome_trace(&spans)
}
