//! The in-process live cluster: one thread per node, crossbeam channels
//! as the network, with kill / restart / fault-injection controls for
//! chaos testing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use tpc_common::{Error, NodeId, Op, PooledBuf, Result, TxnId};
use tpc_rm::SharedRm;
use tpc_wal::{LogManager, SharedLog};

use crate::fault::{FaultPlan, FaultStats, FaultyWire};
use crate::node::{
    create_log, lane_of, make_obs, recover_lanes, reopen_log, rm_config, tail_counts, AckSlot,
    AppCmd, CommitResult, Inbound, IoHealth, LaneParts, LiveNodeConfig, LogRole, NodeSummary,
    NodeWorker, Transport,
};
use crate::signal::ClusterSignal;
use crate::workload::{run_closed_loop, run_open_loop, OpenLoopReport, OpenLoopSpec};
use crate::workload::{WorkloadReport, WorkloadSpec};

/// How long cluster-level blocking requests (commit, read, summary) wait
/// for a reply before reporting [`Error::Timeout`] instead of hanging on
/// a dead or wedged node.
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Transport over crossbeam channels: every node holds senders to all
/// peers' lanes.
pub struct ChannelTransport {
    me: NodeId,
    /// `peers[node][lane]` — lane 0 always exists.
    peers: Vec<Vec<Sender<Inbound>>>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: NodeId, bytes: PooledBuf) {
        self.send_to_lane(to, 0, bytes);
    }

    fn send_to_lane(&mut self, to: NodeId, lane: usize, bytes: PooledBuf) {
        if let Some(lanes) = self.peers.get(to.index()) {
            if let Some(tx) = lanes.get(lane).or_else(|| lanes.first()) {
                let _ = tx.send(Inbound::Frame {
                    from: self.me,
                    bytes,
                });
            }
        }
    }
}

/// A running in-process cluster.
pub struct LiveCluster {
    /// `senders[node][lane]` — lane 0 always exists.
    senders: Vec<Vec<Sender<Inbound>>>,
    /// Clones of the workers' inbound receivers, kept so a killed node's
    /// channel survives and a restarted worker can resume reading it
    /// (after the down-window backlog is drained — those frames are the
    /// messages the dead "process" never received).
    receivers: Vec<Vec<Receiver<Inbound>>>,
    /// `None` marks a dead (killed, not yet restarted) worker, indexed
    /// `[node][lane]`.
    handles: Vec<Vec<Option<JoinHandle<NodeSummary>>>>,
    /// Coordinator lanes per node (uniform across the cluster).
    lanes: usize,
    configs: Vec<LiveNodeConfig>,
    downstream: Vec<Vec<NodeId>>,
    fault_stats: Vec<Option<Arc<FaultStats>>>,
    epoch: Instant,
    next_seq: Arc<AtomicU64>,
    reply_timeout: Duration,
    /// Bumped by workers on observable progress; cluster-level waits
    /// block on it instead of sleep-polling.
    signal: Arc<ClusterSignal>,
}

impl LiveCluster {
    /// Starts one thread per config with no standing partners: commit
    /// trees are built purely from the work actually exchanged. Standing
    /// partnership (the LU 6.2 conversation structure that the leave-out
    /// optimization exploits) is directional and tree-shaped — declare it
    /// explicitly with [`LiveCluster::start_with_topology`].
    pub fn start(configs: Vec<LiveNodeConfig>) -> Self {
        Self::start_with_topology(configs, &[])
    }

    /// Starts the cluster with explicit partner edges `(parent, child)`.
    pub fn start_with_topology(configs: Vec<LiveNodeConfig>, partners: &[(usize, usize)]) -> Self {
        let faults = vec![None; configs.len()];
        Self::start_with_faults(configs, partners, faults)
    }

    /// Starts the cluster with a per-node outbound [`FaultPlan`] (`None`
    /// for a clean wire). Fault plans apply to the node's original
    /// incarnation only; a restarted node comes back with a clean wire so
    /// recovery converges.
    pub fn start_with_faults(
        configs: Vec<LiveNodeConfig>,
        partners: &[(usize, usize)],
        faults: Vec<Option<FaultPlan>>,
    ) -> Self {
        assert_eq!(configs.len(), faults.len(), "one fault slot per node");
        let n = configs.len();
        let lanes = configs.first().map(|c| c.lanes.max(1)).unwrap_or(1);
        assert!(
            configs.iter().all(|c| c.lanes.max(1) == lanes),
            "lane count must be uniform across the cluster (txn→lane \
             routing is a pure function every node computes)"
        );
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let mut txs = Vec::with_capacity(lanes);
            let mut rxs = Vec::with_capacity(lanes);
            for _ in 0..lanes {
                let (tx, rx) = unbounded();
                txs.push(tx);
                rxs.push(rx);
            }
            senders.push(txs);
            receivers.push(rxs);
        }
        let downstream: Vec<Vec<NodeId>> = (0..n)
            .map(|i| {
                partners
                    .iter()
                    .filter(|(a, _)| *a == i)
                    .map(|(_, b)| NodeId(*b as u32))
                    .collect()
            })
            .collect();
        let epoch = Instant::now();
        let mut cluster = LiveCluster {
            senders,
            receivers,
            handles: (0..n).map(|_| (0..lanes).map(|_| None).collect()).collect(),
            lanes,
            configs,
            downstream,
            fault_stats: vec![None; n],
            epoch,
            next_seq: Arc::new(AtomicU64::new(1)),
            reply_timeout: DEFAULT_REPLY_TIMEOUT,
            signal: Arc::new(ClusterSignal::new()),
        };
        for (i, plan) in faults.iter().enumerate() {
            let node = NodeId(i as u32);
            if lanes == 1 {
                let transport = cluster.make_transport(node, plan.clone());
                let worker = NodeWorker::new(
                    node,
                    cluster.configs[i].clone(),
                    cluster.downstream[i].clone(),
                    transport,
                    cluster.receivers[i][0].clone(),
                    epoch,
                    Arc::clone(&cluster.signal),
                );
                cluster.handles[i][0] =
                    Some(spawn_worker(i, 0, 1, worker, Arc::clone(&cluster.signal)));
                continue;
            }
            // Multi-lane: every lane shares one RM, one durable log
            // (SharedLog clones) and one obs recorder; each lane runs
            // its own driver thread on its own inbound channel.
            let cfg = cluster.configs[i].clone();
            let rm = Arc::new(SharedRm::new(rm_config(&cfg), cfg.effective_stripes()));
            // Storage faults wrap the base device *inside* the SharedLog,
            // so every lane's appends run through one fault stream,
            // exactly as they share one physical disk.
            let shared_tm = SharedLog::new(create_log(&cfg, node, LogRole::Tm));
            let shared_rm_log: Option<SharedLog> = if cfg.opts.shared_log {
                None
            } else {
                Some(SharedLog::new(create_log(&cfg, node, LogRole::Rm)))
            };
            let obs = make_obs(&cfg);
            let health = Arc::new(IoHealth::default());
            let ack_slot = Arc::new(AckSlot::default());
            for lane in 0..lanes {
                let transport = cluster.make_transport(node, plan.clone());
                let parts = LaneParts {
                    rm: Arc::clone(&rm),
                    log: Box::new(shared_tm.clone()),
                    rm_log: shared_rm_log
                        .as_ref()
                        .map(|l| Box::new(l.clone()) as Box<dyn LogManager + Send>),
                    obs: obs.clone(),
                    lane,
                    lane_peers: cluster.senders[i].clone(),
                    health: Arc::clone(&health),
                    ack_slot: Some(Arc::clone(&ack_slot)),
                };
                let worker = NodeWorker::new_with_parts(
                    node,
                    cfg.clone(),
                    cluster.downstream[i].clone(),
                    transport,
                    cluster.receivers[i][lane].clone(),
                    epoch,
                    Arc::clone(&cluster.signal),
                    parts,
                );
                cluster.handles[i][lane] = Some(spawn_worker(
                    i,
                    lane,
                    lanes,
                    worker,
                    Arc::clone(&cluster.signal),
                ));
            }
        }
        cluster
    }

    /// Replaces the reply deadline used by blocking requests.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    fn make_transport(&mut self, node: NodeId, plan: Option<FaultPlan>) -> Box<dyn Transport> {
        let base = ChannelTransport {
            me: node,
            peers: self.senders.clone(),
        };
        match plan {
            Some(plan) => {
                let wire = FaultyWire::new(base, plan);
                self.fault_stats[node.index()] = Some(wire.stats());
                Box::new(wire)
            }
            None => Box::new(base),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Coordinator lanes per node.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// True while any of `node`'s lane workers is running.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.handles[node.index()]
            .iter()
            .any(|h| h.as_ref().is_some_and(|h| !h.is_finished()))
    }

    /// Fault counters for `node`'s outbound wire, when it has one.
    pub fn fault_stats(&self, node: NodeId) -> Option<&FaultStats> {
        self.fault_stats[node.index()].as_deref()
    }

    /// Kills `node` mid-protocol: every lane worker crashes (volatile
    /// state and buffered log tails lost, in-flight replies dropped) and
    /// the node's partners are told the sessions failed, exactly as the
    /// simulator's crash event does. A multi-lane node dies as one
    /// process — its lanes share the RM and log buffers, so they go down
    /// together. Returns the dying node's last summary (lanes folded).
    pub fn kill(&mut self, node: NodeId) -> Result<NodeSummary> {
        if !self.handles[node.index()].iter().any(|h| h.is_some()) {
            return Err(Error::NodeDown(node));
        }
        for lane in 0..self.lanes {
            if self.handles[node.index()][lane].is_some() {
                let _ = self.senders[node.index()][lane].send(Inbound::Kill);
            }
        }
        let summary = self.join_node(node)?;
        self.broadcast_partner_down(node);
        Ok(summary)
    }

    /// Joins every live lane worker of `node` and folds their summaries
    /// into the node-level rollup.
    fn join_node(&mut self, node: NodeId) -> Result<NodeSummary> {
        let mut merged: Option<NodeSummary> = None;
        for slot in self.handles[node.index()].iter_mut() {
            let Some(handle) = slot.take() else { continue };
            let s = handle
                .join()
                .map_err(|_| Error::Transport(format!("worker {node} panicked")))?;
            match merged.as_mut() {
                Some(base) => base.absorb_lane(s),
                None => merged = Some(s),
            }
        }
        merged.ok_or(Error::NodeDown(node))
    }

    /// Waits for a node armed with
    /// [`kill_after_frames`](LiveNodeConfig::kill_after_frames) (on any
    /// lane) or driven into fail-stop by a storage fault to crash
    /// itself, then notifies its partners. On a multi-lane node the
    /// first lane to die takes the rest of the "process" with it: the
    /// lanes share volatile state, so the survivors are killed and
    /// joined too. Fails with [`Error::Timeout`] if every lane is still
    /// alive after `timeout`.
    pub fn await_death(&mut self, node: NodeId, timeout: Duration) -> Result<NodeSummary> {
        if !self.handles[node.index()].iter().any(|h| h.is_some()) {
            return Err(Error::NodeDown(node));
        }
        let finished = self.signal.wait_for(timeout, || {
            self.handles[node.index()]
                .iter()
                .any(|h| h.as_ref().is_some_and(|h| h.is_finished()))
                .then_some(())
        });
        if finished.is_none() {
            return Err(Error::Timeout(format!(
                "{node} still alive after {timeout:?}"
            )));
        }
        // The remaining lanes die with the process (their volatile state
        // is shared with the crashed lane); Kill makes it explicit.
        for lane in 0..self.lanes {
            if let Some(h) = self.handles[node.index()][lane].as_ref() {
                if !h.is_finished() {
                    let _ = self.senders[node.index()][lane].send(Inbound::Kill);
                }
            }
        }
        let summary = self.join_node(node)?;
        self.broadcast_partner_down(node);
        Ok(summary)
    }

    /// Restarts a killed node from its durable file WAL: stale frames
    /// that piled up while it was down are discarded (the dead process
    /// never received them), then RM and engine recovery replay and the
    /// protocol re-drives over the transport. On a multi-lane node the
    /// one shared log is replayed once and the recovered transactions
    /// are repartitioned to their owning lanes (`lane_of`), each lane
    /// worker resuming with exactly its own seats; recovery telemetry
    /// rolls up per node. The node comes back with clean storage — no
    /// fault plan — mirroring the wire's clean-on-restart semantics.
    pub fn restart(&mut self, node: NodeId) -> Result<()> {
        if self.handles[node.index()].iter().any(|h| h.is_some()) {
            return Err(Error::InvalidState(format!("{node} is already running")));
        }
        for lane in 0..self.lanes {
            while self.receivers[node.index()][lane].try_recv().is_ok() {}
        }
        let mut cfg = self.configs[node.index()].clone();
        // The replacement "disk" is healthy: the original incarnation's
        // fault plan does not follow the node through restart.
        cfg.storage_faults = None;
        if self.lanes == 1 {
            let transport = self.make_transport(node, None);
            let worker = NodeWorker::restart(
                node,
                cfg,
                self.downstream[node.index()].clone(),
                transport,
                self.receivers[node.index()][0].clone(),
                self.epoch,
                Arc::clone(&self.signal),
            )?;
            self.handles[node.index()][0] = Some(spawn_worker(
                node.index(),
                0,
                1,
                worker,
                Arc::clone(&self.signal),
            ));
            return Ok(());
        }
        // Multi-lane restart: reopen the one shared WAL (classifying any
        // tail damage), replay it once, and hand each lane its own
        // recovered driver + pending recovery actions.
        let (mut log, tm_tail) = reopen_log(&cfg.log_backend, node, LogRole::Tm)?;
        let mut damage = tail_counts(tm_tail);
        let mut rm_log: Option<Box<dyn LogManager + Send>> = if cfg.opts.shared_log {
            None
        } else {
            let (rm_log, rm_tail) = reopen_log(&cfg.log_backend, node, LogRole::Rm)?;
            let (t, c) = tail_counts(rm_tail);
            damage = (damage.0 + t, damage.1 + c);
            Some(rm_log)
        };
        let obs = make_obs(&cfg);
        let rm = Arc::new(SharedRm::new(rm_config(&cfg), cfg.effective_stripes()));
        let recovered = recover_lanes(
            node,
            &cfg,
            &self.downstream[node.index()],
            &rm,
            &mut log,
            &mut rm_log,
            obs.as_ref(),
            self.epoch,
            damage,
        )?;
        // The recovered single-owner logs become the node's shared
        // devices again; every lane gets a clone.
        let shared_tm = SharedLog::new(log);
        let shared_rm_log = rm_log.map(SharedLog::new);
        let health = Arc::new(IoHealth::default());
        let ack_slot = Arc::new(AckSlot::default());
        for (lane, rec) in recovered.into_iter().enumerate() {
            let transport = self.make_transport(node, None);
            let parts = LaneParts {
                rm: Arc::clone(&rm),
                log: Box::new(shared_tm.clone()),
                rm_log: shared_rm_log
                    .as_ref()
                    .map(|l| Box::new(l.clone()) as Box<dyn LogManager + Send>),
                obs: obs.clone(),
                lane,
                lane_peers: self.senders[node.index()].clone(),
                health: Arc::clone(&health),
                ack_slot: Some(Arc::clone(&ack_slot)),
            };
            let worker = NodeWorker::resume_with_parts(
                node,
                cfg.clone(),
                transport,
                self.receivers[node.index()][lane].clone(),
                self.epoch,
                Arc::clone(&self.signal),
                parts,
                rec.driver,
                rec.actions,
            )?;
            self.handles[node.index()][lane] = Some(spawn_worker(
                node.index(),
                lane,
                self.lanes,
                worker,
                Arc::clone(&self.signal),
            ));
        }
        Ok(())
    }

    fn broadcast_partner_down(&self, peer: NodeId) {
        for (i, lanes) in self.senders.iter().enumerate() {
            if i == peer.index() {
                continue;
            }
            for (lane, tx) in lanes.iter().enumerate() {
                if self.handles[i][lane].is_some() {
                    let _ = tx.send(Inbound::PartnerDown { peer });
                }
            }
        }
    }

    /// Begins a transaction rooted at `root`.
    pub fn begin(&self, root: NodeId) -> TxnHandle<'_> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TxnHandle {
            cluster: self,
            txn: TxnId::new(root, seq),
            root,
        }
    }

    fn request_lane<R>(
        &self,
        node: NodeId,
        lane: usize,
        make: impl FnOnce(Sender<R>) -> AppCmd,
    ) -> Result<R> {
        if self.handles[node.index()][lane].is_none() {
            return Err(Error::NodeDown(node));
        }
        let (tx, rx) = bounded(1);
        self.senders[node.index()][lane]
            .send(Inbound::App(make(tx)))
            .map_err(|_| Error::NodeDown(node))?;
        recv_reply(&rx, node, self.reply_timeout)
    }

    fn request<R>(&self, node: NodeId, make: impl FnOnce(Sender<R>) -> AppCmd) -> Result<R> {
        self.request_lane(node, 0, make)
    }

    /// Reads a committed value from `node`'s store (blocking).
    pub fn read(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        self.try_read(node, key).ok().flatten()
    }

    /// Reads a committed value, distinguishing "no such key" from "node
    /// down / no reply".
    pub fn try_read(&self, node: NodeId, key: &str) -> Result<Option<Vec<u8>>> {
        self.request(node, |reply| AppCmd::Read {
            key: key.as_bytes().to_vec(),
            reply,
        })
    }

    /// Polls `node`'s store until `key` holds a value or `timeout`
    /// elapses. The root's outcome reply races decision propagation to
    /// subordinates (it may answer while acks are still in flight), so
    /// visibility at another node is asserted with a deadline, not a
    /// single read.
    pub fn read_eventually(&self, node: NodeId, key: &str, timeout: Duration) -> Option<Vec<u8>> {
        self.signal.wait_for(timeout, || self.read(node, key))
    }

    /// Waits until every live node reports zero active transactions, or
    /// `timeout` passes. Returns `true` on quiescence — chaos runs call
    /// this before handing final state to [`crate::verify::check`]. The
    /// wait blocks on the cluster progress signal instead of sleeping.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.signal
            .wait_for(timeout, || {
                let busy = (0..self.handles.len()).any(|i| {
                    self.handles[i].iter().any(|h| h.is_some())
                        && self
                            .summary(NodeId(i as u32))
                            .is_none_or(|s| s.active_txns > 0)
                });
                (!busy).then_some(())
            })
            .is_some()
    }

    /// Drives a closed-loop concurrent workload: `spec.concurrency` slots
    /// each keep one transaction in flight via `commit_async`, rooting at
    /// nodes `0..n-1` round-robin and writing a disjoint key at the last
    /// node (the shared "server" participant). This is what actually
    /// fills group-commit batches — sequential commits never overlap at
    /// the log.
    pub fn run_workload(&self, spec: &WorkloadSpec) -> WorkloadReport {
        assert!(self.len() >= 2, "workload needs a root and a server node");
        let server = NodeId((self.len() - 1) as u32);
        let roots = self.len() - 1;
        run_closed_loop(spec.concurrency, spec.txns, |slot, i| {
            let root = NodeId((slot % roots) as u32);
            let t = self.begin(root);
            let key = format!("{}-{slot}-{i}", spec.key_prefix);
            t.work(server, vec![Op::put(&key, &i.to_string())]);
            t.commit_async().wait(spec.reply_timeout)
        })
    }

    /// Drives an open-loop workload: transactions arrive at
    /// `spec.arrival_rate` per second regardless of completion (the
    /// generator does not wait for one txn before issuing the next),
    /// roots round-robin over nodes `0..n-1`, and each txn writes one
    /// zipf-drawn tenant key at the last node. Admission control bounds
    /// the in-flight population at `spec.max_in_flight` and the arrival
    /// backlog at `spec.queue_cap`; beyond that arrivals are *rejected*
    /// and counted, so overload degrades into bounded queueing +
    /// explicit rejections instead of collapse.
    pub fn run_open_loop(&self, spec: &OpenLoopSpec) -> OpenLoopReport {
        assert!(self.len() >= 2, "workload needs a root and a server node");
        let server = NodeId((self.len() - 1) as u32);
        let roots = self.len() - 1;
        run_open_loop(spec, |arrival| {
            let root = NodeId((arrival.index % roots) as u32);
            let t = self.begin(root);
            t.work(
                server,
                vec![Op::put(&arrival.key, &arrival.index.to_string())],
            );
            t.commit_async()
        })
    }

    /// Renders the Prometheus text exposition for every live node:
    /// driver/WAL counters always, plus per-phase latency histograms for
    /// nodes built with [`LiveNodeConfig::with_observability`]. Killed
    /// nodes are skipped (their scrape would hang).
    pub fn prometheus_dump(&self) -> String {
        crate::obs_export::prometheus_text(&self.live_summaries())
    }

    /// Renders a chrome-trace JSON of one transaction's phase spans
    /// across all live nodes. Needs
    /// [`LiveNodeConfig::with_tracing`]; without it the trace is empty.
    pub fn chrome_trace(&self, txn: TxnId) -> String {
        crate::obs_export::chrome_trace_text(&self.live_summaries(), txn)
    }

    fn live_summaries(&self) -> Vec<NodeSummary> {
        (0..self.len())
            .filter_map(|i| self.summary(NodeId(i as u32)))
            .collect()
    }

    /// Serves the cluster observability endpoints over HTTP at `addr`
    /// (use `"127.0.0.1:0"` for an ephemeral port; the bound address is
    /// on the returned server): `/metrics`, `/healthz` (503 once any
    /// node's WAL degrades), the windowed `/timeline` JSON and the
    /// `/debug/flight` recorder dump. Each request collects fresh
    /// summaries from every node that answers within a bounded wait, so
    /// a killed node degrades the response instead of hanging it.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<crate::http::MetricsServer> {
        let senders = self.senders.clone();
        let timeout = self.reply_timeout.min(Duration::from_secs(2));
        crate::http::MetricsServer::serve_routes(addr, move |path| {
            let summaries: Vec<NodeSummary> = senders
                .iter()
                .enumerate()
                .filter_map(|(i, lanes)| {
                    let mut merged: Option<NodeSummary> = None;
                    for tx in lanes {
                        let (reply, rx) = bounded(1);
                        tx.send(Inbound::App(AppCmd::Summary { reply })).ok()?;
                        let s = recv_reply(&rx, NodeId(i as u32), timeout).ok()?;
                        match merged.as_mut() {
                            Some(base) => base.absorb_lane(s),
                            None => merged = Some(s),
                        }
                    }
                    merged
                })
                .collect();
            crate::obs_export::route(&summaries, path)
        })
    }

    /// Fetches a node's live summary.
    pub fn summary(&self, node: NodeId) -> Option<NodeSummary> {
        self.try_summary(node).ok()
    }

    /// Fetches a node's live summary with a typed error on failure. On a
    /// multi-lane node, every lane's summary is collected and folded
    /// into the node-level rollup.
    pub fn try_summary(&self, node: NodeId) -> Result<NodeSummary> {
        let mut merged = self.request_lane(node, 0, |reply| AppCmd::Summary { reply })?;
        for lane in 1..self.lanes {
            let s = self.request_lane(node, lane, |reply| AppCmd::Summary { reply })?;
            merged.absorb_lane(s);
        }
        Ok(merged)
    }

    /// Stops every live node and returns their final summaries (killed
    /// nodes are absent — their last summary was returned by
    /// [`LiveCluster::kill`] / [`LiveCluster::await_death`]).
    pub fn shutdown(self) -> Vec<NodeSummary> {
        let mut summaries = Vec::with_capacity(self.senders.len());
        for (i, lanes) in self.senders.iter().enumerate() {
            for (lane, tx) in lanes.iter().enumerate() {
                if self.handles[i][lane].is_some() {
                    let (reply, _rx) = bounded(1);
                    let _ = tx.send(Inbound::Shutdown { reply });
                }
            }
        }
        for node_handles in self.handles.into_iter() {
            let mut node_summary: Option<NodeSummary> = None;
            for h in node_handles.into_iter().flatten() {
                if let Ok(s) = h.join() {
                    match node_summary.as_mut() {
                        Some(base) => base.absorb_lane(s),
                        None => node_summary = Some(s),
                    }
                }
            }
            if let Some(s) = node_summary {
                summaries.push(s);
            }
        }
        summaries
    }

    pub(crate) fn send_app(&self, node: NodeId, cmd: AppCmd) {
        let lane = match &cmd {
            AppCmd::Work { txn, .. } | AppCmd::Commit { txn, .. } | AppCmd::Abort { txn, .. } => {
                lane_of(*txn, self.lanes)
            }
            AppCmd::Read { .. } | AppCmd::Summary { .. } => 0,
        };
        let _ = self.senders[node.index()][lane].send(Inbound::App(cmd));
    }
}

fn spawn_worker<T: Transport>(
    index: usize,
    lane: usize,
    lanes: usize,
    worker: NodeWorker<T>,
    signal: Arc<ClusterSignal>,
) -> JoinHandle<NodeSummary> {
    let name = if lanes > 1 {
        format!("tpc-node-{index}-l{lane}")
    } else {
        format!("tpc-node-{index}")
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let summary = worker.run();
            // Final bump so await_death / quiesce observe the exit.
            signal.bump();
            summary
        })
        .expect("spawn node thread")
}

pub(crate) fn recv_reply<R>(rx: &Receiver<R>, node: NodeId, timeout: Duration) -> Result<R> {
    match rx.recv_timeout(timeout) {
        Ok(r) => Ok(r),
        Err(RecvTimeoutError::Disconnected) => Err(Error::NodeDown(node)),
        Err(RecvTimeoutError::Timeout) => Err(Error::Timeout(format!(
            "no reply from {node} within {timeout:?}"
        ))),
    }
}

/// An in-flight commit/abort whose caller kept control: wait on it after
/// scripting faults (kills, restarts) that must happen while the
/// protocol runs.
pub struct CommitWait {
    rx: Receiver<CommitResult>,
    node: NodeId,
}

impl CommitWait {
    /// Assembles a wait from raw parts (workload tests drive the
    /// open-loop reaper without a cluster).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_parts(rx: Receiver<CommitResult>, node: NodeId) -> Self {
        CommitWait { rx, node }
    }
}

impl CommitWait {
    /// Blocks until the outcome arrives; [`Error::NodeDown`] if the root
    /// died with the request in flight, [`Error::Timeout`] after
    /// `timeout`.
    pub fn wait(self, timeout: Duration) -> Result<CommitResult> {
        recv_reply(&self.rx, self.node, timeout)
    }

    /// Non-blocking completion check: `Ok(Some(..))` once the outcome
    /// has arrived, `Ok(None)` while still in flight. The open-loop
    /// workload reaps thousands of in-flight commits with this.
    pub fn poll(&self) -> Result<Option<CommitResult>> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(Error::NodeDown(self.node)),
        }
    }
}

/// A transaction in flight on a [`LiveCluster`].
pub struct TxnHandle<'a> {
    cluster: &'a LiveCluster,
    txn: TxnId,
    root: NodeId,
}

impl TxnHandle<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Sends work to a partner (or runs it locally when `to` is the
    /// root).
    pub fn work(&self, to: NodeId, ops: Vec<Op>) {
        self.cluster.send_app(
            self.root,
            AppCmd::Work {
                txn: self.txn,
                to,
                ops,
            },
        );
    }

    /// Requests commit and blocks for the outcome. Fails with
    /// [`Error::NodeDown`] / [`Error::Timeout`] instead of hanging when
    /// the root is dead or never answers.
    pub fn commit(self) -> Result<CommitResult> {
        let timeout = self.cluster.reply_timeout;
        self.commit_async().wait(timeout)
    }

    /// Requests commit and returns immediately with a [`CommitWait`],
    /// releasing the cluster borrow so the caller can kill and restart
    /// nodes while the protocol runs.
    pub fn commit_async(self) -> CommitWait {
        let (tx, rx) = bounded(1);
        self.cluster.send_app(
            self.root,
            AppCmd::Commit {
                txn: self.txn,
                reply: tx,
            },
        );
        CommitWait {
            rx,
            node: self.root,
        }
    }

    /// Requests rollback and blocks for the confirmation.
    pub fn abort(self) -> Result<CommitResult> {
        let timeout = self.cluster.reply_timeout;
        let (tx, rx) = bounded(1);
        let node = self.root;
        self.cluster.send_app(
            node,
            AppCmd::Abort {
                txn: self.txn,
                reply: tx,
            },
        );
        recv_reply(&rx, node, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    fn cluster(n: usize, protocol: ProtocolKind) -> LiveCluster {
        LiveCluster::start(vec![LiveNodeConfig::new(protocol); n])
    }

    #[test]
    fn distributed_commit_makes_values_visible() {
        let c = cluster(3, ProtocolKind::PresumedAbort);
        let t = c.begin(NodeId(0));
        t.work(NodeId(0), vec![Op::put("root-key", "r")]);
        t.work(NodeId(1), vec![Op::put("a", "1")]);
        t.work(NodeId(2), vec![Op::put("b", "2")]);
        let result = t.commit().expect("root alive");
        assert_eq!(result.outcome, Outcome::Commit);
        assert!(result.report.is_clean());
        assert_eq!(c.read(NodeId(0), "root-key"), Some(b"r".to_vec()));
        assert_eq!(c.read(NodeId(1), "a"), Some(b"1".to_vec()));
        assert_eq!(c.read(NodeId(2), "b"), Some(b"2".to_vec()));
        for s in c.shutdown() {
            assert_eq!(s.active_txns, 0, "{:?}", s.node);
        }
    }

    #[test]
    fn rollback_discards_everywhere() {
        let c = cluster(2, ProtocolKind::PresumedNothing);
        let t = c.begin(NodeId(0));
        t.work(NodeId(0), vec![Op::put("x", "1")]);
        t.work(NodeId(1), vec![Op::put("y", "1")]);
        let result = t.abort().expect("root alive");
        assert_eq!(result.outcome, Outcome::Abort);
        assert_eq!(c.read(NodeId(0), "x"), None);
        assert_eq!(c.read(NodeId(1), "y"), None);
        c.shutdown();
    }

    #[test]
    fn sequential_transactions_across_protocols() {
        for protocol in ProtocolKind::ALL {
            let c = cluster(2, protocol);
            for i in 0..5 {
                let t = c.begin(NodeId(0));
                t.work(NodeId(1), vec![Op::put("counter", &i.to_string())]);
                let r = t.commit().expect("root alive");
                assert_eq!(r.outcome, Outcome::Commit, "{protocol}");
            }
            assert_eq!(c.read(NodeId(1), "counter"), Some(b"4".to_vec()));
            c.shutdown();
        }
    }

    #[test]
    fn concurrent_roots_serialize_on_conflicts() {
        let c = Arc::new(cluster(3, ProtocolKind::PresumedAbort));
        let mut joins = Vec::new();
        for root in 0..2u32 {
            let c2 = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let t = c2.begin(NodeId(root));
                    t.work(NodeId(2), vec![Op::put("hot", &format!("{root}-{i}"))]);
                    let r = t.commit().expect("root alive");
                    assert_eq!(r.outcome, Outcome::Commit);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let final_value = c.read(NodeId(2), "hot").expect("written");
        assert!(final_value.ends_with(b"-9"));
        Arc::try_unwrap(c).ok().map(|c| c.shutdown());
    }

    #[test]
    fn read_only_transaction_commits_without_logging() {
        let opts = tpc_common::OptimizationConfig::none().with_read_only(true);
        let c = LiveCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedAbort).with_opts(opts.clone()),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort).with_opts(opts),
        ]);
        // Seed data.
        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::put("k", "v")]);
        assert_eq!(t.commit().expect("root alive").outcome, Outcome::Commit);
        let before = c.summary(NodeId(1)).unwrap().log;

        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::get("k")]);
        assert_eq!(t.commit().expect("root alive").outcome, Outcome::Commit);
        let after = c.summary(NodeId(1)).unwrap().log;
        assert_eq!(
            before.writes, after.writes,
            "read-only participation must not log"
        );
        c.shutdown();
    }

    #[test]
    fn committing_at_a_killed_root_errors_instead_of_hanging() {
        let mut c =
            cluster(2, ProtocolKind::PresumedAbort).with_reply_timeout(Duration::from_secs(2));
        let victim = NodeId(0);
        let s = c.kill(victim).expect("first kill succeeds");
        assert!(s.protocol_state.crashed);
        assert!(!c.is_alive(victim));
        assert!(matches!(c.kill(victim), Err(Error::NodeDown(n)) if n == victim));

        let t = c.begin(victim);
        match t.commit() {
            Err(Error::Timeout(_)) | Err(Error::NodeDown(_)) => {}
            other => panic!("expected a typed submit failure, got {other:?}"),
        }
        // The surviving node still answers.
        assert!(c.summary(NodeId(1)).is_some());
        c.shutdown();
    }

    #[test]
    fn fault_injected_wire_still_commits_via_retries() {
        // Drop a third of the root's outbound frames: vote-collection and
        // ack-collection retries must still converge every transaction.
        let configs = vec![
            LiveNodeConfig::new(ProtocolKind::PresumedNothing).with_timeouts(
                tpc_core::Timeouts {
                    vote_collection: tpc_common::SimDuration::from_millis(50),
                    ack_collection: tpc_common::SimDuration::from_millis(50),
                    in_doubt_query: tpc_common::SimDuration::from_millis(80),
                },
            );
            2
        ];
        let faults = vec![Some(FaultPlan::clean(0xC0FFEE).with_drops(0.33)), None];
        let c = LiveCluster::start_with_faults(configs, &[], faults);
        for i in 0..5 {
            let key = format!("k{i}");
            let t = c.begin(NodeId(0));
            t.work(NodeId(1), vec![Op::put(&key, &i.to_string())]);
            // Outcome may be Commit or Abort (a dropped vote aborts the
            // txn), but it must never hang or violate atomicity.
            let r = t.commit().expect("typed result");
            if r.outcome == Outcome::Commit {
                // The decision frame itself may be dropped; the re-drive
                // must land it within the retry budget.
                assert_eq!(
                    c.read_eventually(NodeId(1), &key, Duration::from_secs(5)),
                    Some(i.to_string().into_bytes()),
                    "committed write must become visible at the subordinate"
                );
            }
        }
        assert!(
            c.fault_stats(NodeId(0)).expect("wire wrapped").lost() > 0,
            "the fault plan should actually have fired"
        );
        c.shutdown();
    }
}
