//! The in-process live cluster: one thread per node, crossbeam channels
//! as the network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Sender};
use tpc_common::{NodeId, Op, TxnId};

use crate::node::{
    AppCmd, CommitResult, Inbound, LiveNodeConfig, NodeSummary, NodeWorker, Transport,
};

/// Transport over crossbeam channels: every node holds senders to all
/// peers.
pub struct ChannelTransport {
    me: NodeId,
    peers: Vec<Sender<Inbound>>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: NodeId, bytes: Vec<u8>) {
        if let Some(tx) = self.peers.get(to.index()) {
            let _ = tx.send(Inbound::Frame {
                from: self.me,
                bytes,
            });
        }
    }
}

/// A running in-process cluster.
pub struct LiveCluster {
    senders: Vec<Sender<Inbound>>,
    handles: Vec<JoinHandle<NodeSummary>>,
    next_seq: Arc<AtomicU64>,
}

impl LiveCluster {
    /// Starts one thread per config with no standing partners: commit
    /// trees are built purely from the work actually exchanged. Standing
    /// partnership (the LU 6.2 conversation structure that the leave-out
    /// optimization exploits) is directional and tree-shaped — declare it
    /// explicitly with [`LiveCluster::start_with_topology`].
    pub fn start(configs: Vec<LiveNodeConfig>) -> Self {
        Self::start_with_topology(configs, &[])
    }

    /// Starts the cluster with explicit partner edges `(parent, child)`.
    pub fn start_with_topology(configs: Vec<LiveNodeConfig>, partners: &[(usize, usize)]) -> Self {
        let n = configs.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, (cfg, rx)) in configs.into_iter().zip(receivers).enumerate() {
            let node = NodeId(i as u32);
            let transport = ChannelTransport {
                me: node,
                peers: senders.clone(),
            };
            let downstream: Vec<NodeId> = partners
                .iter()
                .filter(|(a, _)| *a == i)
                .map(|(_, b)| NodeId(*b as u32))
                .collect();
            let worker = NodeWorker::new(node, cfg, downstream, transport, rx, epoch);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tpc-node-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn node thread"),
            );
        }
        LiveCluster {
            senders,
            handles,
            next_seq: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Begins a transaction rooted at `root`.
    pub fn begin(&self, root: NodeId) -> TxnHandle<'_> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TxnHandle {
            cluster: self,
            txn: TxnId::new(root, seq),
            root,
        }
    }

    /// Reads a committed value from `node`'s store (blocking).
    pub fn read(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Read {
                key: key.as_bytes().to_vec(),
                reply: tx,
            }))
            .ok()?;
        rx.recv().ok()?
    }

    /// Fetches a node's live summary.
    pub fn summary(&self, node: NodeId) -> Option<NodeSummary> {
        let (tx, rx) = bounded(1);
        self.senders[node.index()]
            .send(Inbound::App(AppCmd::Summary { reply: tx }))
            .ok()?;
        rx.recv().ok()
    }

    /// Stops every node and returns their final summaries.
    pub fn shutdown(self) -> Vec<NodeSummary> {
        let mut summaries = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (reply, _rx) = bounded(1);
            let _ = tx.send(Inbound::Shutdown { reply });
        }
        for h in self.handles {
            if let Ok(s) = h.join() {
                summaries.push(s);
            }
        }
        summaries
    }

    pub(crate) fn send_app(&self, node: NodeId, cmd: AppCmd) {
        let _ = self.senders[node.index()].send(Inbound::App(cmd));
    }
}

/// A transaction in flight on a [`LiveCluster`].
pub struct TxnHandle<'a> {
    cluster: &'a LiveCluster,
    txn: TxnId,
    root: NodeId,
}

impl TxnHandle<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Sends work to a partner (or runs it locally when `to` is the
    /// root).
    pub fn work(&self, to: NodeId, ops: Vec<Op>) {
        self.cluster.send_app(
            self.root,
            AppCmd::Work {
                txn: self.txn,
                to,
                ops,
            },
        );
    }

    /// Requests commit and blocks for the outcome.
    pub fn commit(self) -> CommitResult {
        let (tx, rx) = bounded(1);
        self.cluster.send_app(
            self.root,
            AppCmd::Commit {
                txn: self.txn,
                reply: tx,
            },
        );
        rx.recv().expect("node alive")
    }

    /// Requests rollback and blocks for the confirmation.
    pub fn abort(self) -> CommitResult {
        let (tx, rx) = bounded(1);
        self.cluster.send_app(
            self.root,
            AppCmd::Abort {
                txn: self.txn,
                reply: tx,
            },
        );
        rx.recv().expect("node alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_common::{Outcome, ProtocolKind};

    fn cluster(n: usize, protocol: ProtocolKind) -> LiveCluster {
        LiveCluster::start(vec![LiveNodeConfig::new(protocol); n])
    }

    #[test]
    fn distributed_commit_makes_values_visible() {
        let c = cluster(3, ProtocolKind::PresumedAbort);
        let t = c.begin(NodeId(0));
        t.work(NodeId(0), vec![Op::put("root-key", "r")]);
        t.work(NodeId(1), vec![Op::put("a", "1")]);
        t.work(NodeId(2), vec![Op::put("b", "2")]);
        let result = t.commit();
        assert_eq!(result.outcome, Outcome::Commit);
        assert!(result.report.is_clean());
        assert_eq!(c.read(NodeId(0), "root-key"), Some(b"r".to_vec()));
        assert_eq!(c.read(NodeId(1), "a"), Some(b"1".to_vec()));
        assert_eq!(c.read(NodeId(2), "b"), Some(b"2".to_vec()));
        for s in c.shutdown() {
            assert_eq!(s.active_txns, 0, "{:?}", s.node);
        }
    }

    #[test]
    fn rollback_discards_everywhere() {
        let c = cluster(2, ProtocolKind::PresumedNothing);
        let t = c.begin(NodeId(0));
        t.work(NodeId(0), vec![Op::put("x", "1")]);
        t.work(NodeId(1), vec![Op::put("y", "1")]);
        let result = t.abort();
        assert_eq!(result.outcome, Outcome::Abort);
        assert_eq!(c.read(NodeId(0), "x"), None);
        assert_eq!(c.read(NodeId(1), "y"), None);
        c.shutdown();
    }

    #[test]
    fn sequential_transactions_across_protocols() {
        for protocol in ProtocolKind::ALL {
            let c = cluster(2, protocol);
            for i in 0..5 {
                let t = c.begin(NodeId(0));
                t.work(NodeId(1), vec![Op::put("counter", &i.to_string())]);
                assert_eq!(t.commit().outcome, Outcome::Commit, "{protocol}");
            }
            assert_eq!(c.read(NodeId(1), "counter"), Some(b"4".to_vec()));
            c.shutdown();
        }
    }

    #[test]
    fn concurrent_roots_serialize_on_conflicts() {
        let c = Arc::new(cluster(3, ProtocolKind::PresumedAbort));
        let mut joins = Vec::new();
        for root in 0..2u32 {
            let c2 = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let t = c2.begin(NodeId(root));
                    t.work(NodeId(2), vec![Op::put("hot", &format!("{root}-{i}"))]);
                    let r = t.commit();
                    assert_eq!(r.outcome, Outcome::Commit);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let final_value = c.read(NodeId(2), "hot").expect("written");
        assert!(final_value.ends_with(b"-9"));
        Arc::try_unwrap(c).ok().map(|c| c.shutdown());
    }

    #[test]
    fn read_only_transaction_commits_without_logging() {
        let opts = tpc_common::OptimizationConfig::none().with_read_only(true);
        let c = LiveCluster::start(vec![
            LiveNodeConfig::new(ProtocolKind::PresumedAbort).with_opts(opts.clone()),
            LiveNodeConfig::new(ProtocolKind::PresumedAbort).with_opts(opts),
        ]);
        // Seed data.
        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::put("k", "v")]);
        assert_eq!(t.commit().outcome, Outcome::Commit);
        let before = c.summary(NodeId(1)).unwrap().log;

        let t = c.begin(NodeId(0));
        t.work(NodeId(1), vec![Op::get("k")]);
        assert_eq!(t.commit().outcome, Outcome::Commit);
        let after = c.summary(NodeId(1)).unwrap().log;
        assert_eq!(
            before.writes, after.writes,
            "read-only participation must not log"
        );
        c.shutdown();
    }
}
